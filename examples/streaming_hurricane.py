#!/usr/bin/env python
"""Use case 2 + incremental refinement: bandwidth-limited weather streaming.

Hurricane Isabel's data characteristics drift over time (the eye moves and
deepens), which degrades a model trained on early timesteps — the paper's
motivation for CAROL's warm-started incremental refinement (Section 5.3).

This example streams hurricane snapshots under a fixed link budget
(a target compression ratio), tracks the achieved-vs-requested error, and
refines the model mid-stream when drift shows up. Refinement is warm-started
from the Bayesian optimizer's checkpoint, so it costs a fraction of the
original training.

Run: python examples/streaming_hurricane.py
"""

import numpy as np

from repro import CarolFramework, load_dataset

SHAPE = (10, 32, 32)
COMPRESSOR = "szx"  # throughput codec, right for streaming
TARGET_RATIO = 6.0
FIELD = "p"  # surface pressure carries the deepening eye


def pressure(timestep: int):
    fields = load_dataset("hurricane", shape=SHAPE, timestep=timestep)
    return next(f for f in fields if f.name == FIELD)


def main() -> None:
    rel = np.geomspace(1e-3, 1e-1, 10)
    carol = CarolFramework(compressor=COMPRESSOR, rel_error_bounds=rel, n_iter=6)

    train = [pressure(t) for t in range(3)]
    report = carol.fit(train)
    print(
        f"initial fit on timesteps 0-2: "
        f"{report.total_seconds:.2f}s ({report.n_rows} rows)\n"
    )

    print(f"{'step':>4} {'requested':>9} {'achieved':>9} {'err%':>6}  note")
    refined = False
    baseline_err = None
    for t in range(3, 31, 3):
        field = pressure(t)
        result, _pred = carol.compress_to_ratio(field.data, TARGET_RATIO)
        err = 100.0 * abs(result.ratio - TARGET_RATIO) / TARGET_RATIO
        if baseline_err is None:
            baseline_err = max(err, 1.0)
        note = ""
        # Refine once the error drifts 30% above where the stream started.
        if err > 1.3 * baseline_err and not refined:
            # Drift detected: refine on the most recent snapshots.
            rep = carol.refine([pressure(t), pressure(t - 1)])
            refined = True
            note = (
                f"<- drift: refined on t{t-1},t{t} in {rep.total_seconds:.2f}s "
                f"(warm-started, {rep.training_info.n_evaluations} evals)"
            )
        print(f"{t:>4} {TARGET_RATIO:>9.1f} {result.ratio:>9.2f} {err:>6.1f}  {note}")

    print("\nthe refinement call reuses all previous Bayesian-optimization")
    print("observations — FXRZ would retrain its grid search from scratch.")


if __name__ == "__main__":
    main()
