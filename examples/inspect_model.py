#!/usr/bin/env python
"""Render a trained decision tree like the paper's Figure 4.

Fits FXRZ's random forest on Miranda training data and prints one of its
decision trees: each node shows the feature being tested, the node's mse,
its sample count, and its value (the predicted log error bound at leaves) —
the same fields as the paper's figure.

Run: python examples/inspect_model.py
"""

import numpy as np

from repro import FxrzFramework, load_dataset

SHAPE = (20, 24, 24)


def main() -> None:
    train = load_dataset("miranda", shape=SHAPE)[:4]
    fxrz = FxrzFramework(
        compressor="sz3", rel_error_bounds=np.geomspace(1e-3, 1e-1, 8), n_iter=4
    )
    fxrz.fit(train)

    info = fxrz.setup_report.training_info
    print("selected hyper-parameters (randomized grid search):")
    for key, value in info.best_params.items():
        print(f"  {key} = {value}")
    print(f"cross-validated R^2 = {info.best_score:.4f}\n")

    forest = fxrz.model.forest
    tree = forest.trees[0]
    names = fxrz.training_data.feature_names
    print(f"decision tree 1/{len(forest.trees)} "
          f"({tree.node_count} nodes, depth {tree.depth}):\n")
    print(tree.export_text(feature_names=names, max_nodes=40))
    print("\n(leaf 'value' is the predicted log error bound; inference")
    print("descends on the five features plus the requested log ratio.)")


if __name__ == "__main__":
    main()
