#!/usr/bin/env python
"""Use case 1 (paper Section 1): shared-storage budgeting on a cluster.

A scientist has a fixed storage quota for one simulation campaign. Given
the quota and the set of output fields, CAROL picks per-field error bounds
so the *total* compressed size lands on the quota — the thing plain
error-bounded compression cannot do, because its output size is unknown in
advance.

Run: python examples/storage_budget.py
"""

import numpy as np

from repro import CarolFramework, get_compressor, load_dataset

SHAPE = (24, 32, 32)
COMPRESSOR = "sperr"


def main() -> None:
    train = load_dataset("miranda", shape=SHAPE)[:5]
    campaign = load_dataset("miranda", shape=SHAPE, seed=2024)  # new run's outputs

    carol = CarolFramework(
        compressor=COMPRESSOR, rel_error_bounds=np.geomspace(1e-3, 1e-1, 10), n_iter=6
    )
    carol.fit(train)

    total_raw = sum(f.nbytes for f in campaign)
    quota = total_raw // 12  # the campaign must fit in 1/12 of its raw size
    per_field_target = total_raw / quota  # uniform target ratio

    print(f"campaign: {len(campaign)} fields, {total_raw/1e6:.1f} MB raw")
    print(f"quota: {quota/1e6:.2f} MB -> target ratio {per_field_target:.1f}x\n")

    codec = get_compressor(COMPRESSOR)
    used = 0
    rows = []
    for field in campaign:
        # safety=1.0 biases toward overshooting the ratio by one model-
        # uncertainty sigma: a smaller file is fine, busting the quota isn't.
        result, pred = carol.compress_to_ratio(field.data, per_field_target, safety=1.0)
        used += result.compressed_bytes
        rows.append((field.name, pred.error_bound, result.ratio, result.compressed_bytes))

    print(f"{'field':<14} {'error bound':>12} {'achieved':>9} {'bytes':>10}")
    for name, eb, ratio, nbytes in rows:
        print(f"{name:<14} {eb:>12.4g} {ratio:>8.1f}x {nbytes:>10}")

    print(
        f"\ntotal compressed: {used/1e6:.2f} MB vs quota {quota/1e6:.2f} MB "
        f"({100*used/quota:.0f}% of quota)"
    )
    if used <= quota * 1.25:
        print("within 25% of the quota without any trial-and-error recompression.")
    else:
        print("overshoot — rerun with a higher target ratio for the largest fields.")


if __name__ == "__main__":
    main()
