#!/usr/bin/env python
"""Quickstart: fixed-ratio compression with CAROL in ~40 lines.

Fits CAROL on the Miranda turbulence dataset for the SZ3 compressor, then
compresses an unseen field to a requested compression ratio. Run:

    python examples/quickstart.py
"""

import numpy as np

from repro import CarolFramework, get_compressor, load_dataset, load_field

SHAPE = (24, 32, 32)  # scaled-down Miranda (paper: 256x384x384)


def main() -> None:
    # 1. Training data: a few fields of the target application.
    train_fields = load_dataset("miranda", shape=SHAPE)
    print(f"training on {len(train_fields)} Miranda fields, shape {SHAPE}")

    # 2. Set up CAROL for the SZ3 compressor. fit() collects surrogate
    #    (SECRE) curves, calibrates them with a few full-compressor runs,
    #    and trains the error-bound model with Bayesian optimization.
    carol = CarolFramework(
        compressor="sz3",
        rel_error_bounds=np.geomspace(1e-3, 1e-1, 10),
        n_iter=6,
    )
    report = carol.fit(train_fields)
    print(
        f"setup: collection {report.collection_seconds:.2f}s + "
        f"training {report.training_seconds:.2f}s "
        f"({report.n_rows} training rows)"
    )

    # 3. Request a fixed compression ratio on an unseen field.
    test = load_field("miranda/viscosity", shape=SHAPE, seed=777)
    target = 20.0
    result, prediction = carol.compress_to_ratio(test.data, target_ratio=target)
    print(
        f"requested ratio {target:.1f} -> predicted error bound "
        f"{prediction.error_bound:.4g} -> achieved ratio {result.ratio:.1f}"
    )

    # 4. The stream decompresses within the predicted error bound.
    recon = get_compressor("sz3").decompress(result)
    max_err = float(np.abs(recon - test.data).max())
    print(f"max reconstruction error {max_err:.4g} (bound {prediction.error_bound:.4g})")


if __name__ == "__main__":
    main()
