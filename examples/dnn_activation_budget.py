#!/usr/bin/env python
"""Use case 3 (paper Section 1): activation compression for DNN training.

Frameworks like ActNN/COMET compress activation tensors between forward and
backward passes to fit bigger models or batches in GPU memory. That only
works if the compressed size is *known in advance* — the batch size is
chosen against the memory budget before the step runs.

This example simulates a training loop over convolutional feature maps
(spatially smooth, like images), uses CAROL to pick the error bound that
squeezes each activation tensor to the per-layer budget, and verifies the
memory plan holds step after step.

Run: python examples/dnn_activation_budget.py
"""

import numpy as np

from repro import CarolFramework, Field
from repro.data.synthetic import gaussian_random_field

LAYERS = {
    # layer name -> (channels, height, width), like a small conv net
    "conv1": (8, 48, 48),
    "conv2": (16, 24, 24),
    "conv3": (32, 12, 12),
}
MEMORY_BUDGET_FRACTION = 0.125  # keep activations at 1/8 of raw size
COMPRESSOR = "sz3"  # prediction codec reaches 8x+ on smooth feature maps


def make_activation(layer: str, step: int) -> Field:
    """Synthesize a feature-map stack: smooth spatial maps per channel."""
    shape = LAYERS[layer]
    data = gaussian_random_field(
        shape, slope=-3.2, seed=hash((layer, step)) % 2**31
    )
    data = np.maximum(data, 0.0)  # ReLU-like sparsity
    return Field(dataset="dnn", name=layer, data=data.astype(np.float32), timestep=step)


def main() -> None:
    target = 1.0 / MEMORY_BUDGET_FRACTION
    print(f"per-layer target ratio: {target:.0f}x ({MEMORY_BUDGET_FRACTION:.3f} of raw)\n")

    # Calibration/training pass on a handful of warmup steps.
    train = [make_activation(layer, step) for layer in LAYERS for step in range(3)]
    carol = CarolFramework(
        compressor=COMPRESSOR, rel_error_bounds=np.geomspace(1e-3, 1e-1, 10), n_iter=6
    )
    report = carol.fit(train)
    print(f"warmup fit: {report.total_seconds:.2f}s on {len(train)} activation tensors\n")

    print(f"{'step':>4} {'layer':<7} {'raw KB':>7} {'budget KB':>9} {'used KB':>8} {'ok':>3}")
    violations = 0
    for step in range(3, 8):
        for layer in LAYERS:
            act = make_activation(layer, step)
            budget = act.nbytes * MEMORY_BUDGET_FRACTION
            result, _ = carol.compress_to_ratio(act.data, target)
            ok = result.compressed_bytes <= budget * 1.5
            violations += 0 if ok else 1
            print(
                f"{step:>4} {layer:<7} {act.nbytes/1024:>7.1f} {budget/1024:>9.1f} "
                f"{result.compressed_bytes/1024:>8.1f} {'y' if ok else 'N':>3}"
            )

    total = 5 * len(LAYERS)
    print(f"\n{total - violations}/{total} tensors within 1.5x of their memory plan.")
    print("a fixed-rate mode would guarantee the size but waste accuracy;")
    print("CAROL holds the plan while keeping the error-bounded guarantee.")


if __name__ == "__main__":
    main()
