#!/usr/bin/env python
"""Survey: which compressor should you ratio-control for your data?

Runs all four compressors over the synthetic datasets at a common relative
error bound, reporting ratio and throughput — the SZx/ZFP (high-throughput)
vs SZ3/SPERR (high-ratio) split that drives every design decision in the
paper, plus each compressor's SECRE estimability (how accurate its fast
surrogate is before calibration).

Run: python examples/compare_compressors.py
"""

import numpy as np

from repro import estimation_error, get_compressor, get_surrogate, load_dataset

SHAPE = (20, 28, 28)
DATASETS = ("miranda", "nyx", "hcci", "mrs")
REL_EB = 1e-2


def main() -> None:
    fields = [load_dataset(ds, shape=SHAPE)[0] for ds in DATASETS]
    print(f"{len(fields)} fields, shape {SHAPE}, relative error bound {REL_EB}\n")

    header = f"{'codec':<7} {'mean ratio':>10} {'MB/s':>8} {'SECRE alpha%':>12}  class"
    print(header)
    print("-" * len(header))
    for name in ("szx", "zfp", "sz3", "sperr"):
        codec = get_compressor(name)
        surrogate = get_surrogate(name)
        ratios, speeds, alphas = [], [], []
        for field in fields:
            eb = field.relative_error_bound(REL_EB)
            res = codec.compress(field.data, eb)
            ratios.append(res.ratio)
            speeds.append(res.original_bytes / max(res.elapsed, 1e-9) / 1e6)
            grid = np.geomspace(0.3, 3.0, 5) * eb
            true = np.array([codec.compression_ratio(field.data, e) for e in grid])
            est, _ = surrogate.estimate_curve(field.data, grid)
            alphas.append(estimation_error(true, est))
        klass = "high-throughput" if name in ("szx", "zfp") else "high-ratio"
        print(
            f"{name:<7} {np.mean(ratios):>10.1f} {np.mean(speeds):>8.1f} "
            f"{np.mean(alphas):>12.1f}  {klass}"
        )

    print(
        "\ntakeaway (paper Compressor Behaviors 1-2): the high-ratio codecs"
        "\ncompress hardest but their surrogates need CAROL's calibration;"
        "\nthe high-throughput codecs estimate accurately out of the box."
    )


if __name__ == "__main__":
    main()
