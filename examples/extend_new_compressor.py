#!/usr/bin/env python
"""Extending CAROL to a brand-new compressor (the paper's portability claim).

The paper argues that — unlike surrogate frameworks that need a hand-built
lightweight compressor per codec — FXRZ/CAROL support a new compressor by
just collecting execution data, and Compressor Behavior 3 adds that when no
tailored surrogate exists, full compression on window-matched samples plus
calibration fills the gap.

This example walks that recipe with the cuSZp-style codec (not one of the
paper's evaluated four):

1. the codec is already in the registry (any ``LossyCompressor`` subclass
   can be added via ``register_compressor``);
2. its ratio estimator is the *generic* :class:`SampledFullSurrogate` with
   block-window sampling — no codec-specific surrogate code at all;
3. CAROL trains on surrogate + calibration curves as usual and then serves
   fixed-ratio requests against the new codec.

Run: python examples/extend_new_compressor.py
"""

import numpy as np

from repro import CarolFramework, get_compressor, get_surrogate, load_dataset, load_field
from repro.core.metrics import estimation_error

SHAPE = (20, 28, 28)
CODEC = "cuszp"


def main() -> None:
    codec = get_compressor(CODEC)
    field = load_field("miranda/viscosity", shape=SHAPE)
    ebs = np.geomspace(1e-3, 1e-1, 8) * field.value_range

    # Step 1+2: the generic fallback surrogate estimates f(e) with no
    # codec-specific code (it runs the real codec on ~10% of the data).
    surrogate = get_surrogate(CODEC)
    est, t_est = surrogate.estimate_curve(field.data, ebs)
    true = np.array([codec.compression_ratio(field.data, eb) for eb in ebs])
    print(f"fallback surrogate on {CODEC}: alpha = "
          f"{estimation_error(true, est):.1f}% in {t_est*1000:.1f} ms")

    # Step 3: CAROL end to end on the new codec.
    train = load_dataset("miranda", shape=SHAPE)[:5]
    carol = CarolFramework(
        compressor=CODEC, rel_error_bounds=np.geomspace(1e-3, 1e-1, 10), n_iter=6
    )
    report = carol.fit(train)
    print(f"CAROL fitted on {CODEC}: collection {report.collection_seconds:.2f}s, "
          f"training {report.training_seconds:.2f}s")

    test = load_field("miranda/pressure", shape=SHAPE, seed=31)
    # targets inside the codec's achievable band on this data (~2-5.5x)
    for target in (3.0, 4.0, 5.0):
        result, pred = carol.compress_to_ratio(test.data, target)
        print(f"  target {target:5.1f}x -> eb {pred.error_bound:.4g} "
              f"-> achieved {result.ratio:5.1f}x")

    print("\nno cuSZp-specific surrogate was written — the registry entry is")
    print("three lines wiring SampledFullSurrogate(window='block') to the codec.")


if __name__ == "__main__":
    main()
