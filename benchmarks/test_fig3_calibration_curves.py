"""Figure 3 — SPERR estimation-error curves before/after calibration."""

from repro.bench.experiments import fig3_calibration_curves
from repro.bench.harness import print_and_save


def test_fig3_calibration_curves(benchmark, scale):
    table = benchmark.pedantic(fig3_calibration_curves, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig3_calibration_curves", table)
    assert "miranda/density" in table and "duct" in table
