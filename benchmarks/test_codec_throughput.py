"""Compressor throughput microbenchmarks (performance regression tracking).

Unlike the table/figure harnesses (single-shot experiments), these use
pytest-benchmark's normal multi-round mode so throughput regressions in the
codecs show up as statistically meaningful deltas. The grouping mirrors the
paper's split: high-throughput (szx, cuszp, zfp) vs high-ratio (sz3, sperr).

``test_encoding_kernel_speedups`` additionally runs the codec-bench harness
(:mod:`repro.bench.codec_bench`): every vectorized encoding kernel timed
against its frozen scalar reference with a byte-identity gate, compared
against the committed ``BENCH_codec.json`` trajectory.
"""

import numpy as np
import pytest

from repro.bench.codec_bench import format_report, load_report, run_codec_bench
from repro.bench.harness import print_and_save
from repro.compressors import get_compressor
from repro.data import load_field

_CODEC_BENCH_REPS = {"tiny": 1, "small": 3, "medium": 7}


@pytest.fixture(scope="module")
def field(scale):
    return load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))


@pytest.mark.parametrize("name", ["szx", "cuszp", "zfp", "sz3", "sperr"])
def test_compress_throughput(benchmark, field, name):
    codec = get_compressor(name)
    eb = field.relative_error_bound(1e-2)
    benchmark.group = "compress"
    result = benchmark(codec.compress, field.data, eb)
    benchmark.extra_info["ratio"] = round(result.ratio, 2)
    benchmark.extra_info["MB"] = round(field.nbytes / 1e6, 2)
    assert result.ratio > 1.0


@pytest.mark.parametrize("name", ["szx", "cuszp", "zfp", "sz3", "sperr"])
def test_roundtrip_throughput(benchmark, field, name):
    codec = get_compressor(name)
    eb = field.relative_error_bound(1e-2)
    compressed = codec.compress(field.data, eb)
    benchmark.group = "decompress"
    out = benchmark(codec.decompress, compressed)
    assert np.abs(out - field.data).max() <= eb


def test_encoding_kernel_speedups(benchmark, scale):
    """Vectorized-vs-reference speedups, diffed against the committed report.

    Byte identity (vectorized stream == reference stream) is a hard assert
    at every scale; the committed ``BENCH_codec.json`` speedups are shown
    as the trajectory column so drift between this machine and the recorded
    run is visible in the scorecard.
    """
    reps = _CODEC_BENCH_REPS.get(scale.name, 3)

    def run():
        return run_codec_bench(shape=scale.shape3d, reps=reps)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["identical"], "vectorized codec diverged from reference"

    committed = load_report()
    committed_codecs = (committed or {}).get("codecs", {})
    lines = [format_report(report)]
    if committed:
        lines.append(
            f"committed BENCH_codec.json: commit={committed['commit'] or '?'} "
            f"shape={tuple(committed['shape'])} reps={committed['reps']}"
        )
        for name, entry in report["codecs"].items():
            past = committed_codecs.get(name)
            if past:
                lines.append(
                    f"  {name:<13} total x {entry['speedup_total']:>6.2f} now "
                    f"vs {past['speedup_total']:>6.2f} committed"
                )
    else:
        lines.append(
            "no committed BENCH_codec.json — generate one with "
            "`python -m repro codec-bench`"
        )
    print_and_save("codec_throughput", "\n".join(lines))
