"""Compressor throughput microbenchmarks (performance regression tracking).

Unlike the table/figure harnesses (single-shot experiments), these use
pytest-benchmark's normal multi-round mode so throughput regressions in the
codecs show up as statistically meaningful deltas. The grouping mirrors the
paper's split: high-throughput (szx, cuszp, zfp) vs high-ratio (sz3, sperr).
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import load_field


@pytest.fixture(scope="module")
def field(scale):
    return load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))


@pytest.mark.parametrize("name", ["szx", "cuszp", "zfp", "sz3", "sperr"])
def test_compress_throughput(benchmark, field, name):
    codec = get_compressor(name)
    eb = field.relative_error_bound(1e-2)
    benchmark.group = "compress"
    result = benchmark(codec.compress, field.data, eb)
    benchmark.extra_info["ratio"] = round(result.ratio, 2)
    benchmark.extra_info["MB"] = round(field.nbytes / 1e6, 2)
    assert result.ratio > 1.0


@pytest.mark.parametrize("name", ["szx", "cuszp", "zfp", "sz3", "sperr"])
def test_roundtrip_throughput(benchmark, field, name):
    codec = get_compressor(name)
    eb = field.relative_error_bound(1e-2)
    compressed = codec.compress(field.data, eb)
    benchmark.group = "decompress"
    out = benchmark(codec.decompress, compressed)
    assert np.abs(out - field.data).max() <= eb
