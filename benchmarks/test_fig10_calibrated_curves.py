"""Figure 10 — real vs SECRE vs calibrated compression-ratio curves."""

from repro.bench.experiments import fig10_calibrated_curves
from repro.bench.harness import print_and_save


def test_fig10_calibrated_curves(benchmark, scale):
    table = benchmark.pedantic(fig10_calibrated_curves, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig10_calibrated_curves", table)
    assert "calibrated" in table
