"""Ablation — alternative ML model families for the error-bound model."""

from repro.bench.experiments import ablation_models
from repro.bench.harness import print_and_save


def test_ablation_models(benchmark, scale):
    table = benchmark.pedantic(ablation_models, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_models", table)
    assert "forest" in table and "knn" in table
