"""Reproduction scorecard: one-page digest of all saved experiment results.

Run after the other benchmarks; aggregates `benchmarks/results/*.txt` into
a single table of experiment -> status, so a reviewer can see at a glance
which paper artifacts have been regenerated in this checkout.
"""

from pathlib import Path

from repro.bench.harness import RESULTS_DIR, format_table, print_and_save

EXPECTED = {
    "fig2_surrogate_curves": "Fig. 2  SECRE vs full-compressor curves",
    "fig3_calibration_curves": "Fig. 3  calibration of SPERR error curves",
    "fig5a_training_scaling": "Fig. 5a training-time scaling",
    "fig5b_bo_convergence": "Fig. 5b BO convergence",
    "fig6_feature_extraction": "Fig. 6  feature extraction vs codecs",
    "fig7_multi_domain": "Fig. 7  multi-domain accuracy",
    "fig8_setup_time": "Fig. 8  setup time FXRZ vs CAROL",
    "fig9_inference_time": "Fig. 9  inference time per dataset",
    "fig10_calibrated_curves": "Fig. 10 calibrated ratio curves",
    "tab3_single_domain": "Tab. 3  single-domain accuracy",
    "tab4_collection_time": "Tab. 4  collection time",
    "tab5_calibration": "Tab. 5  calibration effectiveness",
    "ablation_sampling": "Abl.    surrogate sampling rates",
    "ablation_inverse": "Abl.    model vs curve inversion",
    "ablation_models": "Abl.    model families",
    "ablation_fraz": "Abl.    CAROL vs FRaZ",
    "ablation_fixed_rate": "Abl.    fixed-rate vs error-bounded",
    "ablation_drift": "Abl.    drift + refinement",
    "ablation_entropy": "Abl.    SZ3 entropy backends",
    "codec_throughput": "Perf.   vectorized encoding kernels vs reference",
}


def test_summary_scorecard(benchmark):
    def build():
        rows = []
        done = 0
        for name, title in EXPECTED.items():
            path = Path(RESULTS_DIR) / f"{name}.txt"
            if path.exists():
                lines = path.read_text().strip().splitlines()
                status = "regenerated"
                done += 1
                detail = lines[0][:72] if lines else ""
            else:
                status = "NOT RUN"
                detail = f"pytest benchmarks/test_{name}.py --benchmark-only"
            rows.append([title, status, detail])
        return format_table(
            f"Reproduction scorecard — {done}/{len(EXPECTED)} experiments regenerated",
            ["experiment", "status", "detail"],
            rows,
            note="Each row's table lives in benchmarks/results/<name>.txt; "
            "EXPERIMENTS.md records the paper-vs-measured comparison.",
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print_and_save("summary_scorecard", table)
    assert "scorecard" in table
