"""Surrogate-estimation and feature-extraction throughput microbenchmarks."""

import numpy as np
import pytest

from repro.data import load_field
from repro.features.parallel import extract_features_parallel
from repro.features.serial import extract_features_serial
from repro.surrogate import get_surrogate


@pytest.fixture(scope="module")
def field(scale):
    return load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))


@pytest.fixture(scope="module")
def ebs(field, scale):
    return scale.rel_ebs(6) * field.value_range


@pytest.mark.parametrize("name", ["szx", "zfp", "sz3", "sperr", "cuszp"])
def test_surrogate_curve_throughput(benchmark, field, ebs, name):
    surrogate = get_surrogate(name)
    benchmark.group = "surrogate-curve"
    ratios, _ = benchmark(surrogate.estimate_curve, field.data, ebs)
    assert (ratios > 0).all()


@pytest.mark.parametrize(
    "extractor,kwargs",
    [
        (extract_features_serial, {"stride": None}),
        (extract_features_serial, {"stride": 4}),
        (extract_features_parallel, {}),
    ],
    ids=["serial-full", "serial-sampled", "parallel"],
)
def test_feature_extraction_throughput(benchmark, field, extractor, kwargs):
    benchmark.group = "features"
    feats, _ = benchmark(extractor, field.data, **kwargs)
    assert np.isfinite(feats).all()
