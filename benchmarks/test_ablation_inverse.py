"""Ablation — learned forest model vs per-input curve inversion."""

from repro.bench.experiments import ablation_inverse
from repro.bench.harness import print_and_save


def test_ablation_inverse(benchmark, scale):
    table = benchmark.pedantic(ablation_inverse, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_inverse", table)
    assert "inversion" in table
