"""Figure 7 — multi-domain requested vs achieved compression ratios."""

from repro.bench.experiments_model import fig7_multi_domain
from repro.bench.harness import print_and_save


def test_fig7_multi_domain(benchmark, scale):
    table = benchmark.pedantic(fig7_multi_domain, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig7_multi_domain", table)
    assert "requested" in table
