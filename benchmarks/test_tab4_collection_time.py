"""Table 4 — training-data collection time: full compressor vs SECRE."""

from repro.bench.experiments import tab4_collection_time
from repro.bench.harness import print_and_save


def test_tab4_collection_time(benchmark, scale):
    table = benchmark.pedantic(tab4_collection_time, args=(scale,), rounds=1, iterations=1)
    print_and_save("tab4_collection_time", table)
    assert "Speedup" in table
