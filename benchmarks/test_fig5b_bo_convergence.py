"""Figure 5b — n_estimators trajectory over BO iterations, six datasets."""

from repro.bench.experiments_model import fig5b_bo_convergence
from repro.bench.harness import print_and_save


def test_fig5b_bo_convergence(benchmark, scale):
    table = benchmark.pedantic(fig5b_bo_convergence, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig5b_bo_convergence", table)
    assert "miranda" in table and "mrs" in table
