"""Ablation bench: fraz (see repro.bench.experiments_model.ablation_fraz)."""

from repro.bench.experiments_model import ablation_fraz
from repro.bench.harness import print_and_save


def test_ablation_fraz(benchmark, scale):
    table = benchmark.pedantic(ablation_fraz, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_fraz", table)
    assert "Ablation" in table
