"""Benchmark-suite configuration.

Each file regenerates one paper table/figure (see DESIGN.md's experiment
index). Scale with REPRO_SCALE=small|medium (default small). Results are
printed and saved under benchmarks/results/.
"""

import pytest

from repro.bench.harness import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()
