"""Figure 2 — f(e) estimated by the full compressor vs SECRE, with runtimes."""

from repro.bench.experiments import fig2_surrogate_curves
from repro.bench.harness import print_and_save


def test_fig2_surrogate_curves(benchmark, scale):
    table = benchmark.pedantic(fig2_surrogate_curves, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig2_surrogate_curves", table)
    assert "szx" in table and "sperr" in table
