"""Figure 5a — training time vs training-set size (grid vs BO vs BO-warm)."""

from repro.bench.experiments_model import fig5a_training_scaling
from repro.bench.harness import print_and_save


def test_fig5a_training_scaling(benchmark, scale):
    table = benchmark.pedantic(fig5a_training_scaling, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig5a_training_scaling", table)
    assert "BO warm" in table
