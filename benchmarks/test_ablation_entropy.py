"""Ablation — SZ3 entropy backend (Huffman+LZ vs range coder)."""

from repro.bench.experiments import ablation_entropy
from repro.bench.harness import print_and_save


def test_ablation_entropy(benchmark, scale):
    table = benchmark.pedantic(ablation_entropy, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_entropy", table)
    assert "huffman" in table and "range" in table
