"""Figure 6 — feature-extraction variants vs compressor runtimes on NYX."""

from repro.bench.experiments_model import fig6_feature_extraction
from repro.bench.harness import print_and_save


def test_fig6_feature_extraction(benchmark, scale):
    table = benchmark.pedantic(fig6_feature_extraction, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig6_feature_extraction", table)
    assert "Serial-Full" in table and "simulated" in table
