"""Ablation bench: fixed_rate (see repro.bench.experiments_model.ablation_fixed_rate)."""

from repro.bench.experiments_model import ablation_fixed_rate
from repro.bench.harness import print_and_save


def test_ablation_fixed_rate(benchmark, scale):
    table = benchmark.pedantic(ablation_fixed_rate, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_fixed_rate", table)
    assert "Ablation" in table
