"""Figure 9 — per-dataset feature-extraction time, FXRZ vs CAROL."""

from repro.bench.experiments_model import fig9_inference_time
from repro.bench.harness import print_and_save


def test_fig9_inference_time(benchmark, scale):
    table = benchmark.pedantic(fig9_inference_time, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig9_inference_time", table)
    assert "CAROL" in table
