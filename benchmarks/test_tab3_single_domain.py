"""Table 3 — single-domain estimation error, FXRZ vs CAROL on NYX fields."""

from repro.bench.experiments_model import tab3_single_domain
from repro.bench.harness import print_and_save


def test_tab3_single_domain(benchmark, scale):
    table = benchmark.pedantic(tab3_single_domain, args=(scale,), rounds=1, iterations=1)
    print_and_save("tab3_single_domain", table)
    assert "Average" in table
