"""Table 5 — calibration effectiveness: speedup and alpha vs #points."""

from repro.bench.experiments import tab5_calibration
from repro.bench.harness import print_and_save


def test_tab5_calibration(benchmark, scale):
    table = benchmark.pedantic(tab5_calibration, args=(scale,), rounds=1, iterations=1)
    print_and_save("tab5_calibration", table)
    assert "SZ3" in table and "SPERR" in table
