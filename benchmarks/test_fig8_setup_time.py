"""Figure 8 — setup (collection + training) time, FXRZ vs CAROL."""

from repro.bench.experiments_model import fig8_setup_time
from repro.bench.harness import print_and_save


def test_fig8_setup_time(benchmark, scale):
    table = benchmark.pedantic(fig8_setup_time, args=(scale,), rounds=1, iterations=1)
    print_and_save("fig8_setup_time", table)
    assert "speedup" in table
