"""Ablation bench: drift (see repro.bench.experiments_model.ablation_drift)."""

from repro.bench.experiments_model import ablation_drift
from repro.bench.harness import print_and_save


def test_ablation_drift(benchmark, scale):
    table = benchmark.pedantic(ablation_drift, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_drift", table)
    assert "Ablation" in table
