"""Ablation — surrogate sampling-rate sweep (design-choice bench)."""

from repro.bench.experiments import ablation_sampling
from repro.bench.harness import print_and_save


def test_ablation_sampling(benchmark, scale):
    table = benchmark.pedantic(ablation_sampling, args=(scale,), rounds=1, iterations=1)
    print_and_save("ablation_sampling", table)
    assert "sampling" in table
