"""Unit tests for the LZ77 lossless backend."""

import numpy as np
import pytest

from repro.encoding.lz77 import lz77_compress, lz77_decompress


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abc",
            b"aaaa",
            b"abcabcabcabc",
            b"the quick brown fox " * 40,
            bytes(range(256)),
        ],
    )
    def test_fixed_inputs(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    def test_random_bytes(self, rng):
        data = bytes(rng.integers(0, 256, 5000).astype(np.uint8))
        assert lz77_decompress(lz77_compress(data)) == data

    def test_low_entropy_bytes(self, rng):
        data = bytes(rng.integers(0, 3, 8000).astype(np.uint8))
        blob = lz77_compress(data)
        assert lz77_decompress(blob) == data
        assert len(blob) < len(data)  # must actually compress

    def test_overlapping_match(self):
        # Runs force distance < length copies.
        data = b"x" + b"ab" * 1000
        assert lz77_decompress(lz77_compress(data)) == data

    def test_long_zero_run(self):
        data = b"\x00" * 100_000
        blob = lz77_compress(data)
        assert len(blob) < 200
        assert lz77_decompress(blob) == data


class TestCompressionBehaviour:
    def test_incompressible_overhead_bounded(self, rng):
        data = bytes(rng.integers(0, 256, 4096).astype(np.uint8))
        blob = lz77_compress(data)
        assert len(blob) <= len(data) * 1.05 + 16

    def test_repetition_beats_noise(self, rng):
        rep = b"pattern!" * 512
        noise = bytes(rng.integers(0, 256, len(rep)).astype(np.uint8))
        assert len(lz77_compress(rep)) < 0.2 * len(lz77_compress(noise))


class TestCorruption:
    def test_bad_distance_detected(self):
        blob = bytearray(lz77_compress(b"abcdabcdabcd"))
        # Token structure: forge a stream claiming an impossible distance.
        forged = bytes([12, 0, 4, 200])  # total=12, lit=0, len=4, dist=200
        with pytest.raises(ValueError):
            lz77_decompress(forged)

    def test_truncated_stream(self):
        blob = lz77_compress(b"hello world hello world")
        with pytest.raises((ValueError, IndexError)):
            lz77_decompress(blob[: len(blob) // 2])
