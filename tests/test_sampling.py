"""Tests for SECRE's sampling strategies (Table 1)."""

import numpy as np
import pytest

from repro.surrogate.sampling import (
    sample_chunk,
    sample_flat_blocks,
    sample_grid_blocks,
    sample_points,
)


class TestFlatBlocks:
    def test_fraction_and_alignment(self, rng):
        data = rng.standard_normal(128 * 256)
        sample, frac = sample_flat_blocks(data, 128, 16, min_blocks=8)
        assert sample.size % 128 == 0
        assert frac == pytest.approx(sample.size / data.size)
        assert 0 < frac <= 1

    def test_small_input_returns_everything(self, rng):
        data = rng.standard_normal(50)
        sample, frac = sample_flat_blocks(data, 128, 128)
        assert frac == 1.0
        np.testing.assert_array_equal(sample, data)

    def test_stride_shrinks_for_min_blocks(self, rng):
        data = rng.standard_normal(128 * 64)  # 64 blocks
        sample, frac = sample_flat_blocks(data, 128, 128, min_blocks=8)
        assert sample.size // 128 >= 8

    def test_samples_are_views_of_input_values(self):
        data = np.arange(128 * 4, dtype=float)
        sample, _ = sample_flat_blocks(data, 128, 1)
        np.testing.assert_array_equal(sample[:128], data[:128])


class TestGridBlocks:
    def test_block_shape(self, rng):
        data = rng.standard_normal((16, 16, 16))
        blocks, frac = sample_grid_blocks(data, 4, 2)
        assert blocks.shape[1:] == (4, 4, 4)
        assert 0 < frac <= 1

    def test_first_block_is_corner(self, rng):
        data = rng.standard_normal((8, 8))
        blocks, _ = sample_grid_blocks(data, 4, 1)
        np.testing.assert_array_equal(blocks[0], data[:4, :4])

    def test_small_array_padded(self, rng):
        data = rng.standard_normal((3, 3))
        blocks, _ = sample_grid_blocks(data, 4, 1)
        assert blocks.shape == (1, 4, 4)
        np.testing.assert_array_equal(blocks[0, :3, :3], data)


class TestPoints:
    def test_stride_preserves_ndim(self, rng):
        data = rng.standard_normal((20, 25, 30))
        sampled, frac = sample_points(data, 5)
        assert sampled.ndim == 3
        assert sampled.shape == (4, 5, 6)
        assert frac == pytest.approx(sampled.size / data.size)

    def test_stride_one_is_identity(self, rng):
        data = rng.standard_normal((7, 9))
        sampled, frac = sample_points(data, 1)
        assert frac == 1.0
        np.testing.assert_array_equal(sampled, data)


class TestChunk:
    def test_centered_chunk(self, rng):
        data = rng.standard_normal((32, 32))
        chunk, frac = sample_chunk(data, 0.5)
        assert chunk.shape == (16, 16)
        assert frac == pytest.approx(0.25)
        # centered: the chunk is the middle of the array
        np.testing.assert_array_equal(chunk, data[8:24, 8:24])

    def test_tiny_axes_taken_fully(self):
        data = np.arange(64.0).reshape(8, 8)
        chunk, frac = sample_chunk(data, 0.5)
        assert chunk.shape == (8, 8)  # 8-element floor per axis
        assert frac == 1.0

    def test_fraction_one_full_array(self, rng):
        data = rng.standard_normal((10, 12))
        chunk, frac = sample_chunk(data, 1.0)
        assert frac == 1.0
        np.testing.assert_array_equal(chunk, data)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            sample_chunk(np.ones((4, 4)), 0.0)

    def test_large_3d_fraction(self, rng):
        data = rng.standard_normal((32, 32, 32))
        chunk, frac = sample_chunk(data, 0.5)
        assert chunk.shape == (16, 16, 16)
        assert frac == pytest.approx(1 / 8)
