"""Unit tests for canonical Huffman coding."""

import numpy as np
import pytest

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import (
    HuffmanCodec,
    canonical_codes,
    huffman_code_lengths,
    huffman_encoded_bits,
)


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = huffman_code_lengths(np.array([10, 10, 10, 10]))
        assert list(lengths) == [2, 2, 2, 2]

    def test_skewed_distribution(self):
        lengths = huffman_code_lengths(np.array([100, 1, 1]))
        assert lengths[0] == 1
        assert lengths[1] == 2 and lengths[2] == 2

    def test_zero_frequency_symbols_excluded(self):
        lengths = huffman_code_lengths(np.array([5, 0, 7, 0]))
        assert lengths[1] == 0 and lengths[3] == 0
        assert lengths[0] > 0 and lengths[2] > 0

    def test_single_symbol_gets_one_bit(self):
        lengths = huffman_code_lengths(np.array([0, 42, 0]))
        assert list(lengths) == [0, 1, 0]

    def test_all_zero(self):
        assert huffman_code_lengths(np.zeros(4, dtype=int)).sum() == 0

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([1, -1]))

    def test_kraft_inequality(self, rng):
        freq = rng.integers(0, 1000, 64)
        lengths = huffman_code_lengths(freq)
        used = lengths[lengths > 0]
        assert (2.0 ** (-used.astype(float))).sum() <= 1.0 + 1e-12

    def test_optimality_vs_entropy(self, rng):
        """Huffman cost within 1 bit/symbol of entropy."""
        freq = rng.integers(1, 500, 16)
        n = freq.sum()
        p = freq / n
        entropy = -(p * np.log2(p)).sum()
        bits = huffman_encoded_bits(freq) / n
        assert entropy <= bits + 1e-12 <= entropy + 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self, rng):
        freq = rng.integers(0, 100, 20)
        lengths = huffman_code_lengths(freq)
        codes = canonical_codes(lengths)
        entries = [
            (format(int(codes[i]), f"0{int(lengths[i])}b"))
            for i in range(20)
            if lengths[i] > 0
        ]
        for i, a in enumerate(entries):
            for j, b in enumerate(entries):
                if i != j:
                    assert not b.startswith(a), (a, b)

    def test_consecutive_codes_same_length(self):
        lengths = np.array([2, 2, 2, 2])
        codes = canonical_codes(lengths)
        assert list(codes) == [0, 1, 2, 3]


class TestCodecRoundTrip:
    @pytest.mark.parametrize("size,alphabet", [(100, 5), (5000, 64), (300, 2)])
    def test_random_streams(self, rng, size, alphabet):
        syms = rng.integers(0, alphabet, size)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        out = codec.decode(BitReader(w.getvalue()), size)
        np.testing.assert_array_equal(out, syms)

    def test_skewed_stream(self, rng):
        syms = rng.integers(0, 30, 4000)
        syms[rng.random(4000) < 0.9] = 7
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        # Heavily skewed -> far below fixed-width cost.
        assert w.bit_length < 0.5 * 4000 * 5
        np.testing.assert_array_equal(codec.decode(BitReader(w.getvalue()), 4000), syms)

    def test_single_symbol_stream(self):
        syms = np.full(50, 3)
        codec = HuffmanCodec.fit(syms, alphabet_size=10)
        w = BitWriter()
        codec.encode(syms, w)
        assert w.bit_length == 50
        np.testing.assert_array_equal(codec.decode(BitReader(w.getvalue()), 50), syms)

    def test_encoded_bits_matches_stream(self, rng):
        syms = rng.integers(0, 12, 800)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        assert codec.encoded_bits(syms) == w.bit_length

    def test_unknown_symbol_rejected(self):
        codec = HuffmanCodec.fit(np.array([0, 0, 1, 1]))
        with pytest.raises(ValueError):
            codec.encode(np.array([2]), BitWriter())

    def test_negative_symbol_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec.fit(np.array([-1, 0]))

    def test_empty_encode_decode(self):
        codec = HuffmanCodec.fit(np.array([1, 1, 2]))
        w = BitWriter()
        codec.encode(np.zeros(0, dtype=np.int64), w)
        assert w.bit_length == 0
        assert codec.decode(BitReader(b""), 0).size == 0


class TestCodecSerialization:
    def test_codebook_round_trip(self, rng):
        syms = rng.integers(0, 40, 1000)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.serialize(w)
        codec.encode(syms, w)
        r = BitReader(w.getvalue())
        restored = HuffmanCodec.deserialize(r)
        np.testing.assert_array_equal(restored.lengths, codec.lengths)
        np.testing.assert_array_equal(restored.codes, codec.codes)
        np.testing.assert_array_equal(restored.decode(r, 1000), syms)
