"""ASCII plot renderer tests."""

import numpy as np
import pytest

from repro.bench.plots import ascii_plot


class TestRendering:
    def test_basic_structure(self):
        x = np.linspace(1, 10, 10)
        out = ascii_plot({"a": (x, x**2)}, width=30, height=8, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert sum(1 for l in lines if "|" in l) == 8
        assert "o a" in out

    def test_multiple_series_distinct_markers(self):
        x = np.linspace(1, 5, 5)
        out = ascii_plot({"up": (x, x), "down": (x, x[::-1])})
        assert "o up" in out and "x down" in out
        assert "o" in out and "x" in out

    def test_log_axes_labelled(self):
        x = np.geomspace(1e-3, 1e-1, 8)
        out = ascii_plot({"s": (x, 10 * x)}, logx=True, logy=True)
        assert "[log]" in out
        assert "0.001" in out

    def test_monotone_series_renders_monotone(self):
        """Marker columns must rise left to right for an increasing series."""
        x = np.linspace(1, 10, 10)
        out = ascii_plot({"s": (x, x)}, width=20, height=10)
        rows = [l.split("|")[1] for l in out.splitlines() if l.count("|") == 2]
        cols = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "o":
                    cols[c] = r
        xs = sorted(cols)
        heights = [cols[c] for c in xs]
        assert all(a >= b for a, b in zip(heights, heights[1:]))

    def test_constant_series(self):
        x = np.arange(1.0, 6.0)
        out = ascii_plot({"flat": (x, np.full(5, 3.0))})
        assert "flat" in out


class TestValidation:
    def test_empty_series_dict(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.arange(3), np.arange(4))})

    def test_log_with_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.array([-1.0, 1.0]), np.ones(2))}, logx=True)
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.ones(2), np.array([0.0, 1.0]))}, logy=True)
