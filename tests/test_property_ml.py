"""Property-based tests for the ML substrate and calibration algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metrics import estimation_error, signed_estimation_errors
from repro.core.prediction import invert_curve
from repro.ml.space import PAPER_SPACE, SCALED_SPACE
from repro.ml.tree import DecisionTreeRegressor

_SETTINGS = dict(max_examples=40, deadline=None)


class TestTreeProperties:
    @given(
        arrays(np.float64, (30, 3), elements=st.floats(-100, 100)),
        arrays(np.float64, (30,), elements=st.floats(-100, 100)),
    )
    @settings(**_SETTINGS)
    def test_predictions_within_target_range(self, X, y):
        """A regression tree predicts means of training subsets, so every
        prediction lies within [min(y), max(y)]."""
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(
        arrays(np.float64, (25, 2), elements=st.floats(-10, 10)),
        arrays(np.float64, (25,), elements=st.floats(-10, 10)),
        st.integers(1, 8),
    )
    @settings(**_SETTINGS)
    def test_leaf_sizes_respect_minimum(self, X, y, msl):
        tree = DecisionTreeRegressor(min_samples_leaf=msl).fit(X, y)
        leaves = tree.feature == -1
        assert tree.n_samples[leaves].min() >= min(msl, 25)


class TestSpaceProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(**_SETTINGS)
    def test_sample_encode_decode_identity(self, property_seed, seed):
        # mix the shared session seed with the hypothesis-drawn one so the
        # sweep is reproducible via REPRO_TEST_SEED yet varies per example
        rng = np.random.default_rng([property_seed, seed])
        for space in (PAPER_SPACE, SCALED_SPACE):
            params = space.sample(rng)
            assert space.decode(space.encode(params)) == params


class TestMetricProperties:
    @given(
        arrays(np.float64, (10,), elements=st.floats(0.1, 1e6)),
        arrays(np.float64, (10,), elements=st.floats(0.1, 1e6)),
    )
    @settings(**_SETTINGS)
    def test_alpha_nonnegative_and_zero_iff_equal(self, true, est):
        alpha = estimation_error(true, est)
        assert alpha >= 0
        assert estimation_error(true, true) == 0.0

    @given(arrays(np.float64, (8,), elements=st.floats(0.1, 1e4)))
    @settings(**_SETTINGS)
    def test_signed_correction_is_exact_inverse(self, true):
        """Applying the signed correction with the exact error recovers the
        truth — the fixed point of the calibration formulas."""
        est = true * 1.37
        alpha = signed_estimation_errors(true, est)
        recovered = est / (1.0 + alpha / 100.0)
        np.testing.assert_allclose(recovered, true, rtol=1e-9)


class TestInvertCurveProperties:
    @given(
        st.floats(1e-4, 1e-1),
        st.floats(0.2, 3.0),
        st.floats(0.05, 0.95),
    )
    @settings(**_SETTINGS)
    def test_inverse_consistency_on_powerlaws(self, eb_lo, exponent, frac):
        """For monotone power-law curves, invert_curve(f(e*)) == e*."""
        ebs = np.geomspace(eb_lo, eb_lo * 100, 24)
        ratios = 5.0 * (ebs / ebs[0]) ** exponent
        target_idx = frac * (ebs.size - 1)
        e_star = ebs[0] * (ebs[-1] / ebs[0]) ** (target_idx / (ebs.size - 1))
        target = 5.0 * (e_star / ebs[0]) ** exponent
        recovered = invert_curve(ebs, ratios, target)
        np.testing.assert_allclose(recovered, e_star, rtol=1e-6)

    @given(
        arrays(np.float64, (12,), elements=st.floats(1.0, 1e4)),
        st.floats(0.5, 2e4),
    )
    @settings(**_SETTINGS)
    def test_result_always_within_grid(self, ratios, target):
        ebs = np.geomspace(1e-3, 1e-1, 12)
        eb = invert_curve(ebs, ratios, target)
        assert ebs[0] * (1 - 1e-9) <= eb <= ebs[-1] * (1 + 1e-9)
