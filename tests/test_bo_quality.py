"""Bayesian-optimization quality: does the GP guidance actually help?

The paper's claim behind core contribution 3 is that BO's targeted search
converges with fewer evaluations than random sampling. These tests check
that statistically on synthetic objectives (seed-averaged to be stable).
"""

import numpy as np

from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.space import Choice, IntRange, SearchSpace


def _space():
    return SearchSpace(
        {
            "x": IntRange(0, 200),
            "y": IntRange(0, 200),
            "flag": Choice((True, False)),
        }
    )


def _objective(params):
    # smooth unimodal objective with a categorical bonus
    return (
        -((params["x"] - 140) ** 2) / 400.0
        - ((params["y"] - 60) ** 2) / 400.0
        + (5.0 if params["flag"] else 0.0)
    )


class TestBOvsRandom:
    def test_bo_beats_random_on_average(self):
        budget = 14
        bo_scores, rnd_scores = [], []
        for seed in range(5):
            space = _space()
            bo = BayesianOptimizer(space, n_initial=4, random_state=seed)
            res = bo.run(_objective, n_iter=budget)
            bo_scores.append(res.best_score)

            rng = np.random.default_rng(seed)
            rnd_scores.append(
                max(_objective(space.sample(rng)) for _ in range(budget))
            )
        assert np.mean(bo_scores) >= np.mean(rnd_scores) - 1e-9

    def test_bo_improves_over_its_own_initial_phase(self):
        space = _space()
        bo = BayesianOptimizer(space, n_initial=4, random_state=0)
        res = bo.run(_objective, n_iter=16)
        initial_best = max(h.score for h in res.history[:4])
        assert res.best_score >= initial_best

    def test_suggestions_concentrate_near_optimum_late(self):
        space = _space()
        bo = BayesianOptimizer(space, n_initial=4, random_state=1)
        res = bo.run(_objective, n_iter=20)
        late = res.history[-5:]
        dist = np.mean([abs(h.params["x"] - 140) + abs(h.params["y"] - 60) for h in late])
        early = res.history[:5]
        dist_early = np.mean(
            [abs(h.params["x"] - 140) + abs(h.params["y"] - 60) for h in early]
        )
        assert dist <= dist_early + 20  # exploitation pulls toward the optimum


class TestWarmStartValue:
    def test_warm_start_matches_cold_with_fewer_evals(self):
        """Warm-started BO with half the budget reaches (at least) the cold
        run's quality — the incremental-refinement payoff."""
        space = _space()
        cold = BayesianOptimizer(space, n_initial=4, random_state=2)
        cold_res = cold.run(_objective, n_iter=14)

        warm = BayesianOptimizer.from_checkpoint(
            space, cold.checkpoint(), random_state=3
        )
        warm_res = warm.run(_objective, n_iter=6)
        assert warm_res.best_score >= cold_res.best_score - 1e-9
