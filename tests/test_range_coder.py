"""Range coder unit + property tests, and the SZ3 entropy-backend option."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.sz3 import SZ3Compressor
from repro.encoding.range_coder import (
    RangeEncoder,
    _quantized_freqs,
    range_decode,
    range_encode,
)


class TestQuantizedFreqs:
    def test_passthrough_small_totals(self):
        f = np.array([3, 0, 7])
        np.testing.assert_array_equal(_quantized_freqs(f), f)

    def test_rescales_large_totals(self):
        f = np.array([10**9, 1])
        q = _quantized_freqs(f)
        assert q.sum() < (1 << 16)
        assert q[1] >= 1  # present symbols never vanish

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _quantized_freqs(np.array([-1, 2]))

    def test_rejects_empty_model(self):
        with pytest.raises(ValueError):
            _quantized_freqs(np.zeros(4, dtype=int))


class TestRoundTrip:
    @pytest.mark.parametrize("alphabet", [2, 16, 300])
    def test_random_streams(self, rng, alphabet):
        syms = rng.integers(0, alphabet, 3000)
        payload, freq = range_encode(syms, alphabet_size=alphabet)
        np.testing.assert_array_equal(range_decode(payload, freq, syms.size), syms)

    def test_near_entropy_on_skewed(self, rng):
        syms = np.where(rng.random(20000) < 0.95, 3, rng.integers(0, 64, 20000))
        payload, freq = range_encode(syms)
        p = np.bincount(syms) / syms.size
        p = p[p > 0]
        entropy = -(p * np.log2(p)).sum()
        bits_per_sym = len(payload) * 8 / syms.size
        # order-0 optimal to within a few hundredths of a bit
        assert bits_per_sym <= entropy + 0.05

    def test_beats_huffman_floor_on_heavy_skew(self, rng):
        """Huffman pays >= 1 bit/symbol; the range coder doesn't."""
        syms = np.where(rng.random(10000) < 0.98, 0, 1)
        payload, freq = range_encode(syms)
        assert len(payload) * 8 / syms.size < 0.5

    def test_empty_stream(self):
        payload, freq = range_encode(np.zeros(0, dtype=np.int64), alphabet_size=4)
        assert payload == b""
        assert range_decode(payload, freq, 0).size == 0

    def test_zero_frequency_symbol_rejected(self):
        enc = RangeEncoder(np.array([5, 0, 5]))
        with pytest.raises(ValueError):
            enc.encode(np.array([1]))

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, stream):
        syms = np.array(stream, dtype=np.int64)
        payload, freq = range_encode(syms)
        np.testing.assert_array_equal(range_decode(payload, freq, syms.size), syms)


class TestSZ3EntropyBackends:
    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            SZ3Compressor(entropy="zstd")

    @pytest.mark.parametrize("entropy", ["huffman", "range"])
    @pytest.mark.parametrize("predictor", ["interp", "lorenzo"])
    def test_round_trip_all_combinations(self, smooth2d, entropy, predictor):
        codec = SZ3Compressor(predictor=predictor, entropy=entropy)
        out, res = codec.roundtrip(smooth2d, 1e-3)
        assert np.abs(out - smooth2d).max() <= 1e-3
        assert res.metadata["entropy"] == entropy

    def test_backends_comparable_size(self, smooth3d):
        """Neither backend should be wildly worse — they trade LZ run
        capture (huffman+lz) against sub-bit coding (range)."""
        eb = 1e-2 * smooth3d.std()
        r_h = SZ3Compressor(entropy="huffman").compression_ratio(smooth3d, eb)
        r_r = SZ3Compressor(entropy="range").compression_ratio(smooth3d, eb)
        assert 0.5 < r_h / r_r < 2.0
