"""Generic sampled-full surrogate and process-parallel collection."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.metrics import estimation_error
from repro.core.parallel_collection import ParallelCollector
from repro.data import load_dataset, load_field
from repro.surrogate.sampled_full import SampledFullSurrogate

SHAPE = (16, 20, 20)
REL = np.geomspace(1e-3, 1e-1, 5)


class TestSampledFullSurrogate:
    @pytest.mark.parametrize(
        "codec,window",
        [("szx", "block"), ("sz3", "point"), ("sperr", "chunk"), ("zfp", "block")],
    )
    def test_window_matched_estimates(self, codec, window):
        """Compressor Behavior 3: window-matched full-on-sample estimation
        works for any registered codec."""
        field = load_field("miranda/viscosity", shape=(20, 28, 28))
        ebs = REL * field.value_range
        true = np.array(
            [get_compressor(codec).compression_ratio(field.data, eb) for eb in ebs]
        )
        sur = SampledFullSurrogate(codec, window=window, fraction=0.15)
        est, elapsed = sur.estimate_curve(field.data, ebs)
        assert elapsed >= 0
        # real coder on a sample: decent accuracy without a tailored surrogate
        assert estimation_error(true, est) < 60.0

    def test_point_window_preserves_dimensionality(self):
        field = load_field("miranda/density", shape=SHAPE)
        sur = SampledFullSurrogate("sz3", window="point", fraction=0.1)
        sample = sur._sample(field.data.astype(np.float64))
        assert sample.ndim == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SampledFullSurrogate("szx", window="stars")
        with pytest.raises(ValueError):
            SampledFullSurrogate("szx", fraction=0.0)
        with pytest.raises(KeyError):
            SampledFullSurrogate("rar")

    def test_calibration_composes(self):
        """The conclusion's recipe: sampled-full estimate + calibration."""
        from repro.core.calibration import Calibrator

        field = load_field("miranda/viscosity", shape=(20, 28, 28))
        codec = get_compressor("sz3")
        ebs = REL * field.value_range
        true = np.array([codec.compression_ratio(field.data, eb) for eb in ebs])
        est, _ = SampledFullSurrogate("sz3", window="point", fraction=0.1).estimate_curve(
            field.data, ebs
        )
        cal, _ = Calibrator(n_points=3).calibrate_curve(field.data, ebs, est, codec)
        assert estimation_error(true, cal) <= estimation_error(true, est) + 1e-9


class TestParallelCollector:
    def test_matches_serial_results(self):
        fields = load_dataset("miranda", shape=SHAPE)[:3]
        par = ParallelCollector("szx", mode="secre", rel_error_bounds=REL, n_workers=2)
        data, report = par.collect(fields)
        assert report.n_workers == 2
        assert data.n_rows == 3 * REL.size
        from repro.core.collection import TrainingCollector

        serial = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields)
        for a, b in zip(data.records, serial.records):
            np.testing.assert_allclose(a.ratios, b.ratios)

    def test_single_worker_path(self):
        fields = load_dataset("hcci", shape=SHAPE)
        par = ParallelCollector("szx", mode="full", rel_error_bounds=REL, n_workers=1)
        data, report = par.collect(fields)
        assert data.n_rows == REL.size
        assert report.cpu_seconds > 0

    def test_reports_resource_tradeoff(self):
        """Research objective 2: parallelism reduces wall time but not work —
        cpu_seconds stays on the order of the serial cost."""
        fields = load_dataset("miranda", shape=SHAPE)[:2]
        par = ParallelCollector("sperr", mode="full", rel_error_bounds=REL, n_workers=2)
        _, report = par.collect(fields)
        assert report.cpu_seconds >= report.wall_seconds * 0.3

    def test_invalid_config_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ParallelCollector("szx", mode="psychic")
