"""Feature extraction: definitions, serial/parallel agreement, GPU model."""

import numpy as np
import pytest

from repro.features import (
    FEATURE_NAMES,
    extract_features_parallel,
    extract_features_serial,
    feature_vector,
    mean_lorenzo_difference,
    mean_neighbor_difference,
    mean_spline_difference,
)
from repro.features.gpu_model import GpuCostModel


class TestDefinitions:
    def test_feature_vector_layout(self, smooth3d):
        feats = feature_vector(smooth3d)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert feats[0] == pytest.approx(smooth3d.mean())
        assert feats[1] == pytest.approx(smooth3d.max() - smooth3d.min())

    def test_constant_field_all_smoothness_zero(self):
        x = np.full((10, 10, 10), 3.0)
        feats = feature_vector(x)
        assert feats[2] == pytest.approx(0.0, abs=1e-12)  # MND
        assert feats[3] == pytest.approx(0.0, abs=1e-12)  # MLD
        assert feats[4] == pytest.approx(0.0, abs=1e-12)  # MSD

    def test_mnd_interior_value(self):
        x = np.zeros((5, 5))
        x[2, 2] = 6.0
        # at (2,2): neighbours are all 0 -> |6 - 0| = 6 contributes
        assert mean_neighbor_difference(x) > 0

    def test_smoothness_features_ordering(self, rng):
        smooth = np.cumsum(np.cumsum(rng.standard_normal((32, 32)), 0), 1)
        smooth /= smooth.std()
        rough = rng.standard_normal((32, 32))
        for fn in (mean_neighbor_difference, mean_lorenzo_difference, mean_spline_difference):
            assert fn(smooth) < fn(rough)

    def test_scale_equivariance(self, smooth2d):
        """All five features scale linearly with the data amplitude."""
        a = feature_vector(smooth2d)
        b = feature_vector(smooth2d * 10.0)
        np.testing.assert_allclose(b, a * 10.0, rtol=1e-9)


class TestSerial:
    def test_full_vs_sampled_close(self, rng):
        x = np.cumsum(np.cumsum(rng.standard_normal((64, 64)), 0), 1) / 20
        full, _ = extract_features_serial(x, stride=None)
        samp, _ = extract_features_serial(x, stride=4)
        assert np.isfinite(samp).all()
        # sampled smoothness features stay within an order of magnitude
        # (stride-4 subsampling coarsens the stencil, inflating them)
        for i in (2, 3, 4):
            assert 0.1 * full[i] < samp[i] < 10 * full[i]

    def test_sampled_faster_on_large(self, rng):
        x = rng.standard_normal((96, 96, 32))
        _, t_full = extract_features_serial(x, stride=None)
        _, t_samp = extract_features_serial(x, stride=4)
        assert t_samp < t_full

    def test_returns_elapsed(self, smooth2d):
        feats, t = extract_features_serial(smooth2d)
        assert feats.shape == (5,)
        assert t >= 0


class TestParallel:
    def test_agrees_with_serial_on_smooth(self, rng):
        x = np.cumsum(np.cumsum(np.cumsum(rng.standard_normal((64, 64, 64)), 0), 1), 2)
        x /= np.abs(x).max()
        full, _ = extract_features_serial(x, stride=None)
        par, _ = extract_features_parallel(x)
        # The smoothness features (what drives compressibility) track the
        # full computation; mean/range of a 1.5% sample of a nonstationary
        # field legitimately differ, like the paper's GPU kernel.
        assert np.isfinite(par).all()
        for i in (2, 3, 4):
            assert 0.3 * full[i] < par[i] < 3.0 * full[i]

    def test_small_array_fallback(self, rng):
        x = rng.standard_normal((6, 6))
        feats, _ = extract_features_parallel(x)
        assert np.isfinite(feats).all()

    def test_1d_input(self, rng):
        x = np.cumsum(rng.standard_normal(500))
        feats, _ = extract_features_parallel(x)
        assert feats.shape == (5,)
        assert np.isfinite(feats).all()

    def test_deterministic(self, smooth3d):
        a, _ = extract_features_parallel(smooth3d)
        b, _ = extract_features_parallel(smooth3d)
        np.testing.assert_array_equal(a, b)


class TestGpuModel:
    def test_sampled_bytes_fraction(self):
        model = GpuCostModel()
        nbytes = model.sampled_bytes((512, 512, 512), itemsize=4)
        total = 512**3 * 4
        assert 0.01 * total < nbytes < 0.05 * total  # ~1.5% like the paper

    def test_kernel_time_order_of_magnitude(self):
        """Paper Fig. 6: ~5 ms on the 512MB NYX field."""
        t = GpuCostModel().kernel_time((512, 512, 512), itemsize=4)
        assert 1e-3 < t < 2e-2

    def test_monotone_in_size(self):
        m = GpuCostModel()
        assert m.kernel_time((256,) * 3) <= m.kernel_time((512,) * 3)

    def test_small_array_dominated_by_overhead(self):
        m = GpuCostModel()
        t = m.kernel_time((32, 32, 32))
        assert t == pytest.approx(m.launch_overhead_s, rel=0.5)
