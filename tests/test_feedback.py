"""On-the-fly feedback loop tests (paper future work)."""

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field
from repro.core.feedback import FeedbackLoop, FeedbackObservation

SHAPE = (12, 16, 16)
REL = np.geomspace(1e-3, 1e-1, 5)


@pytest.fixture()
def fitted():
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
    fw.fit(load_dataset("miranda", shape=SHAPE)[:3])
    return fw


class TestObservation:
    def test_relative_error(self):
        obs = FeedbackObservation(np.zeros(5), 0.1, achieved_ratio=8.0, target_ratio=10.0)
        assert obs.relative_error == pytest.approx(0.2)


class TestLoop:
    def test_serving_records_feedback(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=100)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        result, pred = loop.compress_to_ratio(field.data, 5.0)
        assert len(loop.observations) == 1
        obs = loop.observations[0]
        assert obs.error_bound == pred.error_bound
        assert obs.achieved_ratio == pytest.approx(result.ratio)

    def test_refresh_triggered_by_count(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=3, error_threshold=10.0)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        for _ in range(3):
            loop.compress_to_ratio(field.data, 5.0)
        assert loop.refreshes == 1
        assert len(loop._pending) == 0  # folded into the model

    def test_refresh_triggered_by_error(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=100, error_threshold=0.05)
        # Inject degenerate feedback with large relative error.
        feats = np.ones(5)
        for i in range(30):
            loop.record(feats, 0.1, achieved_ratio=2.0, target_ratio=10.0)
            if loop.refreshes:
                break
        assert loop.refreshes >= 1

    def test_refresh_grows_training_data(self, fitted):
        rows_before = fitted.training_data.n_rows
        loop = FeedbackLoop(fitted, refresh_every=2, error_threshold=10.0)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        loop.compress_to_ratio(field.data, 5.0)
        loop.compress_to_ratio(field.data, 8.0)
        assert fitted.training_data.n_rows == rows_before + 2

    def test_warm_start_used_for_carol(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=2, error_threshold=10.0)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        loop.compress_to_ratio(field.data, 5.0)
        loop.compress_to_ratio(field.data, 8.0)
        # warm restart: fewer evaluations than the cold n_iter
        assert fitted.model.info.n_evaluations <= fitted.n_iter

    def test_rolling_error_window(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=4, error_threshold=10.0)
        assert loop.rolling_error == 0.0
        loop.record(np.ones(5), 0.1, achieved_ratio=9.0, target_ratio=10.0)
        assert loop.rolling_error == pytest.approx(0.1)

    def test_refresh_noop_without_pending(self, fitted):
        loop = FeedbackLoop(fitted)
        loop.refresh()
        assert loop.refreshes == 0

    def test_validation(self, fitted):
        with pytest.raises(ValueError):
            FeedbackLoop(fitted, refresh_every=0)
        with pytest.raises(ValueError):
            FeedbackLoop(fitted, error_threshold=0.0)
        with pytest.raises(ValueError):
            FeedbackLoop(fitted, error_threshold=-1.0)

    def test_single_bad_observation_does_not_trigger_refresh(self, fitted):
        """The error trigger needs a window (MIN_ERROR_WINDOW), not one
        outlier: a single terrible chunk must not cost a retrain."""
        loop = FeedbackLoop(fitted, refresh_every=100, error_threshold=0.05)
        loop.record(np.ones(5), 0.1, achieved_ratio=1.0, target_ratio=10.0)
        assert loop.refreshes == 0
        assert len(loop._pending) == 1

    def test_refresh_every_one_refreshes_per_observation(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=1, error_threshold=10.0)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        loop.compress_to_ratio(field.data, 5.0)
        assert loop.refreshes == 1
        assert len(loop._pending) == 0

    def test_model_still_serves_after_refresh(self, fitted):
        loop = FeedbackLoop(fitted, refresh_every=2, error_threshold=10.0)
        field = load_field("miranda/pressure", shape=SHAPE, seed=3)
        for target in (4.0, 6.0, 9.0):
            result, pred = loop.compress_to_ratio(field.data, target)
            assert pred.error_bound > 0
            assert result.ratio > 1.0
