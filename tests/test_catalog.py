"""StoreCatalog: keyed multi-store reads, shared byte-budgeted chunk
cache, parallel decode, and byte-identity across every configuration."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field, obs
from repro.serve.cache import LRUCache
from repro.store import (
    CatalogOptions,
    CorruptChunkError,
    Store,
    StoreCatalog,
    StoreOptions,
    pack,
)

SHAPE = (24, 32, 32)
CHUNK = (8, 16, 16)
TARGET = 8.0
REL = np.geomspace(1e-3, 3e-1, 8)

REGIONS = [
    None,
    (slice(4, 20), slice(10, 30), slice(0, 9)),
    (slice(0, 8), slice(0, 16), slice(0, 16)),
    (slice(7, 24), slice(3, 17), slice(15, 32)),
]


@pytest.fixture(scope="module")
def fitted():
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=6, cv=2)
    fw.fit(load_dataset("miranda", shape=CHUNK))
    return fw


@pytest.fixture(scope="module")
def store_root(fitted, tmp_path_factory):
    """Three stores with distinct fields under nested keys.

    ``fields`` maps key -> the store's *decompressed* array (the exact
    bytes any correct read must return), not the lossy original.
    """
    root = tmp_path_factory.mktemp("catalog")
    options = StoreOptions(chunk_shape=CHUNK)
    fields = {}
    for i, key in enumerate(["climate/temp", "climate/wind", "nyx_baryon"]):
        field = load_field("miranda/pressure", shape=SHAPE, seed=10 + i)
        path = root / f"{key}.rps"
        pack(path, field, fitted, TARGET, options=options)
        with Store(path) as st:
            fields[key] = st.read()
    return root, fields


class TestRegistrationAndScan:
    def test_scan_derives_keys_from_relative_paths(self, store_root):
        root, fields = store_root
        with StoreCatalog(root) as cat:
            assert sorted(cat.keys()) == sorted(fields)
            assert "climate/temp" in cat
            assert len(cat) == 3

    def test_explicit_register(self, store_root):
        root, fields = store_root
        with StoreCatalog() as cat:
            cat.register("mine", root / "nyx_baryon.rps")
            assert cat.keys() == ["mine"]
            np.testing.assert_array_equal(cat.read("mine"), fields["nyx_baryon"])

    def test_registration_is_lazy(self, store_root, tmp_path):
        root, _ = store_root
        with StoreCatalog() as cat:
            cat.register("ghost", tmp_path / "not-written-yet.rps")  # no error
            with pytest.raises(FileNotFoundError):
                cat.read("ghost")

    def test_manifests_load_lazily(self, store_root):
        root, _ = store_root
        with StoreCatalog(root) as cat:
            assert cat.stats().stores_open == 0
            cat.read("climate/temp", (slice(0, 4), slice(0, 4), slice(0, 4)))
            assert cat.stats().stores_open == 1

    def test_unknown_key(self, store_root):
        root, _ = store_root
        with StoreCatalog(root) as cat:
            with pytest.raises(KeyError, match="nope"):
                cat.read("nope")

    def test_scan_missing_root_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            StoreCatalog(tmp_path / "absent")

    def test_failed_scan_spawns_no_pool(self, tmp_path, monkeypatch):
        # The scan runs before the pool is built, so a bad root cannot
        # leak worker processes with no handle to shut them down.
        import repro.store.catalog as catalog_mod

        def _boom(*args, **kwargs):
            raise AssertionError("WorkerPool built despite failed scan")

        monkeypatch.setattr(catalog_mod, "WorkerPool", _boom)
        with pytest.raises(FileNotFoundError):
            StoreCatalog(tmp_path / "absent", options=CatalogOptions(workers=2))

    def test_reregister_invalidates_cached_chunks(self, store_root):
        root, fields = store_root
        with StoreCatalog(options=CatalogOptions(cache_bytes=64 << 20)) as cat:
            cat.register("data", root / "climate/temp.rps")
            np.testing.assert_array_equal(cat.read("data"), fields["climate/temp"])
            assert len(cat.chunk_cache) > 0  # old store's chunks are cached
            cat.register("data", root / "climate/wind.rps")
            # the re-point evicted the old generation's entries eagerly
            assert len(cat.chunk_cache) == 0
            # and reads now return the NEW store's bytes, not stale cache
            np.testing.assert_array_equal(cat.read("data"), fields["climate/wind"])
            np.testing.assert_array_equal(
                cat.read_chunk("data", (0, 0, 0)),
                fields["climate/wind"][:8, :16, :16],
            )


class TestMultiStoreRoundTrip:
    def test_reads_by_key_match_direct_store_reads(self, store_root):
        root, fields = store_root
        with StoreCatalog(root) as cat:
            for key in fields:
                with Store(root / f"{key}.rps") as st:
                    direct = st.read()
                np.testing.assert_array_equal(cat.read(key), direct)

    def test_keys_do_not_cross_contaminate_the_cache(self, store_root):
        root, fields = store_root
        # Same coords in different stores must come back from the right
        # store even when both chunks sit in the shared cache.
        with StoreCatalog(root) as cat:
            for _ in range(2):  # second round is all cache hits
                a = cat.read_chunk("climate/temp", (0, 0, 0))
                b = cat.read_chunk("climate/wind", (0, 0, 0))
                assert not np.array_equal(a, b)


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def serial_baseline(self, store_root):
        """Every (key, region) answered by a serial, cache-less catalog."""
        root, fields = store_root
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=0)) as ref:
            return {
                (key, i): ref.read(key, region)
                for key in fields
                for i, region in enumerate(REGIONS)
            }

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    @pytest.mark.parametrize("cache_bytes", [0, 1 << 14, 64 << 20])
    def test_identical_across_workers_and_cache_sizes(
        self, store_root, serial_baseline, workers, cache_bytes
    ):
        root, fields = store_root
        options = CatalogOptions(
            cache_bytes=cache_bytes, workers=workers, timeout_seconds=60.0
        )
        with StoreCatalog(root, options=options) as cat:
            for _ in range(2):  # second pass exercises the warm cache
                for key in fields:
                    for i, region in enumerate(REGIONS):
                        out = cat.read(key, region)
                        np.testing.assert_array_equal(out, serial_baseline[(key, i)])

    def test_concurrent_readers_byte_identical(self, store_root):
        root, fields = store_root
        requests = [
            (key, region) for key in fields for region in REGIONS for _ in range(3)
        ]
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=0)) as ref:
            expected = [ref.read(k, r) for k, r in requests]
        options = CatalogOptions(cache_bytes=32 << 20, workers=2, timeout_seconds=60.0)
        with StoreCatalog(root, options=options) as cat:
            with ThreadPoolExecutor(max_workers=4) as tp:
                futures = [tp.submit(cat.read, k, r) for k, r in requests]
                results = [f.result() for f in futures]
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)


class TestSharedChunkCache:
    def test_cached_chunk_skips_fetch_and_decode(self, store_root):
        root, _ = store_root
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=64 << 20)) as cat:
            obs.enable()  # clears the metrics registry
            try:
                reg = obs.registry()
                decoded = reg.counter("store.read.chunks_decompressed")
                served = reg.counter("store.read.chunks_cached")
                cat.read("climate/temp")
                first = decoded.value
                assert first == cat.reader("climate/temp").n_chunks
                cat.read("climate/temp")  # fully warm: zero new decodes
                assert decoded.value == first
                assert served.value == first
            finally:
                obs.disable()
        assert cat.chunk_cache.stats.hits >= first

    def test_cache_hit_counter_unified_across_read_paths(self, store_root):
        # Regression: chunks_cached used to be counted by path-specific
        # logic; every read path (read_chunk, read, read_iter) must now
        # report a warm hit through the same single counting point.
        root, _ = store_root
        region = tuple(slice(0, c) for c in CHUNK)  # exactly chunk (0, 0, 0)
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=64 << 20)) as cat:
            obs.enable()  # clears the metrics registry
            try:
                reg = obs.registry()
                cat.read_chunk("climate/temp", (0, 0, 0))  # cold: one decode
                assert reg.counter("store.read.chunks_decompressed").value == 1
                cat.read_chunk("climate/temp", (0, 0, 0))
                cat.read("climate/temp", region)
                for _ in cat.read_iter("climate/temp", region):
                    pass
                assert reg.counter("store.read.chunks_cached").value == 3
                assert reg.counter("store.read.chunks_decompressed").value == 1
            finally:
                obs.disable()

    def test_eviction_respects_byte_budget(self, store_root):
        root, fields = store_root
        chunk_bytes = np.empty(CHUNK, dtype=np.float32).nbytes
        budget = int(chunk_bytes * 2.5)  # room for two chunks, never three
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=budget)) as cat:
            for coords in [(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0)]:
                cat.read_chunk("climate/temp", coords)
                assert cat.chunk_cache.total_cost <= budget
            assert len(cat.chunk_cache) == 2
            assert cat.chunk_cache.stats.evictions == 2

    def test_zero_budget_disables_cache_but_reads_work(self, store_root):
        root, fields = store_root
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=0)) as cat:
            np.testing.assert_array_equal(
                cat.read("nyx_baryon"),
                Store(root / "nyx_baryon.rps").read(),
            )
            assert len(cat.chunk_cache) == 0
            assert cat.chunk_cache.stats.hits == 0

    def test_cached_arrays_are_immutable(self, store_root):
        root, _ = store_root
        with StoreCatalog(root) as cat:
            out = cat.read_chunk("climate/temp", (0, 0, 0))
            with pytest.raises(ValueError):
                out[0, 0, 0] = 0.0

    def test_uncached_chunks_stay_writeable(self, store_root):
        # A declined put (disabled cache) must not freeze the array —
        # cache_bytes=0 behaves like a plain Store on the caller side.
        root, _ = store_root
        with StoreCatalog(root, options=CatalogOptions(cache_bytes=0)) as cat:
            out = cat.read_chunk("climate/temp", (0, 0, 0))
            assert out.flags.writeable
            out[0, 0, 0] = 0.0  # does not raise


class TestFailureIsolation:
    @pytest.fixture()
    def root_with_corruption(self, store_root, tmp_path):
        """Copy the fleet and flip one payload byte in one store."""
        root, fields = store_root
        bad_root = tmp_path / "fleet"
        for key in fields:
            src = root / f"{key}.rps"
            dst = bad_root / f"{key}.rps"
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_bytes(src.read_bytes())
        victim_path = bad_root / "climate/temp.rps"
        with Store(victim_path) as st:
            victim = st.manifest["chunks"][2]
        blob = bytearray(victim_path.read_bytes())
        blob[victim["offset"]] ^= 0xFF
        victim_path.write_bytes(bytes(blob))
        return bad_root, tuple(victim["coords"])

    def test_corrupt_chunk_isolated_to_its_store(self, root_with_corruption, store_root):
        bad_root, coords = root_with_corruption
        _, fields = store_root
        with StoreCatalog(bad_root) as cat:
            with pytest.raises(CorruptChunkError, match=str(coords)):
                cat.read("climate/temp")
            # every other store still round-trips in the same catalog
            for key in ("climate/wind", "nyx_baryon"):
                with Store(bad_root / f"{key}.rps") as st:
                    np.testing.assert_array_equal(cat.read(key), st.read())

    def test_healthy_chunks_of_corrupt_store_still_readable(self, root_with_corruption):
        bad_root, coords = root_with_corruption
        with StoreCatalog(bad_root) as cat:
            other = (0, 0, 0) if coords != (0, 0, 0) else (1, 0, 0)
            cat.read_chunk("climate/temp", other)  # does not raise


class TestCatalogOptions:
    def test_frozen_hashable_keyword_only(self):
        opts = CatalogOptions(cache_bytes=123, workers=1)
        assert opts == CatalogOptions(cache_bytes=123, workers=1)
        assert hash(opts) == hash(CatalogOptions(cache_bytes=123, workers=1))
        with pytest.raises(Exception):
            opts.workers = 2
        with pytest.raises(TypeError):
            CatalogOptions(123)

    def test_to_kwargs_round_trips(self):
        opts = CatalogOptions(cache_bytes=99, workers=2, verify=False)
        assert CatalogOptions(**opts.to_kwargs()) == opts

    def test_build_and_from_catalog(self, store_root):
        root, _ = store_root
        opts = CatalogOptions(cache_bytes=1 << 20)
        with opts.build(root) as cat:
            assert CatalogOptions.from_catalog(cat) == opts
            assert cat.chunk_cache.max_cost == float(1 << 20)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            CatalogOptions(cache_bytes=-1)
        with pytest.raises(ValueError):
            CatalogOptions(workers=-1)


class TestStatsAndApi:
    def test_stats_shape(self, store_root):
        root, _ = store_root
        with StoreCatalog(root, options=CatalogOptions(workers=1)) as cat:
            cat.read("nyx_baryon")
            stats = cat.stats()
        assert stats.stores_registered == 3
        assert stats.stores_open == 1
        assert 0.0 <= stats.cache.hit_rate <= 1.0
        assert stats.pool is not None
        assert "pool" in stats.as_dict()

    def test_reused_cache_is_one_shared_instance(self, store_root):
        root, _ = store_root
        with StoreCatalog(root) as cat:
            a = cat.reader("climate/temp")
            b = cat.reader("climate/wind")
            assert a.chunk_cache is b.chunk_cache is cat.chunk_cache
            assert isinstance(cat.chunk_cache, LRUCache)

    def test_api_facade_exports(self):
        import repro
        import repro.api

        assert repro.Catalog is StoreCatalog
        assert repro.api.Catalog is StoreCatalog
        assert repro.CatalogOptions is CatalogOptions
        assert "Catalog" in repro.api.__all__
        assert "CatalogOptions" in repro.api.__all__
