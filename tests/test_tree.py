"""Decision-tree regressor unit tests."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


class TestFit:
    def test_perfect_split_on_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y)
        assert tree.node_count == 3
        assert 0.4 < tree.threshold[0] < 0.6

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([5.0]))
        assert tree.predict(np.array([[42.0]]))[0] == 5.0

    def test_constant_target_single_leaf(self, rng):
        X = rng.random((50, 3))
        y = np.full(50, 2.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.node_count == 1
        np.testing.assert_allclose(tree.predict(X), 2.5)

    def test_max_depth_respected(self, rng):
        X = rng.random((200, 4))
        y = rng.random(200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.random((100, 2))
        y = rng.random(100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves = tree.feature == -1
        assert tree.n_samples[leaves].min() >= 10

    def test_min_samples_split(self, rng):
        X = rng.random((60, 2))
        y = rng.random(60)
        tree = DecisionTreeRegressor(min_samples_split=30).fit(X, y)
        internal = tree.feature != -1
        assert tree.n_samples[internal].min() >= 30

    def test_duplicate_feature_values_no_split(self):
        X = np.ones((20, 2))
        y = np.arange(20.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.node_count == 1  # no valid split exists

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestPredictionQuality:
    def test_deep_tree_memorizes(self, rng):
        X = rng.random((150, 3))
        y = rng.random(150)
        tree = DecisionTreeRegressor().fit(X, y)
        # distinct rows -> perfect memorization
        np.testing.assert_allclose(tree.predict(X), y, atol=1e-12)

    def test_generalizes_smooth_function(self, rng):
        X = rng.random((800, 2))
        y = np.sin(4 * X[:, 0]) + X[:, 1]
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=3).fit(X, y)
        Xt = rng.random((200, 2))
        yt = np.sin(4 * Xt[:, 0]) + Xt[:, 1]
        rmse = np.sqrt(((tree.predict(Xt) - yt) ** 2).mean())
        assert rmse < 0.2

    def test_max_features_subsampling(self, rng):
        X = rng.random((120, 6))
        y = X[:, 0] * 3
        full = DecisionTreeRegressor(random_state=0).fit(X, y)
        sub = DecisionTreeRegressor(max_features="sqrt", random_state=0).fit(X, y)
        # both valid trees; subsampled one may split on other features first
        assert full.node_count >= 3 and sub.node_count >= 3

    def test_1d_input_predict(self, rng):
        X = rng.random((30, 2))
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        single = tree.predict(X[0])
        assert single.shape == (1,)


class TestExport:
    def test_export_text_structure(self, rng):
        X = rng.random((50, 5))
        y = X[:, 2] * 2 + X[:, 0]
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        names = ["mean", "range", "mnd", "mld", "msd"]
        text = tree.export_text(feature_names=names)
        assert "samples=" in text and "mse=" in text and "value=" in text
        assert any(n in text for n in names)

    def test_export_unfitted(self):
        assert "unfitted" in DecisionTreeRegressor().export_text()
