"""repro.control: the tier-escalation policy table, controller accounting,
store-writer integration (determinism, neutrality, OOD rescue), and the
service ``govern`` path."""

import itertools

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field
from repro.api import Service, ServiceOptions
from repro.control import (
    ControlledPrediction,
    Controller,
    ControlOptions,
    ControlStats,
    Tier,
    decide_tier,
    heuristic_error_bound,
    refine_error_bound,
)
from repro.core.feedback import FeedbackLoop
from repro.core.framework import Prediction
from repro.ml.forest import RandomForestRegressor
from repro.store import Store, StoreOptions, pack

SHAPE = (16, 16, 16)
CHUNK = (8, 8, 8)
REL = np.geomspace(1e-3, 3e-1, 6)

NAN = float("nan")


@pytest.fixture(scope="module")
def fitted():
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
    fw.fit(load_dataset("miranda", shape=CHUNK))
    return fw


@pytest.fixture(scope="module")
def field():
    return load_field("miranda/pressure", shape=SHAPE, seed=11)


class StubFramework:
    """A predictor with a scripted (eb, std) answer, real szx behind it."""

    compressor_name = "szx"

    def __init__(self, eb: float = 0.01, std: float = NAN):
        self.eb = eb
        self.std = std

    def predict_error_bound(self, data, target_ratio, safety=0.0):
        return Prediction(
            error_bound=self.eb,
            target_ratio=float(target_ratio),
            features=np.ones(3),
            feature_seconds=0.0,
            inference_seconds=0.0,
            std=self.std,
        )


class TestDecideTier:
    def test_default_is_model(self):
        opts = ControlOptions()
        assert decide_tier(std=NAN, pressure=0.0, risk_remaining=4, options=opts) is Tier.MODEL

    def test_heuristic_is_opt_in(self):
        low = dict(std=0.001, pressure=0.0, risk_remaining=4)
        assert decide_tier(**low, options=ControlOptions()) is Tier.MODEL
        assert decide_tier(**low, options=ControlOptions(t0_std=0.05)) is Tier.HEURISTIC

    def test_high_std_escalates_only_with_risk(self):
        opts = ControlOptions(t2_std=0.25)
        assert decide_tier(std=0.3, pressure=0.0, risk_remaining=1, options=opts) is Tier.REFINE
        assert decide_tier(std=0.3, pressure=0.0, risk_remaining=0, options=opts) is Tier.MODEL

    def test_pressure_escalates_without_std(self):
        opts = ControlOptions()
        assert decide_tier(std=NAN, pressure=0.5, risk_remaining=1, options=opts) is Tier.REFINE

    def test_nan_std_never_relaxes(self):
        opts = ControlOptions(t0_std=0.05)
        assert decide_tier(std=NAN, pressure=0.0, risk_remaining=4, options=opts) is Tier.MODEL

    def test_pressure_blocks_relax(self):
        opts = ControlOptions(t0_std=0.05, t0_pressure=0.02)
        assert decide_tier(std=0.01, pressure=0.05, risk_remaining=4, options=opts) is Tier.MODEL

    def test_monotone_in_std_and_pressure(self):
        """The docstring's property: growing std or pressure never lowers
        the tier, and draining the risk budget never raises it."""
        opts = ControlOptions(t0_std=0.05, t0_pressure=0.03, t2_std=0.25, t2_pressure=0.10)
        stds = [NAN] + list(np.linspace(0.0, 0.5, 11))
        pressures = np.linspace(0.0, 0.3, 9)
        for pressure in pressures:
            prev = None
            for std in stds[1:]:  # nan is unordered; checked separately
                tier = decide_tier(
                    std=std, pressure=pressure, risk_remaining=4, options=opts
                )
                if prev is not None:
                    assert tier >= prev, (std, pressure)
                prev = tier
        for std in stds:
            prev = None
            for pressure in pressures:
                tier = decide_tier(
                    std=std, pressure=pressure, risk_remaining=4, options=opts
                )
                if prev is not None:
                    assert tier >= prev, (std, pressure)
                prev = tier

    def test_risk_only_caps_never_raises(self):
        opts = ControlOptions(t0_std=0.05)
        for std, pressure in itertools.product(
            [NAN, 0.0, 0.04, 0.3], [0.0, 0.05, 0.2]
        ):
            with_risk = decide_tier(
                std=std, pressure=pressure, risk_remaining=3, options=opts
            )
            without = decide_tier(
                std=std, pressure=pressure, risk_remaining=0, options=opts
            )
            assert without <= with_risk
            assert without <= Tier.MODEL or with_risk is Tier.REFINE


class TestControlOptions:
    def test_round_trip(self):
        opts = ControlOptions(t0_std=0.01, t2_std=0.4, risk_budget=7)
        assert ControlOptions(**opts.to_kwargs()) == opts
        assert hash(opts) == hash(ControlOptions(**opts.to_kwargs()))

    def test_from_controller(self, fitted):
        opts = ControlOptions(risk_budget=3)
        controller = opts.build(fitted)
        assert isinstance(controller, Controller)
        assert ControlOptions.from_controller(controller) == opts

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(t0_std=-0.1),
            dict(t0_pressure=-0.1),
            dict(t0_std=0.3, t2_std=0.2),
            dict(t0_pressure=0.2, t2_pressure=0.1),
            dict(risk_budget=-1),
            dict(refine_compressions=0),
            dict(refine_tolerance=0.0),
            dict(heuristic_points=1),
            dict(std_window=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ControlOptions(**kwargs)


class TestControlStats:
    def test_derived_counts_and_dict(self):
        stats = ControlStats(
            t0=1, t1=5, t2=2, escalations_std=1, escalations_pressure=1,
            compressions_spent=9, budget_drift=0.02,
        )
        assert stats.requests == 8
        assert stats.escalations == 2
        d = stats.as_dict()
        assert d["t2"] == 2 and d["budget_drift"] == pytest.approx(0.02)
        with pytest.raises(AttributeError):
            stats.t2 = 3


class TestControllerAccounting:
    def test_rejects_non_predictor(self):
        with pytest.raises(TypeError):
            Controller(object())

    def test_risk_consumed_in_call_order(self):
        ctrl = Controller(StubFramework(), options=ControlOptions(risk_budget=2))
        tiers = [ctrl.chunk_tier(0.9, 0.0) for _ in range(4)]
        assert tiers == [Tier.REFINE, Tier.REFINE, Tier.MODEL, Tier.MODEL]
        assert ctrl.risk_remaining == 0
        assert ctrl.stats().t2 == 2 and ctrl.stats().t1 == 2

    def test_escalation_attribution(self):
        ctrl = Controller(StubFramework(), options=ControlOptions(risk_budget=4))
        ctrl.chunk_tier(0.9, 0.0)   # std-triggered
        ctrl.chunk_tier(NAN, 0.5)   # pressure-triggered (nan std can't count)
        stats = ctrl.stats()
        assert stats.escalations_std == 1
        assert stats.escalations_pressure == 1

    def test_reset_restores_risk_keeps_windows(self):
        ctrl = Controller(StubFramework(), options=ControlOptions(risk_budget=1))
        ctrl.record_std(0.1)
        ctrl.chunk_tier(0.9, 0.0)
        assert ctrl.risk_remaining == 0
        ctrl.reset()
        assert ctrl.risk_remaining == 1
        assert len(ctrl._stds) == 1  # committed evidence survives packs
        assert ctrl.stats().t2 == 0

    def test_record_std_ignores_nan(self):
        ctrl = Controller(StubFramework())
        ctrl.record_std(NAN)
        ctrl.record_std(0.2)
        assert list(ctrl._stds) == [0.2]

    def test_observed_pressure_needs_two_outcomes(self):
        ctrl = Controller(StubFramework())
        assert ctrl.observed_pressure(0.03) == pytest.approx(0.03)
        ctrl.record_outcome(10.0, 5.0)
        assert ctrl.observed_pressure(0.03) == pytest.approx(0.03)
        ctrl.record_outcome(10.0, 5.0)
        assert ctrl.observed_pressure(0.03) == pytest.approx(0.5)

    def test_observed_pressure_is_median_not_mean(self):
        """One terrible chunk must not torch trust in a usable model."""
        ctrl = Controller(StubFramework())
        for err in (0.05, 0.06, 0.07, 0.9):
            ctrl.record_outcome(1.0, 1.0 + err)
        assert ctrl.observed_pressure(0.0) == pytest.approx(0.065)

    def test_wave_tier_needs_full_window(self):
        opts = ControlOptions(t0_std=0.05, std_window=3)
        ctrl = Controller(StubFramework(), options=opts)
        ctrl.record_std(0.01)
        ctrl.record_std(0.01)
        assert ctrl.wave_tier(0.0) is Tier.MODEL  # window not full yet
        ctrl.record_std(0.01)
        assert ctrl.wave_tier(0.0) is Tier.HEURISTIC
        assert ctrl.wave_tier(0.5) is Tier.MODEL  # pressure blocks relaxing

    def test_heuristic_prediction_has_no_features(self, smooth3d):
        ctrl = Controller(StubFramework())
        pred = ctrl.heuristic_prediction(smooth3d, 8.0)
        assert pred.features.size == 0
        assert pred.error_bound > 0
        assert np.isnan(pred.std)
        assert ctrl.stats().t0 == 1

    def test_refine_runs_real_compressor_and_logs_feedback(self, fitted, smooth3d):
        loop = FeedbackLoop(fitted, refresh_every=10_000)
        ctrl = Controller(
            StubFramework(),
            options=ControlOptions(refine_compressions=6),
            feedback=loop,
        )
        fraz = ctrl.refine(smooth3d, 6.0, initial_eb=1e-3, features=np.ones(5))
        assert fraz.n_compressions >= 1
        assert len(loop.observations) == fraz.n_compressions
        assert ctrl.stats().compressions_spent == fraz.n_compressions


class TestGovern:
    def test_confident_prediction_passes_through(self, smooth3d):
        stub = StubFramework(eb=0.01, std=0.01)
        ctrl = Controller(stub, options=ControlOptions(t2_std=0.25))
        out = ctrl.govern(smooth3d, 8.0)
        assert isinstance(out, ControlledPrediction)
        assert out.tier is Tier.MODEL
        assert out.fraz is None and out.compressions == 0
        assert out.error_bound == stub.eb

    def test_uncertain_prediction_escalates(self, smooth3d):
        ctrl = Controller(
            StubFramework(eb=1e-4, std=0.9),
            options=ControlOptions(t2_std=0.25, refine_compressions=6),
        )
        out = ctrl.govern(smooth3d, 6.0)
        assert out.tier is Tier.REFINE
        assert out.fraz is not None and out.compressions >= 1
        assert out.error_bound == out.fraz.error_bound
        assert out.model is not None and out.model.error_bound == 1e-4
        assert ctrl.stats().escalations_std == 1

    def test_zero_risk_budget_disables_escalation(self, smooth3d):
        ctrl = Controller(
            StubFramework(std=0.9),
            options=ControlOptions(risk_budget=0),
        )
        assert ctrl.govern(smooth3d, 8.0).tier is Tier.MODEL


class TestEscalateHelpers:
    def test_heuristic_error_bound_tracks_target(self, smooth3d):
        hard = heuristic_error_bound(smooth3d, 50.0, compressor="szx")
        easy = heuristic_error_bound(smooth3d, 4.0, compressor="szx")
        assert 0 < easy < hard  # higher ratio needs a larger bound

    def test_heuristic_validation(self, smooth3d):
        with pytest.raises(ValueError):
            heuristic_error_bound(smooth3d, -1.0, compressor="szx")
        with pytest.raises(ValueError):
            heuristic_error_bound(smooth3d, 8.0, compressor="szx", points=1)

    def test_refine_warm_start_converges(self, smooth3d):
        out = refine_error_bound(
            smooth3d, 6.0, compressor="szx", initial_eb=1e-3, max_compressions=8,
            tolerance=0.1,
        )
        assert out.converged
        assert abs(out.achieved_ratio - 6.0) / 6.0 <= 0.1

    def test_refine_survives_wildly_wrong_guess(self, smooth3d):
        """The accelerating bracket: a guess off by orders of magnitude
        still brackets and converges within a small budget."""
        good = refine_error_bound(
            smooth3d, 6.0, compressor="szx", initial_eb=1e-3, max_compressions=8,
            tolerance=0.1,
        )
        for bad_eb in (good.error_bound * 1e3, good.error_bound / 1e3):
            out = refine_error_bound(
                smooth3d, 6.0, compressor="szx", initial_eb=bad_eb,
                max_compressions=10, tolerance=0.1,
            )
            assert out.converged, bad_eb


class TestForestSpread:
    def test_degenerate_ensemble_has_no_spread(self):
        rng = np.random.default_rng(0)
        X, y = rng.standard_normal((40, 3)), rng.standard_normal(40)
        degenerate = RandomForestRegressor(
            n_estimators=4, bootstrap=False, max_features="auto", random_state=0
        ).fit(X, y)
        assert not degenerate.has_spread
        # identical trees agree exactly: zero spread, meaningless as signal
        assert degenerate.predict_std(X).max() == 0.0
        assert RandomForestRegressor(n_estimators=2, bootstrap=True).has_spread
        assert RandomForestRegressor(
            n_estimators=2, bootstrap=False, max_features="sqrt"
        ).has_spread

    def test_prediction_reports_nan_for_degenerate_forest(self, fitted, monkeypatch):
        model = fitted.model
        if not hasattr(model.forest, "predict_with_std"):
            pytest.skip("fitted model is not a forest")
        monkeypatch.setattr(model.forest, "bootstrap", False)
        monkeypatch.setattr(model.forest, "max_features", "auto")
        feats = np.ones(len(model.feature_names))
        eb, std = model.predict_error_bound_with_std(feats, 8.0)
        assert eb > 0
        assert np.isnan(std)
        ebs, stds = model.predict_error_bound_batch_with_std(feats, [4.0, 8.0])
        assert np.isnan(stds).all()
        # the error bounds themselves are bitwise-identical to the
        # spread-carrying path (the gate only affects the std report)
        assert ebs[1] == eb


class TestStoreIntegration:
    OOD_OPTS = ControlOptions(
        t2_std=0.5, t2_pressure=0.10, risk_budget=8, refine_compressions=6
    )

    @pytest.fixture(scope="class")
    def ood(self, field):
        return field.data * 1e3

    def test_inert_control_is_payload_neutral(self, fitted, field, tmp_path):
        """A controller that never escalates must not change the stored
        payload (the manifest legitimately differs: it records the
        control options so readers can reconstruct them)."""
        off = pack(
            tmp_path / "off.rps", field.data, fitted, 4.0,
            options=StoreOptions(chunk_shape=CHUNK, wave_size=2),
        )
        inert = ControlOptions(t2_std=1e9, t2_pressure=1e9, risk_budget=0)
        on = pack(
            tmp_path / "on.rps", field.data, fitted, 4.0,
            options=StoreOptions(chunk_shape=CHUNK, wave_size=2, control=inert),
        )
        assert on.stored_bytes == off.stored_bytes
        assert [c.error_bound for c in on.chunks] == [
            c.error_bound for c in off.chunks
        ]
        assert on.control is not None and on.control.t2 == 0
        assert off.control is None
        with Store(tmp_path / "off.rps") as a, Store(tmp_path / "on.rps") as b:
            np.testing.assert_array_equal(a.read(), b.read())

    def test_explicit_none_control_is_byte_neutral(self, fitted, field, tmp_path):
        """``control=None`` spelled out is the bench's neutrality gate:
        byte-identical to plain options."""
        pack(
            tmp_path / "plain.rps", field.data, fitted, 4.0,
            options=StoreOptions(chunk_shape=CHUNK, wave_size=2),
        )
        pack(
            tmp_path / "none.rps", field.data, fitted, 4.0,
            options=StoreOptions(chunk_shape=CHUNK, wave_size=2, control=None),
        )
        assert (
            (tmp_path / "plain.rps").read_bytes()
            == (tmp_path / "none.rps").read_bytes()
        )

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_controlled_pack_bytes_identical_across_workers(
        self, fitted, ood, tmp_path, workers
    ):
        """The ISSUE's determinism gate: decisions from committed
        wave-boundary state only, refinement in-process."""
        path = tmp_path / f"w{workers}.rps"
        pack(
            path, ood, fitted, 3.0,
            options=StoreOptions(
                chunk_shape=CHUNK, wave_size=2, workers=workers,
                control=self.OOD_OPTS,
            ),
        )
        reference = tmp_path.parent / "reference.rps"
        if not reference.exists():
            pack(
                reference, ood, fitted, 3.0,
                options=StoreOptions(
                    chunk_shape=CHUNK, wave_size=2, control=self.OOD_OPTS
                ),
            )
        assert path.read_bytes() == reference.read_bytes()

    def test_ood_rescue_smoke(self, fitted, ood, tmp_path):
        off = pack(
            tmp_path / "ood-off.rps", ood, fitted, 3.0,
            options=StoreOptions(chunk_shape=CHUNK, wave_size=2),
        )
        on = pack(
            tmp_path / "ood-on.rps", ood, fitted, 3.0,
            options=StoreOptions(
                chunk_shape=CHUNK, wave_size=2, control=self.OOD_OPTS
            ),
        )
        assert on.budget_drift < off.budget_drift
        assert on.budget_drift <= 0.15
        stats = on.control
        assert stats.t2 >= 1
        assert stats.compressions_spent <= stats.t2 * self.OOD_OPTS.refine_compressions
        assert "control:" in on.summary()

    def test_manifest_round_trips_control(self, fitted, ood, tmp_path):
        path = tmp_path / "m.rps"
        pack(
            path, ood, fitted, 3.0,
            options=StoreOptions(
                chunk_shape=CHUNK, wave_size=2, control=self.OOD_OPTS
            ),
        )
        with Store(path) as st:
            recovered = StoreOptions.from_manifest(st.manifest)
            data = st.read()
        assert recovered.control == self.OOD_OPTS
        assert data.shape == SHAPE

    def test_escalations_feed_feedback_loop(self, fitted, ood, tmp_path):
        loop = FeedbackLoop(fitted, refresh_every=10_000)
        report = pack(
            tmp_path / "fb.rps", ood, fitted, 3.0,
            options=StoreOptions(
                chunk_shape=CHUNK, wave_size=2, control=self.OOD_OPTS
            ),
            feedback=loop,
        )
        stats = report.control
        assert stats.t2 >= 1
        # every T2 probe is a ground-truth observation, plus one per
        # committed model-tier chunk
        assert len(loop.observations) >= stats.compressions_spent


class TestServeIntegration:
    def test_predict_batch_stds_match_scalar(self, fitted, field):
        service = Service(fitted)
        requests = [(field.data, 4.0), (field.data, 8.0)]
        batch = service.predict_batch(requests)
        for (data, ratio), pred in zip(requests, batch):
            single = service.predict(data, ratio)
            assert pred.error_bound == single.error_bound
            assert (
                pred.std == single.std
                or (np.isnan(pred.std) and np.isnan(single.std))
            )

    def test_govern_requires_control(self, fitted, field):
        service = Service(fitted)
        with pytest.raises(RuntimeError, match="control"):
            service.govern(field.data, 8.0)
        assert service.stats().control is None

    def test_govern_passthrough_matches_predict(self, fitted, field):
        service = Service(
            fitted,
            options=ServiceOptions(
                control=ControlOptions(t2_std=1e9, t2_pressure=1e9, risk_budget=0)
            ),
        )
        out = service.govern(field.data, 8.0)
        assert out.tier is Tier.MODEL
        assert out.error_bound == service.predict(field.data, 8.0).error_bound
        stats = service.stats()
        assert stats.control is not None and stats.control.t2 == 0
        assert stats.control.as_dict() == stats.as_dict()["control"]
