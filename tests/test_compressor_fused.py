"""Fused tile-streamed pipelines vs the frozen whole-array oracles.

The production compressors (:mod:`repro.compressors.sz3`,
:mod:`repro.compressors.sperr`, :mod:`repro.compressors.szx`) stream
tile-by-tile with a bounded working set; the pre-fusion whole-array
implementations are frozen in :mod:`repro.compressors.reference` as
oracles. The contract is *byte identity*, not closeness: for every field
kind, shape, tile size, and error bound, the fused payload and metadata
must equal the oracle's exactly, streams must cross-decode (fused decoder
on oracle payload and vice versa), and inputs the oracle rejects must be
rejected with the same exception. Randomness comes from ``property_rng``
(reproduce failures with ``REPRO_TEST_SEED=<seed> pytest ...``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.reference import (
    ReferenceSPERRCompressor,
    ReferenceSZ3Compressor,
    ReferenceSZXCompressor,
)
from repro.compressors.sperr import SPERRCompressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZXCompressor


def _field(rng: np.random.Generator, kind: str, shape: tuple[int, ...]) -> np.ndarray:
    if kind == "smooth":
        x = rng.standard_normal(shape)
        for axis in range(len(shape)):
            x = np.cumsum(x, axis=axis)
        return x / (4.0 * len(shape))
    if kind == "rough":
        return rng.standard_normal(shape)
    if kind == "constant":
        return np.full(shape, 3.25)
    if kind == "plateau":
        # constant background with a noisy patch: exercises szx's
        # constant-block fast path and the mixed-width groups together
        x = np.full(shape, -1.5)
        flat = x.reshape(-1)
        n = flat.size
        flat[n // 3 : 2 * n // 3] += rng.standard_normal(2 * n // 3 - n // 3)
        return x
    raise ValueError(kind)


def assert_identical(fused, ref, data: np.ndarray, eb: float) -> None:
    """Fused and oracle agree on bytes, metadata, and rejections."""
    try:
        expected = ref.compress(data, eb)
    except Exception as exc:
        with pytest.raises(type(exc), match=None) as info:
            fused.compress(data, eb)
        assert str(info.value) == str(exc)
        return
    got = fused.compress(data, eb)
    assert got.payload == expected.payload
    assert got.metadata == expected.metadata
    # cross-decode: either side's stream through the other's decoder
    fused_dec = fused.decompress(expected)
    ref_dec = ref.decompress(got)
    np.testing.assert_array_equal(fused_dec, ref_dec)
    np.testing.assert_array_equal(fused_dec, fused.decompress(got))
    assert np.abs(fused_dec - data).max() <= eb * (1 + 1e-9)


SHAPES = [(257,), (33, 18), (20, 24, 28), (8, 8, 8), (64, 3)]
KINDS = ["smooth", "rough", "constant", "plateau"]


class TestSZ3Fused:
    @pytest.mark.parametrize("predictor", ["interp", "lorenzo"])
    @pytest.mark.parametrize("entropy", ["huffman", "range"])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_identity_across_shapes(self, property_rng, predictor, entropy, shape):
        data = _field(property_rng, "smooth", shape)
        assert_identical(
            SZ3Compressor(predictor=predictor, entropy=entropy),
            ReferenceSZ3Compressor(predictor=predictor, entropy=entropy),
            data,
            1e-3,
        )

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("eb", [1e-6, 1e-2, 0.5])
    def test_identity_across_fields_and_bounds(self, property_rng, kind, eb):
        data = _field(property_rng, kind, (20, 24, 28))
        assert_identical(
            SZ3Compressor(), ReferenceSZ3Compressor(), data, eb
        )

    @pytest.mark.parametrize("tile_symbols", [1, 501, 1 << 18])
    @pytest.mark.parametrize("predictor", ["interp", "lorenzo"])
    def test_tile_size_never_changes_the_stream(
        self, property_rng, tile_symbols, predictor
    ):
        """The tile boundary is an implementation detail: any tile size,
        including the degenerate one-row-at-a-time stream, produces the
        oracle's exact bytes."""
        data = _field(property_rng, "smooth", (14, 19, 11))
        assert_identical(
            SZ3Compressor(predictor=predictor, tile_symbols=tile_symbols),
            ReferenceSZ3Compressor(predictor=predictor),
            data,
            1e-3,
        )

    def test_rejects_eb_below_precision_like_the_oracle(self, property_rng):
        data = 1e9 * _field(property_rng, "rough", (40, 40))
        assert_identical(
            SZ3Compressor(predictor="lorenzo"),
            ReferenceSZ3Compressor(predictor="lorenzo"),
            data,
            1e-12,
        )

    def test_tile_symbols_validated(self):
        with pytest.raises(ValueError, match="tile_symbols"):
            SZ3Compressor(tile_symbols=0)


class TestSPERRFused:
    @pytest.mark.parametrize("chunk_edge", [None, 8, 16])
    @pytest.mark.parametrize("shape", [(17, 13), (20, 24, 28), (8, 8, 8), (40,)])
    def test_identity_including_edge_clipped_chunks(
        self, property_rng, chunk_edge, shape
    ):
        data = _field(property_rng, "smooth", shape)
        assert_identical(
            SPERRCompressor(chunk_edge=chunk_edge),
            ReferenceSPERRCompressor(chunk_edge=chunk_edge),
            data,
            1e-2,
        )

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("eb", [1e-4, 0.3])
    def test_identity_across_fields_and_bounds(self, property_rng, kind, eb):
        data = _field(property_rng, kind, (20, 24, 28))
        assert_identical(
            SPERRCompressor(chunk_edge=16),
            ReferenceSPERRCompressor(chunk_edge=16),
            data,
            eb,
        )

    @pytest.mark.parametrize("quant_factor", [0.25, 1.0])
    def test_identity_across_quant_factors(self, property_rng, quant_factor):
        data = _field(property_rng, "smooth", (24, 24))
        assert_identical(
            SPERRCompressor(quant_factor=quant_factor, chunk_edge=16),
            ReferenceSPERRCompressor(quant_factor=quant_factor, chunk_edge=16),
            data,
            1e-3,
        )


class TestSZXFused:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize(
        "shape", [(256,), (300,), (20, 24, 28), (5,), (127,)]
    )
    def test_identity_across_block_alignments(self, property_rng, kind, shape):
        """Sizes that divide the block, leave a ragged tail block, or fit
        in less than one block all match the oracle byte-for-byte."""
        data = _field(property_rng, kind, shape)
        assert_identical(SZXCompressor(), ReferenceSZXCompressor(), data, 1e-2)

    @pytest.mark.parametrize("eb", [1e-6, 1e-3, 0.5])
    def test_identity_across_bounds(self, property_rng, eb):
        data = _field(property_rng, "plateau", (20, 24, 28))
        assert_identical(SZXCompressor(), ReferenceSZXCompressor(), data, eb)
