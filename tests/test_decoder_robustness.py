"""Decoder robustness: truncated/tampered streams fail loudly, never hang.

A production codec must raise a clean error on corrupt input rather than
return silently wrong data, hang in a decode loop, or crash the
interpreter. These tests exhaustively truncate and bit-flip real payloads
for every registered codec, and do the same to ``.rps`` chunk payloads
and container framing. Randomness (which bit to flip at each position)
comes from the shared ``property_rng``/``property_seed`` fixtures, so a
red run is reproducible via ``REPRO_TEST_SEED``.
"""

import dataclasses

import numpy as np
import pytest

from repro.compressors import available_compressors, get_compressor
from repro.store.format import (
    CorruptChunkError,
    StoreFormatError,
    chunk_checksum,
    json_safe,
    write_header,
    write_manifest,
)
from repro.store.reader import StoreReader

ALL = available_compressors()

#: What a decoder is allowed to raise on a corrupt stream. Anything else
#: (segfault, hang, silent success) fails the test.
CLEAN_ERRORS = (ValueError, EOFError, IndexError)


@pytest.fixture(scope="module")
def payloads(property_seed):
    rng = np.random.default_rng(property_seed)
    x = np.cumsum(np.cumsum(rng.standard_normal((24, 28)), 0), 1) / 10
    out = {}
    for name in ALL:
        codec = get_compressor(name)
        out[name] = (x, codec.compress(x, 1e-3))
    return out


class TestTruncation:
    @pytest.mark.parametrize("name", ALL)
    def test_truncated_payload_raises(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        broken = dataclasses.replace(res, payload=res.payload[: len(res.payload) // 3])
        with pytest.raises(CLEAN_ERRORS):
            codec.decompress(broken)

    @pytest.mark.parametrize("name", ALL)
    def test_empty_payload_raises(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        broken = dataclasses.replace(res, payload=b"")
        with pytest.raises(CLEAN_ERRORS):
            codec.decompress(broken)

    @pytest.mark.parametrize("name", ALL)
    def test_truncation_at_every_byte_boundary(self, payloads, name):
        """Cutting the stream after *any* prefix must raise cleanly.

        The payload integrity checksum makes this uniform across codecs:
        the mismatch is caught before the decoder ever runs.
        """
        x, res = payloads[name]
        codec = get_compressor(name)
        assert len(res.payload) > 0
        for cut in range(len(res.payload)):
            broken = dataclasses.replace(res, payload=res.payload[:cut])
            with pytest.raises(ValueError):
                codec.decompress(broken)

    @pytest.mark.parametrize("name", ALL)
    def test_single_bitflip_at_every_byte(self, payloads, name, property_rng):
        """One flipped bit anywhere in the stream must raise cleanly —
        never hang, crash, or silently reconstruct wrong data."""
        x, res = payloads[name]
        codec = get_compressor(name)
        bits = property_rng.integers(0, 8, size=len(res.payload))
        for pos in range(len(res.payload)):
            buf = bytearray(res.payload)
            buf[pos] ^= 1 << int(bits[pos])
            broken = dataclasses.replace(res, payload=bytes(buf))
            with pytest.raises(ValueError):
                codec.decompress(broken)


class TestMetadataTampering:
    @pytest.mark.parametrize("name", ALL)
    def test_wrong_shape_fails_or_reshapes(self, payloads, name):
        """Tampered shape must not return an array of the wrong size
        silently pretending to be valid for the original shape."""
        x, res = payloads[name]
        codec = get_compressor(name)
        meta = dict(res.metadata)
        meta["shape"] = (9999, 2)
        broken = dataclasses.replace(res, metadata=meta)
        try:
            out = codec.decompress(broken)
        except Exception:
            return  # raising is the preferred outcome
        assert out.shape != x.shape  # if it "works", it must not masquerade

    def test_wrong_codec_name_rejected(self, payloads):
        x, res = payloads["szx"]
        broken = dataclasses.replace(res, compressor="sperr")
        with pytest.raises(ValueError):
            get_compressor("szx").decompress(broken)

    @pytest.mark.parametrize("name", ALL)
    def test_tampered_integrity_stamp_rejected(self, payloads, name):
        x, res = payloads[name]
        meta = dict(res.metadata)
        meta["payload_check"] = "0" * 16
        broken = dataclasses.replace(res, metadata=meta)
        with pytest.raises(ValueError, match="integrity"):
            get_compressor(name).decompress(broken)


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL)
    def test_compression_is_deterministic(self, payloads, name):
        """Same input + same error bound -> byte-identical payload."""
        x, res = payloads[name]
        codec = get_compressor(name)
        again = codec.compress(x, 1e-3)
        assert again.payload == res.payload

    @pytest.mark.parametrize("name", ALL)
    def test_decompression_is_deterministic(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        a = codec.decompress(res)
        b = codec.decompress(res)
        np.testing.assert_array_equal(a, b)


# -- .rps container corruption ---------------------------------------------------


@pytest.fixture(scope="module")
def packed_store(tmp_path_factory, property_seed):
    """A tiny hand-assembled ``.rps`` file with real compressed payloads.

    Built straight from the format helpers (no fitted model needed):
    two szx chunks over an (8, 8) field. Returns the path plus the byte
    span of each chunk payload so corruption can target them precisely.
    """
    rng = np.random.default_rng(property_seed)
    field = np.cumsum(rng.standard_normal((8, 8)), axis=0)
    chunk_shape = (4, 8)
    codec = get_compressor("szx")
    path = tmp_path_factory.mktemp("robust") / "field.rps"
    entries, payload_blobs = [], []
    with open(path, "wb") as fh:
        offset = write_header(fh)
        for i, row in enumerate(range(0, 8, 4)):
            data = np.ascontiguousarray(field[row : row + 4])
            res = codec.compress(data, 1e-2)
            fh.write(res.payload)
            entries.append(
                {
                    "coords": [i, 0],
                    "offset": offset,
                    "nbytes": len(res.payload),
                    "error_bound": 1e-2,
                    "target_ratio": 4.0,
                    "achieved_ratio": float(res.ratio),
                    "raw_bytes": int(data.nbytes),
                    "checksum": chunk_checksum(res.payload),
                    "meta": json_safe(res.metadata),
                }
            )
            payload_blobs.append((offset, len(res.payload)))
            offset += len(res.payload)
        write_manifest(
            fh,
            {
                "version": 1,
                "compressor": "szx",
                "shape": [8, 8],
                "dtype": "float64",
                "chunk_shape": list(chunk_shape),
                "target_ratio": 4.0,
                "original_bytes": int(field.nbytes),
                "stored_bytes": sum(n for _, n in payload_blobs),
                "chunks": entries,
            },
        )
    return path, payload_blobs, field


class TestStoreCorruption:
    def test_pristine_store_reads(self, packed_store):
        path, _, field = packed_store
        with StoreReader(path) as reader:
            np.testing.assert_allclose(reader.read(), field, atol=1e-2)

    def test_bitflip_every_payload_byte_raises(
        self, packed_store, tmp_path, property_rng
    ):
        """Flipping any bit inside a chunk payload must surface as a
        clean CorruptChunkError from read_chunk — never bad data."""
        path, payload_blobs, _ = packed_store
        blob = path.read_bytes()
        offset, nbytes = payload_blobs[0]
        bits = property_rng.integers(0, 8, size=nbytes)
        bad = tmp_path / "flipped.rps"
        for pos in range(offset, offset + nbytes):
            buf = bytearray(blob)
            buf[pos] ^= 1 << int(bits[pos - offset])
            bad.write_bytes(bytes(buf))
            with StoreReader(bad) as reader:
                with pytest.raises(CorruptChunkError):
                    reader.read_chunk((0, 0))
                # the other chunk stays readable: corruption is contained
                reader.read_chunk((1, 0))

    def test_truncation_at_every_byte_boundary_raises(self, packed_store, tmp_path):
        """A ``.rps`` file cut after any prefix must be rejected at open
        with a StoreFormatError (the manifest/footer can't be recovered)."""
        path, _, _ = packed_store
        blob = path.read_bytes()
        bad = tmp_path / "cut.rps"
        for cut in range(len(blob)):
            bad.write_bytes(blob[:cut])
            with pytest.raises(StoreFormatError):
                StoreReader(bad)

    def test_verify_false_still_fails_closed_on_truncated_payload(
        self, packed_store, tmp_path
    ):
        """verify=False skips checksums but a payload running past EOF is
        still a hard CorruptChunkError, not a short silent read."""
        path, payload_blobs, _ = packed_store
        offset, nbytes = payload_blobs[-1]
        blob = path.read_bytes()
        # keep framing valid but lie about the last payload's length
        bad = tmp_path / "lying.rps"
        bad.write_bytes(blob)
        with StoreReader(bad, verify=False) as reader:
            entry = reader.chunk_entry((1, 0))
            entry["nbytes"] = len(blob) + 1024  # points past EOF
            with pytest.raises(CorruptChunkError, match="truncated"):
                reader.read_chunk((1, 0))
