"""Decoder robustness: truncated/tampered streams fail loudly, never hang.

A production codec must raise a clean error on corrupt input rather than
return silently wrong data or crash the interpreter. These tests truncate
and bit-flip real payloads for every codec.
"""

import numpy as np
import pytest

from repro.compressors import available_compressors, get_compressor

ALL = available_compressors()


@pytest.fixture(scope="module")
def payloads(rng=None):
    rng = np.random.default_rng(5)
    x = np.cumsum(np.cumsum(rng.standard_normal((24, 28)), 0), 1) / 10
    out = {}
    for name in ALL:
        codec = get_compressor(name)
        out[name] = (x, codec.compress(x, 1e-3))
    return out


class TestTruncation:
    @pytest.mark.parametrize("name", ALL)
    def test_truncated_payload_raises(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        import dataclasses

        broken = dataclasses.replace(res, payload=res.payload[: len(res.payload) // 3])
        with pytest.raises((EOFError, ValueError, IndexError)):
            codec.decompress(broken)

    @pytest.mark.parametrize("name", ALL)
    def test_empty_payload_raises(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        import dataclasses

        broken = dataclasses.replace(res, payload=b"")
        with pytest.raises((EOFError, ValueError, IndexError)):
            codec.decompress(broken)


class TestMetadataTampering:
    @pytest.mark.parametrize("name", ALL)
    def test_wrong_shape_fails_or_reshapes(self, payloads, name):
        """Tampered shape must not return an array of the wrong size
        silently pretending to be valid for the original shape."""
        x, res = payloads[name]
        codec = get_compressor(name)
        meta = dict(res.metadata)
        meta["shape"] = (9999, 2)
        import dataclasses

        broken = dataclasses.replace(res, metadata=meta)
        try:
            out = codec.decompress(broken)
        except Exception:
            return  # raising is the preferred outcome
        assert out.shape != x.shape  # if it "works", it must not masquerade

    def test_wrong_codec_name_rejected(self, payloads):
        x, res = payloads["szx"]
        import dataclasses

        broken = dataclasses.replace(res, compressor="sperr")
        with pytest.raises(ValueError):
            get_compressor("szx").decompress(broken)


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL)
    def test_compression_is_deterministic(self, payloads, name):
        """Same input + same error bound -> byte-identical payload."""
        x, res = payloads[name]
        codec = get_compressor(name)
        again = codec.compress(x, 1e-3)
        assert again.payload == res.payload

    @pytest.mark.parametrize("name", ALL)
    def test_decompression_is_deterministic(self, payloads, name):
        x, res = payloads[name]
        codec = get_compressor(name)
        a = codec.decompress(res)
        b = codec.decompress(res)
        np.testing.assert_array_equal(a, b)
