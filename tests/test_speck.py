"""SPECK set-partitioning coder tests."""

import numpy as np
import pytest

from repro.compressors.speck import SpeckCoder, _build_pyramid, padded_pow2_shape
from repro.encoding.bitstream import BitReader, BitWriter


def roundtrip(mag, neg):
    coder = SpeckCoder()
    w = BitWriter()
    p_top = coder.encode(mag, neg, w)
    out_mag, out_neg = coder.decode(BitReader(w.bits()), mag.shape, p_top)
    return out_mag, out_neg, w.bit_length


class TestPadding:
    def test_pow2_shapes(self):
        assert padded_pow2_shape((5, 8, 3)) == (8, 8, 4)
        assert padded_pow2_shape((1, 7)) == (1, 8)
        assert padded_pow2_shape((16,)) == (16,)


class TestPyramid:
    def test_root_is_global_max(self, rng):
        mag = rng.integers(0, 1000, (8, 8)).astype(np.int64)
        levels = _build_pyramid(mag)
        assert levels[-1].ravel()[0] == mag.max()

    def test_level_maxima_cover_children(self, rng):
        mag = rng.integers(0, 100, (8, 4)).astype(np.int64)
        levels = _build_pyramid(mag)
        lvl1 = levels[1]
        for i in range(lvl1.shape[0]):
            for j in range(lvl1.shape[1]):
                block = mag[2 * i : 2 * i + 2, 2 * j : 2 * j + 2]
                assert lvl1[i, j] == block.max()


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(16,), (13,), (8, 8), (7, 9), (4, 6, 5)])
    def test_exact_magnitudes(self, rng, shape):
        mag = rng.integers(0, 512, shape).astype(np.int64)
        neg = rng.random(shape) < 0.5
        out_mag, out_neg, _ = roundtrip(mag, neg)
        np.testing.assert_array_equal(out_mag, mag)
        # signs only matter where magnitude is nonzero
        np.testing.assert_array_equal(out_neg[mag > 0], neg[mag > 0])

    def test_all_zero(self):
        mag = np.zeros((8, 8), dtype=np.int64)
        out_mag, _, bits = roundtrip(mag, np.zeros((8, 8), dtype=bool))
        np.testing.assert_array_equal(out_mag, mag)
        assert bits == 0

    def test_single_hot_coefficient(self):
        mag = np.zeros((16, 16), dtype=np.int64)
        mag[5, 11] = 300
        neg = np.zeros((16, 16), dtype=bool)
        neg[5, 11] = True
        out_mag, out_neg, bits = roundtrip(mag, neg)
        np.testing.assert_array_equal(out_mag, mag)
        assert out_neg[5, 11]
        # zerotree pruning: sparse input costs few bits
        assert bits < 400

    def test_sparse_cheaper_than_dense(self, rng):
        shape = (32, 32)
        dense = rng.integers(1, 256, shape).astype(np.int64)
        sparse = np.zeros(shape, dtype=np.int64)
        idx = rng.integers(0, 32, (20, 2))
        sparse[idx[:, 0], idx[:, 1]] = rng.integers(1, 256, 20)
        neg = np.zeros(shape, dtype=bool)
        _, _, bits_dense = roundtrip(dense, neg)
        _, _, bits_sparse = roundtrip(sparse, neg)
        assert bits_sparse < 0.25 * bits_dense


class TestEmbeddedProperty:
    def test_bits_grow_with_planes(self, rng):
        """Larger magnitudes (more planes) -> strictly more bits."""
        base = rng.integers(0, 16, (16, 16)).astype(np.int64)
        neg = np.zeros((16, 16), dtype=bool)
        _, _, bits_small = roundtrip(base, neg)
        _, _, bits_big = roundtrip(base * 16, neg)
        assert bits_big > bits_small
