"""Property tests for the extension features (cuSZp, fixed-rate, safety)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressors.cuszp import CuSZpCompressor
from repro.compressors.zfp import ZFPCompressor

_SETTINGS = dict(max_examples=25, deadline=None)
_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestCuSZpProperties:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=20),
               elements=_floats),
        st.floats(min_value=1e-5, max_value=1.0),
    )
    @settings(**_SETTINGS)
    def test_bound_always_holds(self, data, eb):
        codec = CuSZpCompressor()
        out, _ = codec.roundtrip(data, eb)
        assert np.abs(out - data).max() <= eb * (1 + 1e-9)

    @given(st.integers(2, 128))
    @settings(**_SETTINGS)
    def test_any_block_size(self, property_seed, bs):
        rng = np.random.default_rng([property_seed, bs])
        x = np.cumsum(rng.standard_normal(257))
        out, _ = CuSZpCompressor(block_size=bs).roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3


class TestFixedRateProperties:
    @given(
        arrays(np.float64, (12, 16), elements=_floats),
        st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(**_SETTINGS)
    def test_round_trip_never_crashes_and_size_bounded(self, data, rate):
        z = ZFPCompressor()
        res = z.compress_fixed_rate(data, rate)
        out = z.decompress(res)
        assert out.shape == data.shape
        assert np.isfinite(out).all()
        # size stays within budget plus header/any-bit overhead
        nominal_bits = data.size * rate
        assert res.compressed_bytes * 8 <= nominal_bits * 2.5 + 4096

    @given(arrays(np.float64, (8, 8), elements=_floats))
    @settings(**_SETTINGS)
    def test_higher_rate_never_larger_error(self, data):
        z = ZFPCompressor()
        lo = z.decompress(z.compress_fixed_rate(data, 4.0))
        hi = z.decompress(z.compress_fixed_rate(data, 24.0))
        err_lo = np.abs(lo - data).max()
        err_hi = np.abs(hi - data).max()
        assert err_hi <= err_lo + 1e-12


class TestSafetyMonotonicity:
    @given(st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=10, deadline=None)
    def test_eb_monotone_in_safety(self, safety):
        from repro import CarolFramework, load_dataset, load_field

        # module-level cache so hypothesis examples share one fit
        global _FW, _FIELD
        try:
            _FW
        except NameError:
            _FW = CarolFramework(
                compressor="szx",
                rel_error_bounds=np.geomspace(1e-3, 1e-1, 5),
                n_iter=3, cv=2,
            )
            _FW.fit(load_dataset("miranda", shape=(10, 12, 12))[:3])
            _FIELD = load_field("miranda/density", shape=(10, 12, 12), seed=4)
        base = _FW.predict_error_bound(_FIELD.data, 5.0, safety=0.0).error_bound
        biased = _FW.predict_error_bound(_FIELD.data, 5.0, safety=safety).error_bound
        assert biased >= base * (1 - 1e-12)
