"""Property: compression ratio is monotone in the error bound.

Both FXRZ and CAROL budget bytes by inverting the ratio-vs-error-bound
curve, which only works if the curve is monotone: shrinking the error
bound must never *increase* the achieved ratio. Plateaus are fine
(quantization granularity), inversions are a codec bug. Checked for
every registered compressor over seeded synthetic fields drawn from the
shared ``property_rng`` fixture (reproduce failures via
``REPRO_TEST_SEED``).
"""

import numpy as np
import pytest

from repro.compressors import available_compressors, get_compressor

ALL = available_compressors()

#: error bounds from loose to tight; ratios must be non-increasing along it
ERROR_BOUNDS = np.geomspace(3e-1, 1e-4, 8)

#: tolerance for "equal" — plateaus pass, genuine inversions fail
_EPS = 1e-12


def _fields(rng):
    smooth3d = np.cumsum(np.cumsum(rng.standard_normal((12, 16, 18)), 0), 1) / 8
    smooth2d = np.cumsum(rng.standard_normal((32, 40)), axis=0) / 4
    rough1d = rng.standard_normal(2048)
    return {"smooth3d": smooth3d, "smooth2d": smooth2d, "rough1d": rough1d}


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("kind", ["smooth3d", "smooth2d", "rough1d"])
def test_ratio_monotone_in_error_bound(name, kind, property_rng):
    codec = get_compressor(name)
    field = _fields(property_rng)[kind]
    ratios = [codec.compress(field, float(eb)).ratio for eb in ERROR_BOUNDS]
    for i in range(1, len(ratios)):
        assert ratios[i] <= ratios[i - 1] * (1.0 + _EPS), (
            f"{name} on {kind}: tightening eb {ERROR_BOUNDS[i - 1]:g} -> "
            f"{ERROR_BOUNDS[i]:g} raised the ratio "
            f"{ratios[i - 1]:.6f} -> {ratios[i]:.6f}"
        )
    # the sweep must actually exercise the curve, not sit on one plateau
    assert ratios[0] > ratios[-1]
