"""Shared fixtures: deterministic RNGs and small representative fields."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def smooth3d(rng) -> np.ndarray:
    """Smooth, compressible 3-D field (integrated noise)."""
    x = rng.standard_normal((20, 24, 28))
    for axis in range(3):
        x = np.cumsum(x, axis=axis)
    return (x / 40.0).astype(np.float64)


@pytest.fixture
def smooth2d(rng) -> np.ndarray:
    x = rng.standard_normal((40, 48))
    for axis in range(2):
        x = np.cumsum(x, axis=axis)
    return x / 20.0


@pytest.fixture
def rough1d(rng) -> np.ndarray:
    """Poorly compressible 1-D signal."""
    return rng.standard_normal(3000)


@pytest.fixture
def tiny_field(rng) -> np.ndarray:
    return np.cumsum(rng.standard_normal((6, 7, 5)), axis=0)
