"""Shared fixtures: deterministic RNGs and small representative fields.

Property-based and robustness tests draw their randomness from the shared
``property_rng`` fixture. Its seed comes from the ``REPRO_TEST_SEED``
environment variable (defaulting to a fixed constant), and any failing
test that used the fixture echoes the seed in its report so the exact run
can be reproduced with ``REPRO_TEST_SEED=<seed> pytest ...``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

PROPERTY_SEED_ENV = "REPRO_TEST_SEED"
_DEFAULT_PROPERTY_SEED = 20260805


@pytest.fixture(scope="session")
def property_seed() -> int:
    """Seed for all property/robustness randomness, from the environment."""
    raw = os.environ.get(PROPERTY_SEED_ENV, "")
    try:
        return int(raw) if raw else _DEFAULT_PROPERTY_SEED
    except ValueError:
        raise pytest.UsageError(
            f"{PROPERTY_SEED_ENV}={raw!r} is not an integer seed"
        ) from None


@pytest.fixture
def property_rng(property_seed: int) -> np.random.Generator:
    """Fresh generator per test (same seed), so test order never matters."""
    return np.random.default_rng(property_seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        if "property_seed" in item.fixturenames or "property_rng" in item.fixturenames:
            seed = getattr(item, "funcargs", {}).get(
                "property_seed",
                os.environ.get(PROPERTY_SEED_ENV, str(_DEFAULT_PROPERTY_SEED)),
            )
            report.sections.append(
                (
                    "property seed",
                    f"reproduce with: {PROPERTY_SEED_ENV}={seed} "
                    f"pytest {item.nodeid!s}",
                )
            )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def smooth3d(rng) -> np.ndarray:
    """Smooth, compressible 3-D field (integrated noise)."""
    x = rng.standard_normal((20, 24, 28))
    for axis in range(3):
        x = np.cumsum(x, axis=axis)
    return (x / 40.0).astype(np.float64)


@pytest.fixture
def smooth2d(rng) -> np.ndarray:
    x = rng.standard_normal((40, 48))
    for axis in range(2):
        x = np.cumsum(x, axis=axis)
    return x / 20.0


@pytest.fixture
def rough1d(rng) -> np.ndarray:
    """Poorly compressible 1-D signal."""
    return rng.standard_normal(3000)


@pytest.fixture
def tiny_field(rng) -> np.ndarray:
    return np.cumsum(rng.standard_normal((6, 7, 5)), axis=0)
