"""Cross-check vectorized feature/predictor code against naive loops.

The vectorized implementations are the ones that could silently drift from
the paper's Eqs. (5)-(8); these tests recompute them with straightforward
Python loops on tiny arrays and demand near-exact agreement.
"""

import numpy as np
import pytest

from repro.features.definitions import (
    mean_lorenzo_difference,
    mean_neighbor_difference,
    mean_spline_difference,
)
from repro.transforms.lorenzo import lorenzo_predict
from repro.transforms.spline import spline_predict_axis


@pytest.fixture()
def tiny(rng):
    return rng.standard_normal((5, 6, 7))


def test_mnd_matches_naive_loops(tiny):
    d = tiny
    total = 0.0
    count = 0
    ni, nj, nk = d.shape
    for i in range(ni):
        for j in range(nj):
            for k in range(nk):
                neigh = []
                for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                   (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                    a, b, c = i + di, j + dj, k + dk
                    if 0 <= a < ni and 0 <= b < nj and 0 <= c < nk:
                        neigh.append(d[a, b, c])
                total += abs(d[i, j, k] - sum(neigh) / len(neigh))
                count += 1
    assert mean_neighbor_difference(d) == pytest.approx(total / count, rel=1e-12)


def test_lorenzo_matches_naive_loops(tiny):
    d = tiny
    ni, nj, nk = d.shape
    pred = lorenzo_predict(d)

    def val(i, j, k):
        return d[i, j, k] if (i >= 0 and j >= 0 and k >= 0) else 0.0

    for i in range(ni):
        for j in range(nj):
            for k in range(nk):
                expected = (
                    val(i - 1, j, k) + val(i, j - 1, k) + val(i, j, k - 1)
                    + val(i - 1, j - 1, k - 1)
                    - val(i - 1, j - 1, k) - val(i - 1, j, k - 1)
                    - val(i, j - 1, k - 1)
                )
                assert pred[i, j, k] == pytest.approx(expected, abs=1e-12)


def test_mld_matches_naive_interior_mean(tiny):
    d = tiny
    pred = lorenzo_predict(d)
    res = np.abs(d - pred)[1:, 1:, 1:]
    assert mean_lorenzo_difference(d) == pytest.approx(res.mean(), rel=1e-12)


def test_spline_matches_naive_loops(rng):
    d = rng.standard_normal(20)
    pred = spline_predict_axis(d, 0)
    n = d.size
    for i in range(n):
        if 3 <= i < n - 3:
            expected = (-d[i - 3] + 9 * d[i - 1] + 9 * d[i + 1] - d[i + 3]) / 16.0
        elif 1 <= i < n - 1:
            expected = 0.5 * (d[i - 1] + d[i + 1])
        elif i == 0:
            expected = d[1]
        else:
            expected = d[n - 2]
        assert pred[i] == pytest.approx(expected, abs=1e-12), i


def test_msd_matches_naive_sum(tiny):
    d = tiny
    acc = np.zeros_like(d)
    for axis in range(3):
        acc += np.abs(d - spline_predict_axis(d, axis))
    assert mean_spline_difference(d) == pytest.approx(acc.mean(), rel=1e-12)


class TestWaveletAnalytic:
    def test_lowpass_dc_gain_is_sqrt2(self):
        """Constant signal -> lowpass = sqrt(2)*c (the near-orthonormal
        scaling), highpass = 0."""
        from repro.transforms.wavelet import cdf97_forward

        c = 3.0
        x = np.full(64, c)
        coefs = cdf97_forward(x, 1)
        np.testing.assert_allclose(coefs[:32], np.sqrt(2) * c, rtol=1e-9)
        np.testing.assert_allclose(coefs[32:], 0.0, atol=1e-9)

    def test_parseval_within_biorthogonal_band(self, rng):
        x = rng.standard_normal(256)
        from repro.transforms.wavelet import cdf97_forward

        coefs = cdf97_forward(x, 4)
        ratio = (coefs**2).sum() / (x**2).sum()
        assert 0.7 < ratio < 1.5
