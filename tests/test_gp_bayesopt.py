"""Gaussian process and Bayesian optimization unit tests."""

import numpy as np
import pytest

from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.gp import GaussianProcess, matern52
from repro.ml.space import Choice, IntRange, SearchSpace


class TestKernel:
    def test_diagonal_is_one(self, rng):
        X = rng.random((10, 3))
        K = matern52(X, X, 0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_decays_with_distance(self):
        X1 = np.array([[0.0]])
        X2 = np.array([[0.0], [0.5], [2.0]])
        K = matern52(X1, X2, 0.5)[0]
        assert K[0] > K[1] > K[2] > 0

    def test_symmetric_psd(self, rng):
        X = rng.random((15, 2))
        K = matern52(X, X, 0.3)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-8


class TestGP:
    def test_interpolates_clean_data(self, rng):
        X = rng.random((25, 1))
        y = np.sin(6 * X[:, 0])
        gp = GaussianProcess().fit(X, y)
        pred = gp.predict(X)
        np.testing.assert_allclose(pred, y, atol=0.05)

    def test_uncertainty_grows_off_data(self, rng):
        X = rng.random((20, 1)) * 0.5  # observations in [0, 0.5]
        y = X[:, 0]
        gp = GaussianProcess().fit(X, y)
        _, std_on = gp.predict(np.array([[0.25]]), return_std=True)
        _, std_off = gp.predict(np.array([[0.95]]), return_std=True)
        assert std_off[0] > std_on[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.ones((1, 2)))

    def test_bad_input_shapes(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.ones((3, 2)), np.ones(5))

    def test_constant_targets_handled(self, rng):
        X = rng.random((10, 2))
        gp = GaussianProcess().fit(X, np.full(10, 3.0))
        pred = gp.predict(X)
        np.testing.assert_allclose(pred, 3.0, atol=1e-6)


class TestBayesOpt:
    @pytest.fixture()
    def simple_space(self):
        return SearchSpace({"x": IntRange(0, 100), "flag": Choice((True, False))})

    def test_finds_optimum_region(self, simple_space):
        def objective(params):
            return -((params["x"] - 70) ** 2) / 100.0 + (1.0 if params["flag"] else 0.0)

        bo = BayesianOptimizer(simple_space, n_initial=4, random_state=0)
        res = bo.run(objective, n_iter=18)
        assert abs(res.best_params["x"] - 70) <= 20
        assert res.best_params["flag"] is True

    def test_history_and_trajectory(self, simple_space):
        bo = BayesianOptimizer(simple_space, n_initial=2, random_state=0)
        res = bo.run(lambda p: float(p["x"]), n_iter=5)
        assert len(res.history) == 5
        assert len(res.trajectory("x")) == 5
        assert res.best_score == max(h.score for h in res.history)

    def test_checkpoint_round_trip(self, simple_space):
        bo = BayesianOptimizer(simple_space, n_initial=2, random_state=0)
        bo.run(lambda p: float(p["x"]), n_iter=4)
        state = bo.checkpoint()
        assert len(state) == 4
        warm = BayesianOptimizer.from_checkpoint(simple_space, state, random_state=1)
        assert warm.n_observations == 4
        res = warm.run(lambda p: float(p["x"]), n_iter=2)
        assert warm.n_observations == 6
        # warm restart retains the previous best
        assert res.best_score >= max(s for _, s in state)

    def test_warm_start_skips_random_phase(self, simple_space):
        """With enough prior observations, the first fresh suggestion is
        model-guided (exploitation) rather than uniform random."""
        state = [({"x": x, "flag": True}, -(x - 80) ** 2 / 10.0) for x in (0, 20, 40, 60, 80, 100)]
        warm = BayesianOptimizer.from_checkpoint(simple_space, state, random_state=0)
        suggestion = warm.suggest()
        assert abs(suggestion["x"] - 80) <= 25

    def test_observe_then_suggest(self, simple_space):
        bo = BayesianOptimizer(simple_space, n_initial=1, random_state=0)
        for x in (10, 50, 90):
            bo.observe({"x": x, "flag": False}, -abs(x - 50))
        params = bo.suggest()
        assert 0 <= params["x"] <= 100
