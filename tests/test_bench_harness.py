"""Benchmark-harness unit tests: scales, tables, curve cache, walltime model."""

import numpy as np
import pytest

from repro.bench.curves import clear_cache, true_curve
from repro.bench.harness import format_table, get_scale
from repro.data import load_field


class TestScale:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_env_selects_medium(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        scale = get_scale()
        assert scale.name == "medium"
        assert scale.n_ebs == 35  # the paper's grid

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(KeyError):
            get_scale()

    def test_rel_ebs_grid(self):
        scale = get_scale()
        ebs = scale.rel_ebs(5)
        assert ebs.size == 5
        assert (np.diff(ebs) > 0).all()

    def test_dataset_kwargs_shapes(self):
        scale = get_scale()
        assert len(scale.dataset_kwargs("cesm")["shape"]) == 2
        assert len(scale.dataset_kwargs("miranda")["shape"]) == 3


class TestFormatTable:
    def test_alignment_and_note(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], ["x", 3.0]], note="hello")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "hello" in out
        assert "2.5" in out

    def test_float_formatting(self):
        out = format_table("T", ["v"], [[0.000123456]])
        assert "0.0001235" in out


class TestCurveCache:
    def test_cache_hits_are_free(self):
        clear_cache()
        field = load_field("hcci/oh", shape=(10, 12, 12))
        ebs = np.geomspace(1e-2, 1e-1, 3) * field.value_range
        r1, t1 = true_curve(field, "szx", ebs)
        r2, t2 = true_curve(field, "szx", ebs)
        np.testing.assert_array_equal(r1, r2)
        assert t2 == t1  # cached entry reports the original cost

    def test_different_grid_different_entry(self):
        clear_cache()
        field = load_field("hcci/oh", shape=(10, 12, 12))
        ebs1 = np.geomspace(1e-2, 1e-1, 3) * field.value_range
        ebs2 = np.geomspace(1e-2, 1e-1, 4) * field.value_range
        r1, _ = true_curve(field, "szx", ebs1)
        r2, _ = true_curve(field, "szx", ebs2)
        assert r1.size != r2.size


class TestWalltimeModel:
    def test_memory_wall_serializes(self):
        from repro.bench.experiments_model import _modeled_parallel_walltime
        from repro.ml.grid_search import SearchRecord

        recs = [
            SearchRecord(params={}, score=0, fit_seconds=1.0, memory_bytes=600)
            for _ in range(4)
        ]
        # Budget fits two at a time -> two rounds of max(1.0) each.
        wall = _modeled_parallel_walltime(recs, memory_budget=1200, cores=36)
        assert wall == pytest.approx(2.0)
        # Unconstrained -> one round.
        wall = _modeled_parallel_walltime(recs, memory_budget=10_000, cores=36)
        assert wall == pytest.approx(1.0)

    def test_core_limit(self):
        from repro.bench.experiments_model import _modeled_parallel_walltime
        from repro.ml.grid_search import SearchRecord

        recs = [
            SearchRecord(params={}, score=0, fit_seconds=1.0, memory_bytes=1)
            for _ in range(5)
        ]
        wall = _modeled_parallel_walltime(recs, memory_budget=10_000, cores=2)
        assert wall == pytest.approx(3.0)  # ceil(5/2) rounds

    def test_oversized_job_runs_alone(self):
        from repro.bench.experiments_model import _modeled_parallel_walltime
        from repro.ml.grid_search import SearchRecord

        recs = [SearchRecord(params={}, score=0, fit_seconds=2.0, memory_bytes=999)]
        wall = _modeled_parallel_walltime(recs, memory_budget=10, cores=4)
        assert wall == pytest.approx(2.0)
