"""The repro.serve serving layer: cache, pool, registry, service."""

import os
import time

import numpy as np
import pytest

from repro import load_dataset
from repro.api import Carol, Fxrz, Service, ServiceOptions, save
from repro.serve import (
    LRUCache,
    ModelRegistry,
    PredictionService,
    VerifiedPrediction,
    WorkerPool,
    digest_array,
)

SHAPE = (10, 14, 14)
REL = np.geomspace(1e-3, 1e-1, 5)


@pytest.fixture(scope="module")
def train_fields():
    return load_dataset("miranda", shape=SHAPE)[:3]


@pytest.fixture(scope="module")
def fitted(train_fields):
    fw = Carol(compressor="szx", rel_error_bounds=REL, n_iter=3, cv=2)
    fw.fit(train_fields)
    return fw


class TestDigest:
    def test_equal_arrays_equal_digest(self, rng):
        a = rng.random((6, 7))
        assert digest_array(a) == digest_array(a.copy())

    def test_one_element_changes_digest(self, rng):
        a = rng.random((6, 7))
        b = a.copy()
        b[3, 3] += 1e-9
        assert digest_array(a) != digest_array(b)

    def test_shape_matters(self):
        a = np.arange(12.0)
        assert digest_array(a) != digest_array(a.reshape(3, 4))

    def test_noncontiguous_view_equals_copy(self, rng):
        a = rng.random((10, 10))
        view = a[::2, ::2]
        assert digest_array(view) == digest_array(view.copy())


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_entries_disables(self):
        cache = LRUCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestLRUCacheCostMode:
    def test_byte_budget_eviction(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        a = np.zeros(10, dtype=np.float32)  # 40 bytes each
        cache.put("a", a)
        cache.put("b", a.copy())
        assert cache.total_cost == 80
        cache.put("c", a.copy())  # 120 > 100: evicts LRU "a"
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.total_cost == 80
        assert cache.stats.evictions == 1

    def test_eviction_respects_recency(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        a = np.zeros(10, dtype=np.float32)
        cache.put("a", a)
        cache.put("b", a.copy())
        cache.get("a")  # refresh "a"; "b" is now least recent
        cache.put("c", a.copy())
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_oversized_entry_never_admitted(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        cache.put("big", np.zeros(100, dtype=np.float32))  # 400 > 100
        assert "big" not in cache
        assert cache.stats.evictions == 0  # rejected, nothing evicted

    def test_replacement_updates_total_cost(self):
        cache = LRUCache(max_entries=None, max_cost=1000)
        cache.put("a", np.zeros(10, dtype=np.float32))
        cache.put("a", np.zeros(20, dtype=np.float32))
        assert cache.total_cost == 80
        assert len(cache) == 1

    def test_zero_cost_budget_disables(self):
        cache = LRUCache(max_entries=None, max_cost=0)
        cache.put("a", np.zeros(4))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_custom_cost_function(self):
        cache = LRUCache(max_entries=None, max_cost=5, cost=len)
        cache.put("a", "xx")
        cache.put("b", "yyy")
        assert cache.total_cost == 5
        cache.put("c", "z")
        assert "a" not in cache  # 6 > 5 evicted the least recent

    def test_count_bound_still_applies_with_cost(self):
        cache = LRUCache(max_entries=2, max_cost=1000)
        for key in "abc":
            cache.put(key, np.zeros(2))
        assert len(cache) == 2 and "a" not in cache

    def test_clear_resets_cost(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        cache.put("a", np.zeros(10, dtype=np.float32))
        cache.clear()
        assert cache.total_cost == 0.0 and len(cache) == 0

    def test_put_reports_admission(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        assert cache.put("a", np.zeros(10, dtype=np.float32)) is True
        assert cache.put("big", np.zeros(100, dtype=np.float32)) is False
        assert LRUCache(max_entries=0).put("a", 1) is False
        assert LRUCache(max_entries=None, max_cost=0).put("a", 1) is False

    def test_admits_predicts_put(self):
        cache = LRUCache(max_entries=None, max_cost=100)
        small = np.zeros(10, dtype=np.float32)
        big = np.zeros(100, dtype=np.float32)
        assert cache.admits(small) and cache.put("a", small)
        assert not cache.admits(big) and not cache.put("b", big)
        assert not LRUCache(max_entries=0).admits(small)
        assert not LRUCache(max_entries=None, max_cost=0).admits(small)
        assert LRUCache(max_entries=4).admits(small)  # count mode, no cost bound

    def test_evict_scope_drops_only_that_scope(self):
        cache = LRUCache(max_entries=None, max_cost=1000)
        a = np.zeros(10, dtype=np.float32)  # 40 bytes each
        cache.put(("old", (0, 0)), a)
        cache.put(("old", (1, 0)), a.copy())
        cache.put(("new", (0, 0)), a.copy())
        cache.put("plain-key", a.copy())  # non-tuple keys are untouched
        assert cache.evict_scope("old") == 2
        assert ("old", (0, 0)) not in cache and ("old", (1, 0)) not in cache
        assert ("new", (0, 0)) in cache and "plain-key" in cache
        assert cache.total_cost == 80
        assert cache.stats.evictions == 0  # invalidation, not capacity pressure
        assert cache.evict_scope("old") == 0


def _square(x):
    return x * x


def _slow(x, delay):
    time.sleep(delay)
    return x


def _die_unless_pid(main_pid, x):
    if os.getpid() != main_pid:
        os._exit(13)
    return x


class TestWorkerPool:
    def test_in_process_mode(self):
        pool = WorkerPool(0)
        assert pool.map_ordered(_square, [(i,) for i in range(5)]) == [0, 1, 4, 9, 16]
        assert pool.stats.completed == 5
        assert pool.stats.fallbacks == 0

    def test_order_preserved_across_workers(self):
        with WorkerPool(2, max_pending=3) as pool:
            out = pool.map_ordered(_square, [(i,) for i in range(8)])
        assert out == [i * i for i in range(8)]

    def test_single_task_runs_inline(self):
        pool = WorkerPool(2)
        assert pool.run(_square, 7) == 49
        assert pool._executor is None  # no worker was ever spawned

    def test_timeout_falls_back_in_process(self):
        with WorkerPool(2, timeout=0.2) as pool:
            out = pool.map_ordered(_slow, [(1, 0.0), (2, 5.0), (3, 0.0)])
        assert out == [1, 2, 3]
        assert pool.stats.timeouts == 1
        assert pool.stats.fallbacks == 1

    def test_dead_worker_falls_back_in_process(self):
        with WorkerPool(2) as pool:
            out = pool.map_ordered(_die_unless_pid, [(os.getpid(), i) for i in range(4)])
            assert out == [0, 1, 2, 3]
            assert pool.stats.fallbacks >= 1
            # the pool recycled its executor and keeps serving
            assert pool.map_ordered(_square, [(2,), (3,)]) == [4, 9]

    def test_task_exceptions_propagate(self):
        with WorkerPool(2) as pool:
            with pytest.raises(TypeError):
                pool.map_ordered(_square, [(1,), ("nope", 2)])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)
        with pytest.raises(ValueError):
            WorkerPool(1, max_pending=0)

    def test_map_ordered_preserves_task_order(self):
        with WorkerPool(2, max_pending=3) as pool:
            out = pool.map_ordered(_square, [(i,) for i in range(8)])
        assert out == [i * i for i in range(8)]

    def test_map_ordered_in_process(self):
        pool = WorkerPool(0)
        assert pool.map_ordered(_square, [(i,) for i in range(4)]) == [0, 1, 4, 9]
        assert pool.stats.completed == 4

    def test_map_ordered_timeout_override(self):
        """A per-call timeout overrides the pool default; the slow task
        falls back in-process and order is still preserved."""
        with WorkerPool(2, timeout=60.0) as pool:
            out = pool.map_ordered(_slow, [(1, 0.0), (2, 2.0), (3, 0.0)], timeout=0.2)
        assert out == [1, 2, 3]
        assert pool.stats.timeouts == 1
        assert pool.stats.fallbacks == 1

    def test_map_ordered_none_timeout_keeps_pool_default(self):
        with WorkerPool(2, timeout=0.2) as pool:
            out = pool.map_ordered(_slow, [(1, 0.0), (2, 2.0), (3, 0.0)], timeout=None)
        assert out == [1, 2, 3]
        assert pool.stats.timeouts == 1

    def test_run_many_is_deprecated_forwarding_shim(self):
        pool = WorkerPool(0)
        with pytest.warns(DeprecationWarning, match="map_ordered"):
            out = pool.run_many(_square, [(i,) for i in range(5)])
        assert out == pool.map_ordered(_square, [(i,) for i in range(5)])


class TestModelRegistry:
    def test_lazy_load_and_get(self, fitted, tmp_path):
        path = save(tmp_path / "m.npz", fitted)
        reg = ModelRegistry()
        reg.register("carol-prod", path)
        assert "carol-prod" in reg
        fw = reg.get("carol-prod")
        assert fw.name == "carol"
        assert reg.get("carol-prod") is fw  # cached, not reloaded

    def test_unknown_name(self):
        reg = ModelRegistry()
        with pytest.raises(KeyError, match="unknown model"):
            reg.get("nope")

    def test_missing_file_rejected_eagerly(self, tmp_path):
        reg = ModelRegistry()
        with pytest.raises(FileNotFoundError):
            reg.register("m", tmp_path / "missing.npz")

    def test_hot_reload_on_mtime_change(self, fitted, tmp_path):
        path = save(tmp_path / "m.npz", fitted)
        reg = ModelRegistry()
        reg.register("m", path)
        first = reg.get("m")
        os.utime(path, (time.time() + 5, time.time() + 5))
        second = reg.get("m")
        assert second is not first

    def test_hot_reload_on_same_mtime_overwrite(self, fitted, train_fields, tmp_path):
        # An overwrite within mtime granularity (common on coarse-timestamp
        # filesystems and fast CI) must still be detected: the signature
        # includes size and a content hash, not just the timestamp.
        path = save(tmp_path / "m.npz", fitted)
        mtime_ns = path.stat().st_mtime_ns
        reg = ModelRegistry()
        reg.register("m", path)
        assert reg.get("m").name == "carol"

        other = Fxrz(compressor="szx", rel_error_bounds=REL, n_iter=2, cv=2)
        other.fit(train_fields[:2])
        save(path, other)
        os.utime(path, ns=(mtime_ns, mtime_ns))  # forge the old timestamp
        assert path.stat().st_mtime_ns == mtime_ns
        assert reg.get("m").name == "fxrz"

    def test_in_memory_add(self, fitted):
        reg = ModelRegistry()
        reg.add("mem", fitted)
        assert reg.get("mem") is fitted
        assert reg.reload("mem") is fitted

    def test_unregister(self, fitted):
        reg = ModelRegistry()
        reg.add("mem", fitted)
        reg.unregister("mem")
        assert "mem" not in reg


class TestPredictionService:
    def test_facade_alias(self):
        assert Service is PredictionService

    def test_unfitted_framework_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            Service(Carol(compressor="szx"))

    def test_predict_matches_framework(self, fitted, train_fields):
        with Service(fitted) as svc:
            data = train_fields[0].data
            direct = fitted.predict_error_bound(data, 8.0, safety=1.0)
            served = svc.predict(data, 8.0, safety=1.0)
            assert served.error_bound == direct.error_bound

    def test_predict_batch_bitwise_identical_to_sequential(self, fitted, train_fields):
        requests = [
            (train_fields[i % len(train_fields)].data, 3.0 + 2.0 * i) for i in range(9)
        ]
        sequential = [
            fitted.predict_error_bound(d, r).error_bound for d, r in requests
        ]
        with Service(fitted) as svc:
            batched = svc.predict_batch(requests)
        assert [p.error_bound for p in batched] == sequential

    def test_batch_with_safety_identical(self, fitted, train_fields):
        requests = [(train_fields[0].data, r) for r in (4.0, 9.0, 17.0)]
        sequential = [
            fitted.predict_error_bound(d, r, safety=1.5).error_bound
            for d, r in requests
        ]
        with Service(fitted) as svc:
            batched = svc.predict_batch(requests, safety=1.5)
        assert [p.error_bound for p in batched] == sequential

    def test_repeated_fields_hit_cache(self, fitted, train_fields):
        data = train_fields[0].data
        with Service(fitted) as svc:
            svc.predict(data, 4.0)
            svc.predict(data, 8.0)
            svc.predict_batch([(data, 5.0), (data, 6.0)])
            stats = svc.stats()
        assert stats.cache.misses == 1
        assert stats.cache.hits >= 2
        assert stats.requests == 4

    def test_field_objects_accepted(self, fitted, train_fields):
        with Service(fitted) as svc:
            pred = svc.predict(train_fields[0], 6.0)
            assert pred.error_bound > 0

    def test_empty_batch(self, fitted):
        with Service(fitted) as svc:
            assert svc.predict_batch([]) == []

    def test_predict_targets_single_extraction(self, fitted, train_fields):
        data = train_fields[0].data
        with Service(fitted) as svc:
            batch = svc.predict_targets(data, [4.0, 8.0, 16.0])
            assert len(batch) == 3
            again = svc.predict_targets(data, [4.0, 8.0, 16.0])
            stats = svc.stats()
        assert stats.cache.misses == 1
        assert batch.error_bounds.tolist() == again.error_bounds.tolist()

    def test_verify_reports_achieved_ratio(self, fitted, train_fields):
        with Service(fitted) as svc:
            out = svc.predict_batch(
                [(train_fields[0].data, 5.0), (train_fields[1].data, 10.0)],
                verify=True,
            )
        assert all(isinstance(v, VerifiedPrediction) for v in out)
        assert all(v.achieved_ratio > 0 for v in out)
        assert out[0].ratio_error >= 0.0

    def test_worker_backend_identical_results(self, fitted, train_fields):
        requests = [(f.data, 6.0) for f in train_fields] + [
            (train_fields[0].data, 12.0)
        ]
        sequential = [
            fitted.predict_error_bound(d, r).error_bound for d, r in requests
        ]
        opts = ServiceOptions(cache_entries=8, workers=2, timeout_seconds=60.0)
        with Service(fitted, options=opts) as svc:
            batched = svc.predict_batch(requests)
            stats = svc.stats()
        assert [p.error_bound for p in batched] == sequential
        assert stats.pool.fallbacks == 0

    def test_fxrz_service(self, train_fields):
        fw = Fxrz(compressor="szx", rel_error_bounds=REL, n_iter=2, cv=2)
        fw.fit(train_fields[:2])
        requests = [(train_fields[0].data, 4.0), (train_fields[1].data, 8.0)]
        sequential = [
            fw.predict_error_bound(d, r).error_bound for d, r in requests
        ]
        with Service(fw) as svc:
            batched = svc.predict_batch(requests)
        assert [p.error_bound for p in batched] == sequential

    def test_cache_disabled_still_correct(self, fitted, train_fields):
        data = train_fields[0].data
        direct = fitted.predict_error_bound(data, 7.0).error_bound
        with Service(fitted, options=ServiceOptions(cache_entries=0)) as svc:
            assert svc.predict(data, 7.0).error_bound == direct
            assert svc.predict(data, 7.0).error_bound == direct
            assert svc.stats().cache.hits == 0


class TestServiceOptions:
    def test_frozen_and_hashable(self):
        opts = ServiceOptions(cache_entries=16, workers=1)
        assert opts == ServiceOptions(cache_entries=16, workers=1)
        assert hash(opts) == hash(ServiceOptions(cache_entries=16, workers=1))
        with pytest.raises(Exception):
            opts.workers = 2

    def test_build(self, fitted):
        svc = ServiceOptions(cache_entries=4).build(fitted)
        assert isinstance(svc, PredictionService)
        assert svc.cache.max_entries == 4
        svc.close()

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ServiceOptions(4)

    def test_to_kwargs_round_trips(self):
        opts = ServiceOptions(cache_entries=8, workers=3)
        assert ServiceOptions(**opts.to_kwargs()) == opts

    def test_from_service_round_trips(self, fitted):
        opts = ServiceOptions(cache_entries=4, workers=0)
        with opts.build(fitted) as svc:
            assert ServiceOptions.from_service(svc) == opts


class TestServiceFromRegistry:
    def test_serves_and_hot_reloads(self, fitted, tmp_path, train_fields):
        path = save(tmp_path / "m.npz", fitted)
        reg = ModelRegistry()
        reg.register("prod", path)
        with Service.from_registry(reg, "prod") as svc:
            data = train_fields[0].data
            eb = svc.predict(data, 6.0).error_bound
            assert eb == fitted.predict_error_bound(data, 6.0).error_bound
            first_fw = svc.framework
            os.utime(path, (time.time() + 5, time.time() + 5))
            svc.predict(data, 6.0)
            assert svc.framework is not first_fw

    def test_unknown_name_fails_fast(self):
        with pytest.raises(KeyError):
            Service.from_registry(ModelRegistry(), "nope")
