"""Contract tests every compressor must satisfy (parametrized over all four).

These encode the two properties the ratio-controlled frameworks depend on:
the pointwise error bound and the monotonicity of ratio in error bound —
plus API hygiene (dtype/shape preservation, input validation).
"""

import numpy as np
import pytest

from repro.compressors import available_compressors, get_compressor

ALL = available_compressors()


@pytest.fixture(params=ALL)
def codec(request):
    return get_compressor(request.param)


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-4, 1e-2, 0.3])
    def test_bound_holds_3d(self, codec, smooth3d, eb):
        out, _ = codec.roundtrip(smooth3d, eb)
        assert np.abs(out - smooth3d).max() <= eb * (1 + 1e-9)

    def test_bound_holds_2d(self, codec, smooth2d):
        out, _ = codec.roundtrip(smooth2d, 1e-2)
        assert np.abs(out - smooth2d).max() <= 1e-2 * (1 + 1e-9)

    def test_bound_holds_1d(self, codec, rough1d):
        out, _ = codec.roundtrip(rough1d, 5e-3)
        assert np.abs(out - rough1d).max() <= 5e-3 * (1 + 1e-9)

    def test_bound_on_rough_data(self, codec, rng):
        x = rng.standard_normal((17, 23))
        out, _ = codec.roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3 * (1 + 1e-9)

    def test_bound_with_huge_values(self, codec, rng):
        x = 1e9 * np.cumsum(rng.standard_normal(500))
        out, _ = codec.roundtrip(x, 1e4)
        assert np.abs(out - x).max() <= 1e4 * (1 + 1e-9)

    def test_bound_with_tiny_values(self, codec, rng):
        x = 1e-9 * np.cumsum(rng.standard_normal(500))
        out, _ = codec.roundtrip(x, 1e-13)
        assert np.abs(out - x).max() <= 1e-13 * (1 + 1e-9)


class TestMonotonicity:
    def test_ratio_nondecreasing_in_eb(self, codec, smooth3d):
        ebs = np.geomspace(1e-5, 1.0, 8)
        ratios = [codec.compression_ratio(smooth3d, eb) for eb in ebs]
        diffs = np.diff(ratios)
        assert (diffs >= -1e-9 * np.abs(ratios[:-1])).all(), ratios

    def test_smooth_beats_noise(self, codec, rng):
        """A band-limited field must compress better than white noise."""
        t = np.linspace(0, 2 * np.pi, 24)
        xx, yy, zz = np.meshgrid(t, t, t, indexing="ij")
        smooth = np.sin(xx) * np.cos(yy) + 0.5 * np.sin(2 * zz)
        noise = rng.standard_normal(smooth.shape) * smooth.std()
        eb = 1e-3 * smooth.std()
        r_smooth = codec.compression_ratio(smooth, eb)
        r_noise = codec.compression_ratio(noise, eb)
        # The delta codecs (SZx, cuSZp) only exploit local value ranges, so
        # their edge on smooth data is slim; transform/prediction codecs
        # gain much more.
        factor = 1.05 if codec.name in ("szx", "cuszp") else 1.2
        assert r_smooth > factor * r_noise


class TestRoundTripMechanics:
    def test_shape_and_dtype_preserved(self, codec, rng):
        x = rng.standard_normal((9, 11)).astype(np.float32)
        x = np.cumsum(x, axis=0)
        out, res = codec.roundtrip(x, 1e-2)
        assert out.shape == x.shape
        assert out.dtype == np.float32
        assert res.original_bytes == x.nbytes

    def test_constant_array_compresses_hard(self, codec):
        x = np.full((32, 32), 4.25)
        out, res = codec.roundtrip(x, 1e-6)
        assert np.abs(out - x).max() <= 1e-6
        # ZFP still spends ~precision bits on each block's DC coefficient in
        # fixed-accuracy mode; the others collapse constants much harder.
        assert res.ratio > (8 if codec.name == "zfp" else 20)

    def test_all_zero_array(self, codec):
        x = np.zeros((20, 20, 4))
        out, res = codec.roundtrip(x, 1e-8)
        assert np.abs(out).max() <= 1e-8
        assert res.ratio > 20

    def test_result_repr_has_ratio(self, codec, smooth2d):
        res = codec.compress(smooth2d, 1e-2)
        assert "ratio=" in repr(res)
        assert res.compressor == codec.name

    def test_integer_input_promoted(self, codec):
        x = np.arange(256).reshape(16, 16)
        out, _ = codec.roundtrip(x, 0.5)
        assert np.abs(out - x).max() <= 0.5


class TestValidation:
    def test_nan_rejected(self, codec):
        x = np.ones((8, 8))
        x[3, 3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            codec.compress(x, 1e-3)

    def test_inf_rejected(self, codec):
        x = np.ones(64)
        x[10] = np.inf
        with pytest.raises(ValueError):
            codec.compress(x, 1e-3)

    def test_empty_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.compress(np.zeros(0), 1e-3)

    @pytest.mark.parametrize("eb", [0.0, -1.0, np.nan, np.inf])
    def test_bad_error_bound_rejected(self, codec, eb):
        with pytest.raises(ValueError):
            codec.compress(np.ones(100), eb)

    def test_complex_rejected(self, codec):
        with pytest.raises(TypeError):
            codec.compress(np.ones(16, dtype=complex), 1e-3)

    def test_cross_codec_decode_rejected(self, codec, smooth2d):
        other = [n for n in ALL if n != codec.name][0]
        res = get_compressor(other).compress(smooth2d, 1e-2)
        with pytest.raises(ValueError):
            codec.decompress(res)


class TestRegistry:
    def test_available_names(self):
        assert {"szx", "zfp", "sz3", "sperr"} <= set(ALL)
        assert "cuszp" in ALL  # the paper-referenced extension codec

    def test_paper_four_constant(self):
        from repro.compressors.registry import PAPER_COMPRESSORS

        assert PAPER_COMPRESSORS == ("szx", "zfp", "sz3", "sperr")

    def test_case_insensitive(self):
        assert get_compressor("SZ3").name == "sz3"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_compressor("not-a-codec")

    def test_register_extension(self):
        from repro.compressors.registry import _REGISTRY, register_compressor
        from repro.compressors.szx import SZXCompressor

        register_compressor("myszx", SZXCompressor)
        try:
            assert get_compressor("myszx").name == "szx"
        finally:
            _REGISTRY.pop("myszx")
