"""Training-data collection + model-training stage tests."""

import numpy as np
import pytest

from repro.core.collection import DEFAULT_REL_EBS, TrainingCollector, TrainingData
from repro.core.prediction import ErrorBoundModel, invert_curve
from repro.core.training import train_forest
from repro.data import load_dataset

SHAPE = (16, 20, 20)
REL = np.geomspace(1e-3, 1e-1, 5)


@pytest.fixture(scope="module")
def fields():
    return load_dataset("miranda", shape=SHAPE)[:3]


class TestCollector:
    def test_full_mode(self, fields):
        col = TrainingCollector("szx", mode="full", rel_error_bounds=REL)
        data = col.collect(fields)
        assert data.n_rows == 3 * REL.size
        for rec in data.records:
            assert rec.source == "full"
            assert (rec.ratios > 0).all()
            assert rec.features.shape == (5,)
            assert rec.calibration is None

    def test_secre_mode_faster(self, fields):
        full = TrainingCollector("sperr", mode="full", rel_error_bounds=REL)
        fast = TrainingCollector("sperr", mode="secre", rel_error_bounds=REL)
        d_full = full.collect(fields)
        d_fast = fast.collect(fields)
        assert d_fast.timing.total("collection") < d_full.timing.total("collection")

    def test_calibrated_mode_attaches_info(self, fields):
        col = TrainingCollector(
            "sperr", mode="calibrated", rel_error_bounds=REL, calibration_points=3
        )
        data = col.collect(fields[:1])
        rec = data.records[0]
        assert rec.calibration is not None
        assert rec.calibration.n_points == 3

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            TrainingCollector("szx", mode="psychic")

    def test_unsorted_grid_rejected(self):
        with pytest.raises(ValueError):
            TrainingCollector("szx", rel_error_bounds=np.array([0.1, 0.01]))

    def test_default_grid_is_35_points(self):
        assert DEFAULT_REL_EBS.size == 35  # the paper's sample size


class TestTrainingData:
    def test_design_matrix_shapes(self, fields):
        data = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields)
        X, y = data.design_matrix()
        assert X.shape == (3 * REL.size, 6)
        assert y.shape == (3 * REL.size,)
        assert np.isfinite(X).all() and np.isfinite(y).all()

    def test_feature_names(self, fields):
        data = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields[:1])
        assert data.feature_names == ["mean", "range", "mnd", "mld", "msd", "log_ratio"]

    def test_merge(self, fields):
        col = TrainingCollector("szx", mode="secre", rel_error_bounds=REL)
        a = col.collect(fields[:1])
        b = col.collect(fields[1:2])
        m = a.merge(b)
        assert m.n_rows == a.n_rows + b.n_rows

    def test_merge_compressor_mismatch(self, fields):
        a = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields[:1])
        b = TrainingCollector("zfp", mode="secre", rel_error_bounds=REL).collect(fields[:1])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_design_matrix_rejected(self):
        with pytest.raises(ValueError):
            TrainingData(compressor="szx").design_matrix()


class TestTrainForest:
    @pytest.fixture(scope="class")
    def xy(self):
        rng = np.random.default_rng(0)
        X = rng.random((80, 6))
        y = X[:, 0] + 2 * X[:, 5]
        return X, y

    def test_grid_method(self, xy):
        model, info = train_forest(*xy, method="grid", n_iter=2, cv=3)
        assert info.method == "grid"
        assert info.n_evaluations == 2
        assert model.predict(xy[0]).shape == (80,)

    def test_bayesopt_method_with_checkpoint(self, xy):
        model, info = train_forest(*xy, method="bayesopt", n_iter=4, cv=3)
        assert info.checkpoint is not None
        assert len(info.checkpoint) == 4
        # warm restart runs fewer evaluations
        _, info2 = train_forest(*xy, method="bayesopt", n_iter=4, cv=3,
                                checkpoint=info.checkpoint)
        assert info2.n_evaluations < info.n_evaluations + len(info.checkpoint)

    def test_unknown_method(self, xy):
        with pytest.raises(ValueError):
            train_forest(*xy, method="gradient-descent")


class TestInvertCurve:
    def test_exact_inverse_on_powerlaw(self):
        ebs = np.geomspace(1e-4, 1e-1, 20)
        ratios = 100 * ebs**0.5
        target = 100 * (1e-2) ** 0.5
        eb = invert_curve(ebs, ratios, target)
        assert eb == pytest.approx(1e-2, rel=1e-6)

    def test_handles_non_monotone_noise(self):
        ebs = np.geomspace(1e-3, 1e-1, 10)
        ratios = np.array([2, 3, 2.9, 4, 5, 4.8, 7, 9, 12, 15.0])
        eb = invert_curve(ebs, ratios, 6.0)
        assert ebs[0] <= eb <= ebs[-1]

    def test_out_of_range_clamps(self):
        ebs = np.array([1e-3, 1e-2, 1e-1])
        ratios = np.array([2.0, 4.0, 8.0])
        assert invert_curve(ebs, ratios, 100.0) == pytest.approx(1e-1)
        assert invert_curve(ebs, ratios, 0.5) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            invert_curve([1e-3], [2.0], 4.0)
        with pytest.raises(ValueError):
            invert_curve([1e-3, 1e-2], [2.0, 4.0], -1.0)


class TestErrorBoundModel:
    def test_fit_predict_round_trip(self, fields):
        data = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields)
        model = ErrorBoundModel().fit(data, method="bayesopt", n_iter=3, cv=3)
        rec = data.records[0]
        eb = model.predict_error_bound(rec.features, float(rec.ratios[2]))
        # prediction lands inside the trained eb range
        assert rec.error_bounds[0] * 0.1 <= eb <= rec.error_bounds[-1] * 10

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ErrorBoundModel().predict_error_bound(np.zeros(5), 10.0)

    def test_bad_target_rejected(self, fields):
        data = TrainingCollector("szx", mode="secre", rel_error_bounds=REL).collect(fields[:1])
        model = ErrorBoundModel().fit(data, method="bayesopt", n_iter=3, cv=2)
        with pytest.raises(ValueError):
            model.predict_error_bound(np.zeros(5), -5.0)
