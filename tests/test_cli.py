"""CLI command tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if a.dest == "command")
        assert set(sub.choices) >= {
            "datasets", "estimate", "train", "predict", "compress", "bench",
            "serve-bench", "store-pack", "store-info", "store-unpack",
            "pack-bench", "read-bench", "load-bench", "trace-summary",
        }


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("miranda", "nyx", "cesm", "hurricane", "hcci", "mrs"):
            assert name in out


class TestEstimate:
    def test_prints_curve(self, capsys):
        rc = main([
            "estimate", "miranda/viscosity", "--shape", "12", "16", "16",
            "--compressor", "szx", "--mode", "full", "-n", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "error_bound" in out
        assert len([l for l in out.splitlines() if not l.startswith("#")]) >= 5

    def test_calibrated_mode(self, capsys):
        rc = main([
            "estimate", "hcci/oh", "--shape", "12", "16", "16",
            "--compressor", "sperr", "--mode", "calibrated", "-n", "5",
            "--calibration-points", "3",
        ])
        assert rc == 0


class TestTrainPredictCompress:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        rc = main([
            "train", "--datasets", "miranda", "--shape", "12", "16", "16",
            "--compressor", "szx", "--out", str(path), "-n", "5", "--iters", "4",
        ])
        assert rc == 0
        return path

    def test_predict(self, model_path, capsys):
        rc = main([
            "predict", "--model", str(model_path), "--ratio", "6",
            "miranda/pressure", "--shape", "12", "16", "16",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted error bound" in out

    def test_compress_writes_payload(self, model_path, tmp_path, capsys):
        out_file = tmp_path / "payload.bin"
        rc = main([
            "compress", "--model", str(model_path), "--ratio", "6",
            "miranda/pressure", "--shape", "12", "16", "16",
            "--out", str(out_file),
        ])
        assert rc == 0
        assert out_file.exists() and out_file.stat().st_size > 0
        out = capsys.readouterr().out
        assert "achieved ratio" in out


class TestBench:
    def test_unknown_experiment_lists_available(self, capsys):
        rc = main(["bench", "fig99_nothing"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "fig2_surrogate_curves" in err


class TestStoreCommands:
    @pytest.fixture(scope="class")
    def store_env(self, tmp_path_factory):
        """Train a chunk-sized model, write a raw field, pack it."""
        from repro import load_field

        d = tmp_path_factory.mktemp("store_cli")
        model = d / "model.npz"
        assert main([
            "train", "--datasets", "miranda", "--shape", "8", "16", "16",
            "--compressor", "szx", "--out", str(model),
            "--eb-min", "1e-3", "--eb-max", "3e-1", "-n", "6", "--iters", "5",
        ]) == 0
        raw = d / "pressure.f32"
        load_field("miranda/pressure", shape=(16, 16, 16), seed=3).data.tofile(raw)
        store = d / "pressure.rps"
        assert main([
            "store-pack", str(raw), "--shape", "16", "16", "16",
            "--chunk", "8", "16", "16",
            "--model", str(model), "--ratio", "6", "--out", str(store),
        ]) == 0
        return d, model, raw, store

    def test_pack_compresses_the_raw_file(self, store_env):
        _, _, raw, store = store_env
        assert store.stat().st_size < raw.stat().st_size

    def test_pack_synthetic_source(self, store_env, tmp_path, capsys):
        _, model, _, _ = store_env
        rc = main([
            "store-pack", "miranda/viscosity", "--shape", "16", "16", "16",
            "--model", str(model), "--ratio", "5",
            "--out", str(tmp_path / "v.rps"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "achieved" in out and "chunks" in out

    def test_raw_source_requires_shape(self, store_env, tmp_path):
        _, model, raw, _ = store_env
        with pytest.raises(SystemExit, match="--shape"):
            main([
                "store-pack", str(raw), "--model", str(model),
                "--ratio", "6", "--out", str(tmp_path / "x.rps"),
            ])

    def test_info(self, store_env, capsys):
        _, _, _, store = store_env
        assert main(["store-info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "achieved_ratio" in out
        assert "szx" in out
        assert "(16, 16, 16)" in out

    def test_info_chunk_listing(self, store_env, capsys):
        _, _, _, store = store_env
        assert main(["store-info", str(store), "--chunks"]) == 0
        out = capsys.readouterr().out
        assert "(0, 0, 0)" in out and "(1, 0, 0)" in out

    def test_unpack_verifies_against_original(self, store_env, tmp_path, capsys):
        _, _, raw, store = store_env
        out_file = tmp_path / "roundtrip.f32"
        rc = main([
            "store-unpack", str(store), "--out", str(out_file),
            "--verify-against", str(raw),
        ])
        assert rc == 0
        assert out_file.stat().st_size == raw.stat().st_size
        assert "within every chunk's recorded bound" in capsys.readouterr().out

    def test_unpack_flags_bound_violations(self, store_env, tmp_path, capsys):
        from repro import load_field

        _, _, _, store = store_env
        other = tmp_path / "other.f32"
        load_field("miranda/density", shape=(16, 16, 16), seed=9).data.tofile(other)
        rc = main(["store-unpack", str(store), "--verify-against", str(other)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestStorePackWorkers:
    def test_parallel_pack_matches_serial_bytes(self, tmp_path, capsys):
        """store-pack --workers N writes the same bytes as the serial pack
        at the same wave size (the CLI face of wave determinism)."""
        model = tmp_path / "model.npz"
        assert main([
            "train", "--datasets", "miranda", "--shape", "8", "16", "16",
            "--compressor", "szx", "--out", str(model),
            "--eb-min", "1e-3", "--eb-max", "3e-1", "-n", "5", "--iters", "4",
        ]) == 0
        blobs = {}
        for workers in (0, 2):
            out = tmp_path / f"w{workers}.rps"
            assert main([
                "store-pack", "miranda/pressure", "--shape", "16", "16", "16",
                "--chunk", "8", "16", "16", "--model", str(model),
                "--ratio", "6", "--out", str(out),
                "--workers", str(workers), "--wave-size", "2",
            ]) == 0
            blobs[workers] = out.read_bytes()
        assert blobs[2] == blobs[0]


class TestPackBench:
    def test_trains_packs_and_verifies_determinism(self, tmp_path, capsys):
        rc = main([
            "pack-bench", "miranda/viscosity", "--shape", "16", "16", "16",
            "--train-shape", "8", "16", "16", "--chunk", "8", "16", "16",
            "--compressor", "szx", "--workers", "2", "--ratio", "5",
            "--out-dir", str(tmp_path), "-n", "5", "--iters", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        assert "speedup" in out
        assert (tmp_path / "pack-bench-w1.rps").exists()
        assert (tmp_path / "pack-bench-w2.rps").exists()

    def test_min_speedup_gate_can_fail(self, tmp_path, capsys):
        """An absurd --min-speedup must flip the exit code (the byte check
        itself still passes)."""
        rc = main([
            "pack-bench", "miranda/viscosity", "--shape", "16", "16", "16",
            "--train-shape", "8", "16", "16", "--chunk", "8", "16", "16",
            "--compressor", "szx", "--workers", "2", "--ratio", "5",
            "--out-dir", str(tmp_path), "-n", "5", "--iters", "3",
            "--min-speedup", "1e9",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "byte-identical" in out
        assert "below required" in out


class TestReadBench:
    def test_check_mode_gates_identity_without_writing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # any accidental report write lands here
        rc = main([
            "read-bench", "--check", "--train-shape", "8", "8", "8",
            "-n", "5", "--iters", "3", "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for config in ("serial", "cached", "parallel+cache"):
            assert config in out
        assert "DIVERGED" not in out
        assert "report written" not in out
        assert not list(tmp_path.glob("BENCH_read.json"))

    def test_writes_report_with_throughput_and_hit_rate(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "BENCH_read.json"
        rc = main([
            "read-bench", "--train-shape", "8", "8", "8", "-n", "5",
            "--iters", "3", "--stores", "2", "--shape", "16", "16", "16",
            "--chunk", "8", "8", "8", "--reads", "10",
            "--read-shape", "8", "8", "8", "--workers", "0",
            "--out", str(report_path),
        ])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.read-bench/v1"
        assert report["identical"] is True
        for config in ("serial", "cached", "parallel+cache"):
            assert report["configs"][config]["bytes_per_s"] > 0
            assert 0.0 <= report["configs"][config]["cache_hit_rate"] <= 1.0
        assert report["configs"]["serial"]["cache_hit_rate"] == 0.0
        assert report["configs"]["cached"]["cache_hit_rate"] > 0.0


class TestLoadBench:
    def test_check_mode_gates_identity_without_writing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # any accidental report write lands here
        rc = main([
            "load-bench", "--check", "--train-shape", "8", "12", "12",
            "-n", "4", "--iters", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "identity gate" in out
        assert "bitwise-identical" in out
        assert "DIVERGED" not in out
        assert "report written" not in out
        assert not list(tmp_path.glob("BENCH_serve.json"))

    def test_writes_report_with_saturation_scan(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "BENCH_serve.json"
        rc = main([
            "load-bench", "--train-shape", "8", "12", "12", "-n", "4",
            "--iters", "3", "--shape", "8", "12", "12", "--fields", "2",
            "--requests", "12", "--reps", "1", "--out", str(report_path),
        ])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.load-bench/v1"
        assert report["identical"] is True
        assert report["capacity_rps"] > 0
        scenarios = {r["scenario"] for r in report["runs"]}
        assert any(s.startswith("open-poisson@") for s in scenarios)
        assert any(s.startswith("closed-") for s in scenarios)
        for row in report["runs"]:
            assert row["completed"] + row["rejected"] == row["requests"]
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert report["saturation"]["levels"]


class TestServeBench:
    def test_trains_and_benches(self, capsys):
        rc = main([
            "serve-bench", "--shape", "10", "12", "12", "--requests", "30",
            "--fields", "3", "--batch", "8", "-n", "4", "--iters", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bitwise-identical" in out
        assert "hit rate" in out

    def test_loads_saved_model(self, tmp_path, capsys):
        path = tmp_path / "m.npz"
        assert main([
            "train", "--datasets", "miranda", "--shape", "10", "12", "12",
            "--compressor", "szx", "--out", str(path), "-n", "4", "--iters", "3",
        ]) == 0
        capsys.readouterr()
        rc = main([
            "serve-bench", "--model", str(path), "--shape", "10", "12", "12",
            "--requests", "20", "--fields", "2", "--batch", "5",
        ])
        assert rc == 0
        assert "bitwise-identical" in capsys.readouterr().out
