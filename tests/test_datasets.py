"""Synthetic dataset generators: determinism, structure, evolution."""

import numpy as np
import pytest

from repro.data import DATASET_NAMES, Field, load_dataset, load_field
from repro.data.datasets import hurricane, nyx

SMALL = (12, 16, 16)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        for name in ("miranda", "nyx", "cesm", "hurricane", "hcci", "mrs"):
            assert name in DATASET_NAMES

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("enron-emails")

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            load_field("miranda/entropy")


class TestFieldCounts:
    def test_miranda_has_7_fields(self):
        fields = load_dataset("miranda", shape=SMALL)
        assert len(fields) == 7
        names = {f.name for f in fields}
        assert {"density", "viscosity", "pressure"} <= names

    def test_nyx_has_4_fields(self):
        assert len(load_dataset("nyx", shape=SMALL)) == 4

    def test_hurricane_has_13_fields(self):
        assert len(load_dataset("hurricane", shape=SMALL)) == 13

    def test_cesm_is_2d(self):
        for f in load_dataset("cesm", shape=(24, 48)):
            assert f.data.ndim == 2


class TestDeterminism:
    @pytest.mark.parametrize("name", ["miranda", "nyx", "hcci", "mrs"])
    def test_same_seed_same_data(self, name):
        a = load_dataset(name, shape=SMALL)
        b = load_dataset(name, shape=SMALL)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.data, fb.data)

    def test_different_seed_different_data(self):
        a = load_dataset("miranda", shape=SMALL, seed=1)
        b = load_dataset("miranda", shape=SMALL, seed=2)
        assert not np.array_equal(a[0].data, b[0].data)


class TestProperties:
    def test_float32_and_finite(self):
        for name in DATASET_NAMES:
            shape = (24, 48) if name == "cesm" else SMALL
            for f in load_dataset(name, shape=shape):
                assert f.data.dtype == np.float32
                assert np.isfinite(f.data).all(), f.path

    def test_nyx_density_heavy_tailed(self):
        bd = load_field("nyx/baryon_density", shape=(24, 24, 24))
        data = bd.data.astype(np.float64)
        assert data.min() > 0
        # log-normal: mean far above median
        assert data.mean() > 1.5 * np.median(data)

    def test_hcci_has_sharp_fronts(self):
        f = load_field("hcci/oh", shape=SMALL)
        grad = np.abs(np.diff(f.data.astype(np.float64), axis=0))
        # fronts jump the full tanh range in a single grid step
        assert grad.max() > 5 * grad.mean()

    def test_shape_override(self):
        f = load_field("mrs/magnetic_reconnection", shape=(10, 11, 12))
        assert f.data.shape == (10, 11, 12)


class TestTimeEvolution:
    def test_nyx_timesteps_correlated_but_different(self):
        t0 = nyx(shape=SMALL, timestep=0)[0].data.astype(np.float64)
        t1 = nyx(shape=SMALL, timestep=1)[0].data.astype(np.float64)
        assert not np.array_equal(t0, t1)
        corr = np.corrcoef(np.log(t0.ravel()), np.log(t1.ravel()))[0, 1]
        assert corr > 0.5

    def test_hurricane_vortex_moves(self):
        a = hurricane(shape=SMALL, timestep=0)
        b = hurricane(shape=SMALL, timestep=20)
        ua = next(f for f in a if f.name == "u").data
        ub = next(f for f in b if f.name == "u").data
        pos_a = np.unravel_index(np.argmax(np.abs(ua)), ua.shape)
        pos_b = np.unravel_index(np.argmax(np.abs(ub)), ub.shape)
        assert pos_a != pos_b

    def test_timestep_recorded_in_path(self):
        f = nyx(shape=SMALL, timestep=3)[0]
        assert "@t3" in f.path


class TestFieldHelpers:
    def test_relative_error_bound(self):
        f = Field("x", "y", np.array([0.0, 2.0], dtype=np.float32))
        assert f.relative_error_bound(0.1) == pytest.approx(0.2)

    def test_relative_eb_degenerate_range(self):
        f = Field("x", "y", np.zeros(4, dtype=np.float32))
        assert f.relative_error_bound(0.1) == pytest.approx(0.1)

    def test_path_format(self):
        f = load_field("miranda/density", shape=SMALL)
        assert f.path == "miranda/density"
        assert "shape" in repr(f)
