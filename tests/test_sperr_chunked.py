"""SPERR chunked mode (the paper's 128^d-chunk window, scaled)."""

import numpy as np
import pytest

from repro.compressors.sperr import SPERRCompressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(9)
    x = rng.standard_normal((40, 52, 36))
    for a in range(3):
        x = np.cumsum(x, axis=a)
    return x / 60.0


class TestChunkedRoundTrip:
    @pytest.mark.parametrize("edge", [16, 24])
    def test_bound_and_shape(self, data, edge):
        codec = SPERRCompressor(chunk_edge=edge)
        out, res = codec.roundtrip(data, 1e-2)
        assert out.shape == data.shape
        assert np.abs(out - data).max() <= 1e-2
        assert res.metadata["mode"] == "chunked"

    def test_non_divisible_edges(self, data):
        codec = SPERRCompressor(chunk_edge=17)  # ragged trailing chunks
        out, _ = codec.roundtrip(data, 1e-2)
        assert np.abs(out - data).max() <= 1e-2

    def test_small_array_skips_chunking(self):
        rng = np.random.default_rng(1)
        x = np.cumsum(rng.standard_normal((10, 10)), 0)
        codec = SPERRCompressor(chunk_edge=16)
        res = codec.compress(x, 1e-3)
        assert res.metadata.get("mode") != "chunked"

    def test_2d_and_1d(self, rng):
        codec = SPERRCompressor(chunk_edge=16)
        x2 = np.cumsum(np.cumsum(rng.standard_normal((40, 40)), 0), 1) / 10
        out2, _ = codec.roundtrip(x2, 1e-2)
        assert np.abs(out2 - x2).max() <= 1e-2
        x1 = np.cumsum(rng.standard_normal(300)) / 5
        out1, _ = codec.roundtrip(x1, 1e-2)
        assert np.abs(out1 - x1).max() <= 1e-2


class TestChunkedBehaviour:
    def test_ratio_close_to_whole_array(self, data):
        """Chunking costs a little ratio (smaller transforms, per-chunk
        headers) but stays in the same band."""
        eb = 1e-2
        r_whole = SPERRCompressor().compression_ratio(data, eb)
        r_chunk = SPERRCompressor(chunk_edge=16).compression_ratio(data, eb)
        assert r_chunk > 0.6 * r_whole

    def test_chunk_count(self, data):
        codec = SPERRCompressor(chunk_edge=16)
        res = codec.compress(data, 1e-2)
        import math

        expected = math.prod((-(-s // 16)) for s in data.shape)
        assert len(res.metadata["chunks"]) == expected

    def test_invalid_edge(self):
        with pytest.raises(ValueError):
            SPERRCompressor(chunk_edge=4)

    def test_truncated_chunk_stream(self, data):
        import dataclasses

        codec = SPERRCompressor(chunk_edge=16)
        res = codec.compress(data, 1e-2)
        broken = dataclasses.replace(res, payload=res.payload[: len(res.payload) // 2])
        with pytest.raises((ValueError, EOFError, IndexError)):
            codec.decompress(broken)
