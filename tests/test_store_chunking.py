"""Deterministic chunk grids: tiling, enumeration, region intersection."""

import numpy as np
import pytest

from repro.store.chunking import Chunk, ChunkGrid, default_chunk_shape


class TestDefaultChunkShape:
    def test_small_field_is_one_chunk(self):
        assert default_chunk_shape((4, 5, 6), target_elements=1000) == (4, 5, 6)

    def test_halves_largest_axis_until_fit(self):
        shape = default_chunk_shape((64, 64, 64), target_elements=32768)
        assert np.prod(shape) <= 32768
        assert all(1 <= c <= 64 for c in shape)

    def test_deterministic(self):
        a = default_chunk_shape((100, 200, 300), target_elements=4096)
        b = default_chunk_shape((100, 200, 300), target_elements=4096)
        assert a == b

    def test_degenerate_axis_never_zero(self):
        shape = default_chunk_shape((1, 1, 7), target_elements=2)
        assert all(c >= 1 for c in shape)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target_elements"):
            default_chunk_shape((4, 4), target_elements=0)


class TestGridBasics:
    def test_grid_shape_and_count(self):
        grid = ChunkGrid((10, 10), (4, 5))
        assert grid.grid_shape == (3, 2)
        assert grid.n_chunks == 6
        assert len(grid) == 6

    def test_chunk_shape_clipped_to_field(self):
        grid = ChunkGrid((3, 4), (10, 10))
        assert grid.chunk_shape == (3, 4)
        assert grid.n_chunks == 1

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            ChunkGrid((4, 4), (2,))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ChunkGrid((4, 0), (2, 2))
        with pytest.raises(ValueError):
            ChunkGrid((4, 4), (0, 2))

    def test_for_shape_derives_default(self):
        grid = ChunkGrid.for_shape((20, 20), target_elements=100)
        assert np.prod(grid.chunk_shape) <= 100


class TestTiling:
    def test_chunks_tile_field_exactly_once(self):
        grid = ChunkGrid((7, 10, 5), (3, 4, 5))
        cover = np.zeros((7, 10, 5), dtype=int)
        for chunk in grid:
            cover[chunk.slices] += 1
        assert (cover == 1).all()

    def test_iteration_is_flat_id_order(self):
        grid = ChunkGrid((6, 6), (3, 2))
        ids = [c.index for c in grid]
        assert ids == list(range(grid.n_chunks))

    def test_chunk_roundtrip_by_index_and_coords(self):
        grid = ChunkGrid((6, 7, 8), (2, 3, 4))
        for chunk in grid:
            assert grid.chunk(chunk.index) == chunk
            assert grid.chunk_at(chunk.coords) == chunk

    def test_edge_chunk_clipped(self):
        grid = ChunkGrid((7,), (3,))
        last = grid.chunk(grid.n_chunks - 1)
        assert last.slices == (slice(6, 7),)
        assert last.shape == (1,)
        assert last.n_elements == 1

    def test_out_of_range_rejected(self):
        grid = ChunkGrid((6, 6), (3, 3))
        with pytest.raises(IndexError):
            grid.chunk(99)
        with pytest.raises(IndexError):
            grid.chunk_at((5, 0))


class TestRegions:
    def test_normalize_none_is_full_field(self):
        grid = ChunkGrid((6, 8), (3, 4))
        assert grid.normalize_region(None) == (slice(0, 6), slice(0, 8))
        assert grid.normalize_region(Ellipsis) == (slice(0, 6), slice(0, 8))

    def test_normalize_mixed_int_and_slice(self):
        grid = ChunkGrid((6, 8), (3, 4))
        assert grid.normalize_region((2, slice(1, 5))) == (slice(2, 3), slice(1, 5))

    def test_normalize_negative_index(self):
        grid = ChunkGrid((6, 8), (3, 4))
        assert grid.normalize_region((-1,)) == (slice(5, 6), slice(0, 8))

    def test_normalize_ellipsis_mid_tuple(self):
        grid = ChunkGrid((4, 5, 6), (2, 2, 2))
        assert grid.normalize_region((1, Ellipsis)) == (
            slice(1, 2),
            slice(0, 5),
            slice(0, 6),
        )

    def test_strided_rejected(self):
        grid = ChunkGrid((6, 8), (3, 4))
        with pytest.raises(ValueError, match="strided"):
            grid.normalize_region((slice(0, 6, 2),))

    def test_too_many_axes_rejected(self):
        grid = ChunkGrid((6,), (3,))
        with pytest.raises(ValueError, match="axes"):
            grid.normalize_region((slice(None), slice(None)))

    def test_out_of_bounds_int_rejected(self):
        grid = ChunkGrid((6,), (3,))
        with pytest.raises(IndexError):
            grid.normalize_region((6,))

    def test_intersection_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        grid = ChunkGrid((9, 11, 7), (4, 3, 5))
        for _ in range(25):
            lo = [int(rng.integers(0, s)) for s in grid.shape]
            hi = [int(rng.integers(low + 1, s + 1)) for low, s in zip(lo, grid.shape)]
            region = tuple(slice(a, b) for a, b in zip(lo, hi))
            expected = [
                c.index
                for c in grid
                if all(
                    r.start < cs.stop and cs.start < r.stop
                    for r, cs in zip(region, c.slices)
                )
            ]
            got = [c.index for c in grid.chunks_intersecting(region)]
            assert got == expected

    def test_empty_region_intersects_nothing(self):
        grid = ChunkGrid((6, 8), (3, 4))
        assert grid.chunks_intersecting((slice(2, 2),)) == []

    def test_chunk_is_frozen_value(self):
        chunk = ChunkGrid((4,), (2,)).chunk(0)
        assert isinstance(chunk, Chunk)
        with pytest.raises(AttributeError):
            chunk.index = 3
