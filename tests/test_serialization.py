"""Model/framework persistence tests."""

import numpy as np
import pytest

from repro import CarolFramework, FxrzFramework, load_dataset, load_field
from repro.api import load, save
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.models import MODEL_KINDS
from repro.utils.serialization import (
    load_forest,
    load_model,
    load_framework,
    save_forest,
    save_model,
    save_framework,
)

SHAPE = (12, 16, 16)
REL = np.geomspace(1e-3, 1e-1, 5)


class TestForestIO:
    def test_round_trip_predictions(self, rng, tmp_path):
        X = rng.random((60, 4))
        y = X[:, 0] * 3 - X[:, 2]
        rf = RandomForestRegressor(n_estimators=6, random_state=0).fit(X, y)
        path = save_forest(tmp_path / "model.npz", rf, extra={"note": "hi"})
        loaded, extra = load_forest(path)
        assert extra == {"note": "hi"}
        np.testing.assert_array_equal(loaded.predict(X), rf.predict(X))

    def test_params_preserved(self, rng, tmp_path):
        X = rng.random((30, 2))
        y = X.sum(axis=1)
        rf = RandomForestRegressor(
            n_estimators=3, max_depth=4, min_samples_leaf=2, bootstrap=False,
            max_features="sqrt", random_state=1,
        ).fit(X, y)
        loaded, _ = load_forest(save_forest(tmp_path / "m.npz", rf))
        assert loaded.get_params() == rf.get_params()

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_forest(tmp_path / "m.npz", RandomForestRegressor())

    def test_suffix_added(self, rng, tmp_path):
        X = rng.random((20, 2))
        rf = RandomForestRegressor(n_estimators=2, random_state=0).fit(X, X[:, 0])
        path = save_forest(tmp_path / "model", rf)
        assert path.suffix == ".npz"
        assert path.exists()


class TestFrameworkIO:
    @pytest.fixture(scope="class")
    def fitted(self):
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
        fw.fit(load_dataset("miranda", shape=SHAPE)[:3])
        return fw

    def test_round_trip_prediction_identical(self, fitted, tmp_path):
        field = load_field("miranda/viscosity", shape=SHAPE, seed=5)
        path = save_framework(tmp_path / "carol.npz", fitted)
        loaded = load_framework(path)
        a = fitted.predict_error_bound(field.data, 6.0)
        b = loaded.predict_error_bound(field.data, 6.0)
        assert a.error_bound == pytest.approx(b.error_bound)
        assert loaded.name == "carol"
        assert loaded.compressor_name == "szx"

    def test_checkpoint_survives(self, fitted, tmp_path):
        path = save_framework(tmp_path / "carol.npz", fitted)
        loaded = load_framework(path)
        assert loaded.model.checkpoint is not None
        assert len(loaded.model.checkpoint) == len(fitted.model.checkpoint)

    def test_loaded_framework_can_refine(self, fitted, tmp_path):
        path = save_framework(tmp_path / "carol.npz", fitted)
        loaded = load_framework(path)
        rep = loaded.refine(load_dataset("miranda", shape=SHAPE, seed=9)[:2])
        assert rep.n_rows > 0

    def test_fxrz_round_trip(self, tmp_path):
        fw = FxrzFramework(compressor="zfp", rel_error_bounds=REL, n_iter=2, cv=2)
        fw.fit(load_dataset("miranda", shape=SHAPE)[:2])
        loaded = load_framework(save_framework(tmp_path / "f.npz", fw))
        assert loaded.name == "fxrz"
        field = load_field("miranda/density", shape=SHAPE)
        assert loaded.predict_error_bound(field.data, 3.0).error_bound > 0

    def test_unfitted_framework_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_framework(tmp_path / "x.npz", CarolFramework(compressor="szx"))


class TestModelIO:
    """save_model / load_model round-trip every supported model class."""

    def test_gbt_round_trip(self, rng, tmp_path):
        X = rng.random((50, 3))
        y = X[:, 0] - 2 * X[:, 1]
        gbt = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        loaded, extra = load_model(save_model(tmp_path / "g.npz", gbt, {"k": 1}))
        assert isinstance(loaded, GradientBoostingRegressor)
        assert extra == {"k": 1}
        assert loaded.base_value == gbt.base_value
        np.testing.assert_array_equal(loaded.predict(X), gbt.predict(X))

    def test_knn_round_trip(self, rng, tmp_path):
        X = rng.random((40, 4))
        y = X.sum(axis=1)
        knn = KNeighborsRegressor(n_neighbors=3).fit(X, y)
        loaded, _ = load_model(save_model(tmp_path / "k.npz", knn))
        assert isinstance(loaded, KNeighborsRegressor)
        np.testing.assert_array_equal(loaded.predict(X), knn.predict(X))

    def test_unfitted_models_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(tmp_path / "g.npz", GradientBoostingRegressor())
        with pytest.raises(ValueError):
            save_model(tmp_path / "k.npz", KNeighborsRegressor())

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(tmp_path / "x.npz", object())

    def test_load_forest_rejects_other_kinds(self, rng, tmp_path):
        X = rng.random((30, 2))
        gbt = GradientBoostingRegressor(n_estimators=2, random_state=0).fit(
            X, X[:, 0]
        )
        path = save_model(tmp_path / "g.npz", gbt)
        with pytest.raises(ValueError, match="not a forest"):
            load_forest(path)


class TestAllModelKindsRoundTrip:
    """api.save / api.load across every model_kind x both frameworks.

    The registry (and hence the serving layer) must be able to host any
    trained configuration; a loaded framework must predict identically.
    """

    @pytest.fixture(scope="class")
    def fields(self):
        return load_dataset("miranda", shape=(10, 12, 12))[:2]

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    @pytest.mark.parametrize("cls", [CarolFramework, FxrzFramework])
    def test_round_trip_identical_predictions(self, cls, kind, fields, tmp_path):
        fw = cls(
            compressor="szx",
            rel_error_bounds=REL,
            n_iter=2,
            cv=2,
            model_kind=kind,
        )
        fw.fit(fields)
        loaded = load(save(tmp_path / f"{cls.__name__}-{kind}.npz", fw))
        assert loaded.name == fw.name
        assert loaded.model_kind == kind
        probe = load_field("miranda/density", shape=(10, 12, 12), seed=3)
        for ratio in (3.0, 8.0, 20.0):
            a = fw.predict_error_bound(probe.data, ratio)
            b = loaded.predict_error_bound(probe.data, ratio)
            assert a.error_bound == b.error_bound
        batch_a = fw.predict_error_bound_batch(probe.data, [4.0, 9.0])
        batch_b = loaded.predict_error_bound_batch(probe.data, [4.0, 9.0])
        np.testing.assert_array_equal(batch_a.error_bounds, batch_b.error_bounds)
