"""repro.store end to end: pack/unpack round trips, closed-loop budgeting,
random access, corruption detection, memmap streaming, feedback wiring."""

import numpy as np
import pytest

from repro import CarolFramework, Field, load_dataset, load_field, obs
from repro.core.feedback import FeedbackLoop
from repro.data.io import save_raw
from repro.store import (
    CorruptChunkError,
    Store,
    StoreFormatError,
    StoreOptions,
    StoreWriter,
    open_raw,
    pack,
)

SHAPE = (24, 32, 32)
CHUNK = (8, 16, 16)
TARGET = 8.0
REL = np.geomspace(1e-3, 3e-1, 8)


@pytest.fixture(scope="module")
def fitted():
    """Framework trained on chunk-sized fields, so per-chunk predictions
    see in-distribution feature statistics."""
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=6, cv=2)
    fw.fit(load_dataset("miranda", shape=CHUNK))
    return fw


@pytest.fixture(scope="module")
def field():
    return load_field("miranda/pressure", shape=SHAPE, seed=3)


@pytest.fixture(scope="module")
def packed(fitted, field, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "pressure.rps"
    report = pack(path, field, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK))
    return path, report


class TestPackRoundTrip:
    def test_every_element_within_its_chunk_bound(self, packed, field):
        path, report = packed
        with Store(path) as st:
            full = st.read()
            assert full.shape == field.data.shape
            assert full.dtype == field.data.dtype
            for rec in report.chunks:
                chunk = st.grid.chunk_at(rec.coords)
                err = np.max(
                    np.abs(
                        full[chunk.slices].astype(np.float64)
                        - field.data[chunk.slices].astype(np.float64)
                    )
                )
                assert err <= rec.error_bound * (1 + 1e-9), rec.coords

    def test_achieved_ratio_within_10pct_of_target(self, packed):
        _, report = packed
        assert report.target_ratio == TARGET
        assert report.budget_drift < 0.10

    def test_closed_loop_beats_open_loop(self, fitted, field, tmp_path):
        drift = {}
        for closed in (True, False):
            report = pack(
                tmp_path / f"loop{closed}.rps",
                field,
                fitted,
                TARGET,
                options=StoreOptions(chunk_shape=CHUNK, closed_loop=closed),
            )
            drift[closed] = report.budget_drift
        assert drift[True] < drift[False]

    def test_manifest_metadata_bit_exact(self, packed, fitted, field, tmp_path):
        path, report = packed
        # Re-packing the same input is byte-identical (canonical manifest,
        # deterministic predictions), so the manifest round-trips bit-exact.
        again = tmp_path / "again.rps"
        pack(again, field, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK))
        assert again.read_bytes() == path.read_bytes()
        with Store(path) as st:
            assert len(st.manifest["chunks"]) == report.n_chunks
            for entry, rec in zip(st.manifest["chunks"], report.chunks):
                assert tuple(entry["coords"]) == rec.coords
                assert entry["error_bound"] == rec.error_bound
                assert entry["achieved_ratio"] == rec.achieved_ratio
                assert entry["target_ratio"] == rec.target_ratio

    def test_report_accounting(self, packed, field):
        _, report = packed
        assert report.original_bytes == field.data.nbytes
        assert report.stored_bytes == sum(c.stored_bytes for c in report.chunks)
        assert sum(c.raw_bytes for c in report.chunks) == report.original_bytes
        assert report.achieved_ratio == pytest.approx(
            report.original_bytes / report.stored_bytes
        )
        assert "chunks" in report.summary()

    def test_closed_loop_retargets_after_misses(self, packed):
        _, report = packed
        targets = {round(c.target_ratio, 6) for c in report.chunks}
        assert len(targets) > 1  # the budget loop actually moved the target


class TestRandomAccess:
    def test_subvolume_matches_full_read(self, packed):
        path, _ = packed
        with Store(path) as st:
            full = st.read()
            region = (slice(4, 20), slice(10, 30), slice(0, 9))
            np.testing.assert_array_equal(st.read(region), full[region])
            np.testing.assert_array_equal(st[5, :, 3:7], full[5:6, :, 3:7])

    def test_only_intersecting_chunks_decompressed(self, packed):
        path, _ = packed
        with Store(path) as st:
            region = (slice(0, 8), slice(0, 16), slice(0, 16))  # exactly 1 chunk
            expected = len(st.grid.chunks_intersecting(region))
            assert expected < st.n_chunks
            obs.enable()  # clears the metrics registry
            try:
                counter = obs.registry().counter("store.read.chunks_decompressed")
                st.read(region)
                assert counter.value == expected
                st.read()
                assert counter.value == expected + st.n_chunks
            finally:
                obs.disable()

    def test_read_single_chunk(self, packed, field):
        path, report = packed
        with Store(path) as st:
            rec = report.chunks[0]
            chunk = st.grid.chunk_at(rec.coords)
            data = st.read_chunk(rec.coords)
            assert data.shape == chunk.shape
            err = np.max(
                np.abs(
                    data.astype(np.float64) - field.data[chunk.slices].astype(np.float64)
                )
            )
            assert err <= rec.error_bound * (1 + 1e-9)

    def test_empty_region(self, packed):
        path, _ = packed
        with Store(path) as st:
            assert st.read((slice(3, 3),)).shape == (0, 32, 32)

    def test_info_summary(self, packed):
        path, report = packed
        with Store(path) as st:
            info = st.info()
            assert info["n_chunks"] == report.n_chunks
            assert info["achieved_ratio"] == pytest.approx(report.achieved_ratio)
            assert info["closed_loop"] is True
            assert info["compressor"] == "szx"


class TestCorruption:
    @pytest.fixture()
    def corrupted(self, packed, tmp_path):
        path, report = packed
        blob = bytearray(path.read_bytes())
        with Store(path) as st:
            victim = st.manifest["chunks"][2]
        blob[victim["offset"]] ^= 0xFF  # flip one payload byte
        bad = tmp_path / "corrupt.rps"
        bad.write_bytes(bytes(blob))
        return bad, tuple(victim["coords"])

    def test_corrupt_chunk_error_names_the_chunk(self, corrupted):
        bad, coords = corrupted
        with Store(bad) as st:
            with pytest.raises(CorruptChunkError, match=str(coords)) as exc:
                st.read()
            assert exc.value.coords == coords

    def test_other_chunks_still_readable(self, corrupted, packed):
        bad, coords = corrupted
        _, report = packed
        other = next(r.coords for r in report.chunks if r.coords != coords)
        with Store(bad) as st:
            st.read_chunk(other)  # does not raise
            with pytest.raises(CorruptChunkError):
                st.verify_all()

    def test_verify_false_skips_checksum(self, corrupted):
        bad, coords = corrupted
        with Store(bad, verify=False) as st:
            st.read_chunk(coords)  # decodes garbage rather than raising

    def test_truncated_file_rejected_at_open(self, packed, tmp_path):
        path, _ = packed
        cut = tmp_path / "cut.rps"
        cut.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(StoreFormatError, match="truncated"):
            Store(cut)


class TestStreamingSources:
    def test_pack_from_memmap_matches_in_memory(self, fitted, field, packed, tmp_path):
        path, _ = packed
        raw = save_raw(field, tmp_path / "pressure.f32")
        mm = open_raw(raw, SHAPE, dtype=np.float32)
        assert isinstance(mm, np.memmap)
        out = tmp_path / "memmap.rps"
        pack(out, mm, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK))
        assert out.read_bytes() == path.read_bytes()

    def test_open_raw_size_mismatch(self, field, tmp_path):
        raw = save_raw(field, tmp_path / "p.f32")
        with pytest.raises(ValueError, match="bytes"):
            open_raw(raw, (SHAPE[0] + 1, *SHAPE[1:]), dtype=np.float32)

    def test_pack_accepts_field_objects(self, fitted, field, packed, tmp_path):
        path, _ = packed
        out = tmp_path / "field.rps"
        pack(out, field, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK))
        assert out.read_bytes() == path.read_bytes()


class TestServicePredictor:
    def test_service_route_matches_framework_route(self, fitted, field, packed, tmp_path):
        from repro.api import Service

        path, _ = packed
        with Service(fitted) as service:
            out1 = tmp_path / "svc1.rps"
            pack(out1, field, service, TARGET, options=StoreOptions(chunk_shape=CHUNK))
            assert out1.read_bytes() == path.read_bytes()
            # Re-packing hits the service's content-addressed feature cache.
            out2 = tmp_path / "svc2.rps"
            pack(out2, field, service, TARGET, options=StoreOptions(chunk_shape=CHUNK))
            stats = service.stats()
            assert stats.cache.hits > 0


class TestFeedbackWiring:
    def test_pack_records_one_observation_per_chunk(self, fitted, field, tmp_path):
        loop = FeedbackLoop(fitted, refresh_every=10_000)
        report = pack(
            tmp_path / "fb.rps",
            field,
            fitted,
            TARGET,
            options=StoreOptions(chunk_shape=CHUNK),
            feedback=loop,
        )
        assert len(loop.observations) == report.n_chunks
        for obs_, rec in zip(loop.observations, report.chunks):
            assert obs_.error_bound == rec.error_bound
            assert obs_.achieved_ratio == pytest.approx(rec.achieved_ratio)
            assert obs_.target_ratio == pytest.approx(rec.target_ratio)

    def test_feedback_retrain_improves_next_pack(self, field, tmp_path):
        # Train only on the rough velocity fields; the smooth pressure field
        # is mispredicted until its own pack outcomes are folded back in.
        train = [
            f for f in load_dataset("miranda", shape=CHUNK) if f.name.startswith("velocity")
        ]
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=6, cv=2)
        fw.fit(train)
        opts = StoreOptions(chunk_shape=CHUNK, closed_loop=False)
        loop = FeedbackLoop(fw, refresh_every=10_000)
        before = pack(tmp_path / "b.rps", field, fw, TARGET, options=opts, feedback=loop)
        loop.refresh()
        assert loop.refreshes == 1
        after = pack(tmp_path / "a.rps", field, fw, TARGET, options=opts)
        assert after.budget_drift < before.budget_drift


class TestValidation:
    def test_unfitted_framework_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            StoreWriter("x.rps", CarolFramework(compressor="szx"))

    def test_bad_predictor_rejected(self):
        with pytest.raises(TypeError, match="predictor"):
            StoreWriter("x.rps", object())

    def test_target_ratio_must_exceed_one(self, fitted, field, tmp_path):
        with pytest.raises(ValueError, match="target_ratio"):
            pack(tmp_path / "x.rps", field, fitted, 1.0)

    def test_options_validation(self):
        with pytest.raises(ValueError, match="chunk_elements"):
            StoreOptions(chunk_elements=0)
        with pytest.raises(ValueError, match="min_chunk_ratio"):
            StoreOptions(min_chunk_ratio=0.5)

    def test_store_exported_on_facades(self):
        import repro
        import repro.api

        assert repro.Store is Store
        assert repro.api.Store is Store
        assert repro.api.StoreOptions is StoreOptions

    def test_nonexistent_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Store(tmp_path / "missing.rps")


class TestParallelPacking:
    """Wave-parallel packing must be byte-identical for every worker count."""

    def _pack(self, fitted, field, path, **opts):
        return pack(
            path, field, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK, **opts)
        )

    def test_bytes_identical_across_worker_counts(self, fitted, field, tmp_path):
        blobs = {}
        for workers in (0, 1, 2, 4):
            out = tmp_path / f"w{workers}.rps"
            report = self._pack(fitted, field, out, workers=workers, wave_size=8)
            blobs[workers] = out.read_bytes()
            assert report.workers == workers
            assert report.wave_size == 8
        assert blobs[1] == blobs[0]
        assert blobs[2] == blobs[0]
        assert blobs[4] == blobs[0]

    def test_wave_size_one_reproduces_serial_pack(self, fitted, field, packed, tmp_path):
        """wave_size=1 is the old chunk-at-a-time loop bit-for-bit, even
        with workers enabled (the default `packed` fixture is serial)."""
        path, _ = packed
        out = tmp_path / "wave1.rps"
        self._pack(fitted, field, out, workers=2, wave_size=1)
        assert out.read_bytes() == path.read_bytes()

    def test_wave_report_accounting(self, fitted, field, tmp_path):
        report = self._pack(fitted, field, tmp_path / "r.rps", workers=2, wave_size=8)
        assert report.n_waves == -(-report.n_chunks // 8)
        assert "waves" in report.summary()
        # the pool actually saw work (completed includes in-process fallbacks)
        assert report.pool_stats["submitted"] > 0
        assert report.pool_stats["completed"] == report.pool_stats["submitted"]

    def test_serial_pack_reports_no_pool(self, packed):
        _, report = packed
        assert report.workers == 0
        assert report.wave_size == 1
        assert report.n_waves == report.n_chunks
        assert report.pool_stats == {}

    def test_retarget_boundaries_follow_wave_size(self, fitted, field, tmp_path):
        """Within one wave every chunk shares one target; targets may only
        change at wave boundaries."""
        report = self._pack(fitted, field, tmp_path / "wt.rps", wave_size=4)
        targets = [c.target_ratio for c in report.chunks]
        for start in range(0, len(targets), 4):
            assert len(set(targets[start : start + 4])) == 1
        assert len(set(targets)) > 1  # the closed loop still re-targets

    def test_resolved_wave_size_defaults(self):
        from repro.store.writer import DEFAULT_WAVE_SIZE

        assert StoreOptions().resolved_wave_size == 1
        assert StoreOptions(workers=2).resolved_wave_size == DEFAULT_WAVE_SIZE
        assert StoreOptions(workers=2, wave_size=3).resolved_wave_size == 3
        assert StoreOptions(wave_size=5).resolved_wave_size == 5

    def test_parallel_options_validation(self):
        with pytest.raises(ValueError, match="workers"):
            StoreOptions(workers=-1)
        with pytest.raises(ValueError, match="wave_size"):
            StoreOptions(wave_size=0)

    def test_wave_metrics_emitted(self, fitted, field, tmp_path):
        obs.enable()  # clears the metrics registry
        try:
            report = self._pack(fitted, field, tmp_path / "m.rps", workers=2, wave_size=8)
            reg = obs.registry()
            assert reg.counter("store.pack.waves").value == report.n_waves
            util = reg.gauge("store.pack.worker_utilization").value
            assert 0.0 <= util <= 1.0
        finally:
            obs.disable()


class TestBudgetExhaustion:
    def test_impossibly_tight_budget_never_divides_by_zero(
        self, fitted, field, tmp_path
    ):
        """A budget smaller than any achievable pack must clamp the wave
        target to max_chunk_ratio and finish — never raise ZeroDivisionError
        or ask for a target below 1."""
        opts = StoreOptions(chunk_shape=CHUNK, wave_size=4)
        report = pack(tmp_path / "tight.rps", field, fitted, 9000.0, options=opts)
        assert report.n_chunks > 0
        for rec in report.chunks:
            assert np.isfinite(rec.target_ratio)
            assert 1.0 < rec.target_ratio <= opts.max_chunk_ratio
        # budget is blown (the model can't reach ratio 9000) but the file
        # is complete and readable
        assert report.achieved_ratio < 9000.0
        with Store(tmp_path / "tight.rps") as st:
            assert st.read().shape == field.data.shape

    def test_wave_target_clamps_at_exhaustion(self, fitted):
        writer = StoreWriter("unused.rps", fitted)
        opts = writer.options
        # budget fully spent: the remaining budget floors at 1 byte, so the
        # division is safe and asks for raw_remaining : 1
        assert (
            writer._wave_target(TARGET, budget=100.0, spent=100, raw_remaining=4096)
            == 4096.0
        )
        # spent *past* the budget: same floor, still finite
        assert (
            writer._wave_target(TARGET, budget=100.0, spent=10_000, raw_remaining=4096)
            == 4096.0
        )
        # exhausted budget with lots of raw data left: clamped to the ceiling
        assert (
            writer._wave_target(TARGET, budget=100.0, spent=100, raw_remaining=10**6)
            == opts.max_chunk_ratio
        )
        # no raw bytes left: ceiling, not 0/x
        assert (
            writer._wave_target(TARGET, budget=100.0, spent=10, raw_remaining=0)
            == opts.max_chunk_ratio
        )
        # healthy state: plain redistribution, inside the clamp window
        t = writer._wave_target(TARGET, budget=1000.0, spent=100, raw_remaining=7200)
        assert t == pytest.approx(7200 / 900)


class TestAtomicityOfRawWrites:
    def test_failed_save_leaves_target_untouched(self, tmp_path):
        class Exploding:
            nbytes = 8

            def tofile(self, fh):
                raise OSError("disk full")

        target = tmp_path / "field.f32"
        target.write_bytes(b"GOOD")
        with pytest.raises(OSError, match="disk full"):
            save_raw(Field("d", "v", Exploding()), target)
        assert target.read_bytes() == b"GOOD"
        assert list(tmp_path.glob("*.tmp")) == []
