"""Property-based tests (hypothesis) for the encoding substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec, huffman_code_lengths
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.encoding.rle import zero_rle_decode, zero_rle_encode

_SETTINGS = dict(max_examples=60, deadline=None)


class TestBitstreamProperties:
    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1), st.integers(1, 48)), max_size=40))
    @settings(**_SETTINGS)
    def test_any_sequence_round_trips(self, items):
        w = BitWriter()
        for value, width in items:
            w.write_bits(value & ((1 << width) - 1), width)
        r = BitReader(w.getvalue())
        for value, width in items:
            assert r.read_bits(width) == value & ((1 << width) - 1)

    @given(st.integers(1, 10**9))
    @settings(**_SETTINGS)
    def test_elias_gamma_total(self, value):
        w = BitWriter()
        w.write_elias_gamma(value)
        assert BitReader(w.getvalue()).read_elias_gamma() == value
        # gamma code length = 2*floor(log2 v) + 1
        assert w.bit_length == 2 * (value.bit_length() - 1) + 1

    @given(st.lists(st.booleans(), max_size=200))
    @settings(**_SETTINGS)
    def test_bit_array_round_trip(self, bits):
        w = BitWriter()
        w.write_bit_array(np.array(bits, dtype=bool))
        r = BitReader(w.getvalue())
        assert list(r.read_bit_array(len(bits))) == bits


class TestHuffmanProperties:
    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=500),
    )
    @settings(**_SETTINGS)
    def test_round_trip_any_stream(self, symbols):
        syms = np.array(symbols, dtype=np.int64)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        out = codec.decode(BitReader(w.getvalue()), syms.size)
        np.testing.assert_array_equal(out, syms)

    @given(st.lists(st.integers(0, 5000), min_size=2, max_size=64))
    @settings(**_SETTINGS)
    def test_kraft_holds_for_any_frequencies(self, freqs):
        lengths = huffman_code_lengths(np.array(freqs, dtype=np.int64))
        used = lengths[lengths > 0]
        if used.size:
            assert (2.0 ** (-used.astype(float))).sum() <= 1.0 + 1e-12


class TestLZ77Properties:
    @given(st.binary(max_size=3000))
    @settings(**_SETTINGS)
    def test_round_trip_any_bytes(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    @given(st.binary(min_size=1, max_size=200), st.integers(2, 30))
    @settings(**_SETTINGS)
    def test_repeated_content_compresses(self, chunk, reps):
        data = chunk * reps
        blob = lz77_compress(data)
        if len(data) > 200:
            assert len(blob) < len(data)
        assert lz77_decompress(blob) == data


class TestRLEProperties:
    @given(st.lists(st.integers(-100, 100), max_size=500))
    @settings(**_SETTINGS)
    def test_round_trip_any_stream(self, stream):
        s = np.array(stream, dtype=np.int64)
        v, r = zero_rle_encode(s)
        np.testing.assert_array_equal(zero_rle_decode(v, r), s)
