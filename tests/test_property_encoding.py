"""Property-based tests (hypothesis + seeded fuzz) for the encoding substrate.

The ``TestVectorizedMatchesReference`` class is the byte-identity fuzz
harness for the vectorized kernels: every stream shape that has bitten a
codec before (random, empty, all-equal, incompressible, long-code-heavy)
runs through both the production kernel and its frozen scalar oracle in
:mod:`repro.encoding.reference`, and the encoded bytes and decoded symbols
must match exactly. Randomness comes from the shared ``property_rng``
fixture, so failures reproduce with ``REPRO_TEST_SEED=<seed>``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import reference
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import _TABLE_BITS, HuffmanCodec, huffman_code_lengths
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.encoding.range_coder import RangeDecoder, RangeEncoder
from repro.encoding.rle import (
    rle_bytes_decode,
    rle_bytes_encode,
    zero_rle_decode,
    zero_rle_encode,
)

_SETTINGS = dict(max_examples=60, deadline=None)


class TestBitstreamProperties:
    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1), st.integers(1, 48)), max_size=40))
    @settings(**_SETTINGS)
    def test_any_sequence_round_trips(self, items):
        w = BitWriter()
        for value, width in items:
            w.write_bits(value & ((1 << width) - 1), width)
        r = BitReader(w.getvalue())
        for value, width in items:
            assert r.read_bits(width) == value & ((1 << width) - 1)

    @given(st.integers(1, 10**9))
    @settings(**_SETTINGS)
    def test_elias_gamma_total(self, value):
        w = BitWriter()
        w.write_elias_gamma(value)
        assert BitReader(w.getvalue()).read_elias_gamma() == value
        # gamma code length = 2*floor(log2 v) + 1
        assert w.bit_length == 2 * (value.bit_length() - 1) + 1

    @given(st.lists(st.booleans(), max_size=200))
    @settings(**_SETTINGS)
    def test_bit_array_round_trip(self, bits):
        w = BitWriter()
        w.write_bit_array(np.array(bits, dtype=bool))
        r = BitReader(w.getvalue())
        assert list(r.read_bit_array(len(bits))) == bits


class TestHuffmanProperties:
    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=500),
    )
    @settings(**_SETTINGS)
    def test_round_trip_any_stream(self, symbols):
        syms = np.array(symbols, dtype=np.int64)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        out = codec.decode(BitReader(w.getvalue()), syms.size)
        np.testing.assert_array_equal(out, syms)

    @given(st.lists(st.integers(0, 5000), min_size=2, max_size=64))
    @settings(**_SETTINGS)
    def test_kraft_holds_for_any_frequencies(self, freqs):
        lengths = huffman_code_lengths(np.array(freqs, dtype=np.int64))
        used = lengths[lengths > 0]
        if used.size:
            assert (2.0 ** (-used.astype(float))).sum() <= 1.0 + 1e-12


class TestLZ77Properties:
    @given(st.binary(max_size=3000))
    @settings(**_SETTINGS)
    def test_round_trip_any_bytes(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    @given(st.binary(min_size=1, max_size=200), st.integers(2, 30))
    @settings(**_SETTINGS)
    def test_repeated_content_compresses(self, chunk, reps):
        data = chunk * reps
        blob = lz77_compress(data)
        if len(data) > 200:
            assert len(blob) < len(data)
        assert lz77_decompress(blob) == data


class TestRLEProperties:
    @given(st.lists(st.integers(-100, 100), max_size=500))
    @settings(**_SETTINGS)
    def test_round_trip_any_stream(self, stream):
        s = np.array(stream, dtype=np.int64)
        v, r = zero_rle_encode(s)
        np.testing.assert_array_equal(zero_rle_decode(v, r), s)


def _fuzz_streams(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Symbol streams covering every regime the kernels special-case."""
    center = 256
    skewed = center + np.clip(
        np.rint(rng.standard_normal(4000) * 3), -center, center
    ).astype(np.int64)
    return {
        "random": rng.integers(0, 40, size=3000).astype(np.int64),
        "empty": np.zeros(0, dtype=np.int64),
        "all_equal": np.full(500, 7, dtype=np.int64),
        "incompressible": rng.permutation(4096).astype(np.int64),
        "skewed": skewed,  # SZ3-like: one dominant symbol, geometric tails
        "tiny": rng.integers(0, 5, size=3).astype(np.int64),  # below table path
    }


class TestVectorizedMatchesReference:
    """Fuzz every codec against its frozen scalar oracle, byte for byte."""

    def test_huffman_streams_and_decodes_match(self, property_rng):
        for name, syms in _fuzz_streams(property_rng).items():
            codec = HuffmanCodec.fit(syms)
            w_new, w_ref = BitWriter(), BitWriter()
            codec.encode(syms, w_new)
            reference.huffman_encode_reference(codec, syms, w_ref)
            assert w_new.getvalue() == w_ref.getvalue(), name
            got = codec.decode(BitReader(w_new.getvalue()), syms.size)
            ref = reference.huffman_decode_reference(
                codec, BitReader(w_new.getvalue()), syms.size
            )
            np.testing.assert_array_equal(got, syms, err_msg=name)
            np.testing.assert_array_equal(ref, syms, err_msg=name)

    def test_huffman_long_codes_past_table_window(self, property_rng):
        # A Kraft-complete length set reaching past the decode-table window
        # forces the canonical long-code path on a bulk (table-path) stream.
        max_len = _TABLE_BITS + 4
        lengths = np.array(
            list(range(1, max_len)) + [max_len, max_len], dtype=np.int64
        )
        assert (2.0 ** -lengths.astype(float)).sum() == 1.0  # complete code
        codec = HuffmanCodec.from_lengths(lengths)
        # Bias the stream toward the deep symbols so long codes are common.
        weights = np.sqrt(np.arange(1, lengths.size + 1, dtype=np.float64))
        syms = property_rng.choice(
            lengths.size, size=2000, p=weights / weights.sum()
        ).astype(np.int64)
        w = BitWriter()
        codec.encode(syms, w)
        payload = w.getvalue()
        w_ref = BitWriter()
        reference.huffman_encode_reference(codec, syms, w_ref)
        assert payload == w_ref.getvalue()
        got = codec.decode(BitReader(payload), syms.size)
        ref = reference.huffman_decode_reference(codec, BitReader(payload), syms.size)
        np.testing.assert_array_equal(got, syms)
        np.testing.assert_array_equal(ref, syms)

    def test_lz77_streams_match(self, property_rng):
        streams = _fuzz_streams(property_rng)
        cases = {
            "random_bytes": property_rng.integers(
                0, 256, size=5000, dtype=np.uint8
            ).tobytes(),
            "empty": b"",
            "all_equal": b"\x07" * 4000,
            "repetitive": bytes(streams["random"] % 7) * 5,
            "skewed": streams["skewed"].astype(np.uint16).tobytes(),
        }
        for name, data in cases.items():
            blob = lz77_compress(data)
            assert blob == reference.lz77_compress_reference(data), name
            assert lz77_decompress(blob) == data, name

    def test_range_coder_streams_match(self, property_rng):
        for name, syms in _fuzz_streams(property_rng).items():
            freq = np.bincount(syms, minlength=max(int(syms.max(initial=0)) + 1, 2))
            if syms.size == 0:
                freq = np.ones(4, dtype=np.int64)
            payload = RangeEncoder(freq).encode(syms)
            ref_payload = reference.range_encode_reference(RangeEncoder(freq), syms)
            assert payload == ref_payload, name
            got = RangeDecoder(freq, payload).decode(syms.size)
            ref = reference.range_decode_reference(
                RangeDecoder(freq, payload), syms.size
            )
            np.testing.assert_array_equal(got, syms, err_msg=name)
            np.testing.assert_array_equal(ref, syms, err_msg=name)

    def test_rle_streams_match(self, property_rng):
        for name, syms in _fuzz_streams(property_rng).items():
            zero = int(np.bincount(syms).argmax()) if syms.size else 0
            blob = rle_bytes_encode(syms, zero_symbol=zero)
            ref_blob = reference.rle_bytes_encode_reference(syms, zero_symbol=zero)
            assert blob == ref_blob, name
            got = rle_bytes_decode(blob, zero_symbol=zero)
            ref = reference.rle_bytes_decode_reference(blob, zero_symbol=zero)
            np.testing.assert_array_equal(got, syms, err_msg=name)
            np.testing.assert_array_equal(ref, syms, err_msg=name)

    def test_sz3_lossless_composition_matches(self, property_rng):
        # The composed Huffman + LZ77 stage, exactly as codec-bench gates it.
        syms = _fuzz_streams(property_rng)["skewed"]
        codec = HuffmanCodec.fit(syms)
        w_new, w_ref = BitWriter(), BitWriter()
        codec.encode(syms, w_new)
        reference.huffman_encode_reference(codec, syms, w_ref)
        new_blob = lz77_compress(w_new.getvalue())
        ref_blob = reference.lz77_compress_reference(w_ref.getvalue())
        assert new_blob == ref_blob
        out = codec.decode(BitReader(lz77_decompress(new_blob)), syms.size)
        np.testing.assert_array_equal(out, syms)

    def test_bitstream_bulk_matches_scalar(self, property_rng):
        # Bulk uint-array writes must lay down exactly the bits the scalar
        # write_bits path lays down, at every misalignment.
        widths = property_rng.integers(1, 49, size=30)
        values = [
            property_rng.integers(0, 1 << int(w), size=17, dtype=np.uint64)
            for w in widths
        ]
        w_bulk, w_scalar = BitWriter(), BitWriter()
        w_bulk.write_bits(1, 3)  # misalign both streams identically
        w_scalar.write_bits(1, 3)
        for w, vals in zip(widths, values):
            w_bulk.write_uint_array(vals, int(w))
            for v in vals.tolist():
                w_scalar.write_bits(int(v), int(w))
        assert w_bulk.getvalue() == w_scalar.getvalue()
        r = BitReader(w_bulk.getvalue())
        assert r.read_bits(3) == 1
        for w, vals in zip(widths, values):
            np.testing.assert_array_equal(r.read_uint_array(17, int(w)), vals)

    def test_invalid_stream_still_raises(self, property_rng):
        # Truncated payloads must fail loudly on the table path, like the
        # reference walk does — never return garbage.
        syms = property_rng.integers(0, 30, size=500).astype(np.int64)
        codec = HuffmanCodec.fit(syms)
        w = BitWriter()
        codec.encode(syms, w)
        payload = w.getvalue()
        truncated = payload[: max(1, len(payload) // 4)]
        with pytest.raises((EOFError, ValueError)):
            codec.decode(BitReader(truncated), syms.size)
        with pytest.raises((EOFError, ValueError)):
            reference.huffman_decode_reference(
                codec, BitReader(truncated), syms.size
            )
