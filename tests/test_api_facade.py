"""The repro.api facade and the redesigned framework surface."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    BatchPrediction,
    Carol,
    Catalog,
    CatalogOptions,
    FrameworkOptions,
    Fxrz,
    Gateway,
    GatewayOptions,
    ModelRegistry,
    Service,
    ServiceOptions,
    StoreOptions,
    load,
    save,
)

SHAPE = (10, 14, 14)
REL = np.geomspace(1e-3, 1e-1, 5)


@pytest.fixture(scope="module")
def train_fields():
    from repro import load_dataset

    return load_dataset("miranda", shape=SHAPE)[:3]


@pytest.fixture(scope="module")
def fitted(train_fields):
    fw = Carol(compressor="szx", rel_error_bounds=REL, n_iter=3, cv=2)
    fw.fit(train_fields)
    return fw


class TestFacadeImports:
    def test_top_level_reexports(self):
        import repro

        assert repro.Carol is Carol
        assert repro.Fxrz is Fxrz
        assert repro.FrameworkOptions is FrameworkOptions
        assert repro.load is load
        assert repro.save is save

    def test_serving_reexports(self):
        import repro
        from repro.serve import ModelRegistry as deep_reg
        from repro.serve import PredictionService, ServiceOptions as deep_opts

        assert repro.Service is Service is PredictionService
        assert repro.ServiceOptions is ServiceOptions is deep_opts
        assert repro.ModelRegistry is ModelRegistry is deep_reg

    def test_facade_is_the_framework(self):
        from repro.core.carol import CarolFramework
        from repro.core.fxrz import FxrzFramework

        assert Carol is CarolFramework
        assert Fxrz is FxrzFramework

    def test_catalog_reexports(self):
        import repro
        from repro.store import CatalogOptions as deep_opts
        from repro.store import StoreCatalog

        assert repro.Catalog is Catalog is StoreCatalog
        assert repro.CatalogOptions is CatalogOptions is deep_opts

    def test_gateway_reexports(self):
        import repro
        from repro.load import Gateway as deep_gw
        from repro.load import GatewayOptions as deep_opts

        assert repro.Gateway is Gateway is deep_gw
        assert repro.GatewayOptions is GatewayOptions is deep_opts

    def test_all_lists_every_entry_point_once(self):
        import importlib

        import repro
        import repro.api
        import repro.serve
        import repro.store

        # the facade function ``repro.load`` shadows the subpackage as an
        # attribute, so fetch the module itself through the import system
        load_pkg = importlib.import_module("repro.load")
        for mod in (repro, repro.api, load_pkg, repro.serve, repro.store):
            assert len(mod.__all__) == len(set(mod.__all__)), mod.__name__
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
        # the documented facade pairs are all on repro.api
        for name in ("Catalog", "CatalogOptions", "Store", "StoreOptions",
                     "Service", "ServiceOptions", "Carol", "FrameworkOptions",
                     "Gateway", "GatewayOptions"):
            assert name in repro.api.__all__

    def test_options_are_keyword_only(self):
        for cls, arg in (
            (FrameworkOptions, "szx"),
            (ServiceOptions, 8),
            (StoreOptions, (8, 8, 8)),
            (CatalogOptions, 1024),
            (GatewayOptions, 8),
        ):
            with pytest.raises(TypeError):
                cls(arg)

    def test_options_to_kwargs_symmetry(self):
        for opts in (
            ServiceOptions(workers=2),
            StoreOptions(chunk_shape=(4, 4, 4), safety=0.5),
            CatalogOptions(cache_bytes=123),
            GatewayOptions(max_batch=4, max_wait_ms=1.5),
        ):
            assert type(opts)(**opts.to_kwargs()) == opts

    def test_store_options_from_manifest(self):
        opts = StoreOptions(chunk_shape=(4, 8, 8), closed_loop=False, safety=0.25)
        manifest = {"chunk_shape": [4, 8, 8], "closed_loop": False, "safety": 0.25}
        assert StoreOptions.from_manifest(manifest) == opts

    def test_deprecated_paths_still_work(self):
        # the pre-facade import surface must keep working verbatim
        from repro import CarolFramework, FxrzFramework
        from repro.core import CarolFramework as deep_carol
        from repro.utils.serialization import load_framework, save_framework

        assert CarolFramework is Carol and FxrzFramework is Fxrz
        assert deep_carol is Carol
        assert callable(load_framework) and callable(save_framework)


class TestKeywordOnly:
    def test_positional_config_rejected(self):
        with pytest.raises(TypeError):
            Carol("sz3", REL)
        with pytest.raises(TypeError):
            Fxrz("sz3", 4)

    def test_compressor_may_be_positional(self):
        assert Carol("szx").compressor_name == "szx"
        assert Fxrz("szx", feature_stride=2).feature_stride == 2


class TestFrameworkOptions:
    def test_frozen(self):
        opts = FrameworkOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.compressor = "zfp"

    def test_hashable_and_comparable(self):
        a = FrameworkOptions(compressor="szx", rel_error_bounds=(1e-3, 1e-2))
        b = FrameworkOptions(compressor="szx", rel_error_bounds=[1e-3, 1e-2])
        assert a == b
        assert hash(a) == hash(b)

    def test_build_carol_and_fxrz(self):
        opts = FrameworkOptions(compressor="szx", rel_error_bounds=tuple(REL),
                                n_iter=3, cv=2, seed=7)
        carol = opts.build("carol")
        fxrz = opts.build("fxrz")
        assert type(carol) is Carol and type(fxrz) is Fxrz
        assert carol.compressor_name == "szx"
        assert carol.n_iter == 3 and carol.seed == 7
        np.testing.assert_allclose(carol.rel_error_bounds, REL)

    def test_build_unknown_kind(self):
        with pytest.raises(ValueError, match="framework"):
            FrameworkOptions().build("sz_deluxe")

    def test_default_grid_passthrough(self):
        assert FrameworkOptions().build("carol").rel_error_bounds is None

    def test_to_kwargs_excludes_compressor_by_default(self):
        opts = FrameworkOptions(compressor="zfp", n_iter=9)
        kwargs = opts.to_kwargs()
        assert "compressor" not in kwargs
        assert kwargs["n_iter"] == 9
        # the documented use: positional compressor + keyword config
        fw = Carol(opts.compressor, **kwargs)
        assert fw.compressor_name == "zfp" and fw.n_iter == 9

    def test_to_kwargs_include_compressor(self):
        kwargs = FrameworkOptions(compressor="zfp").to_kwargs(include_compressor=True)
        assert kwargs["compressor"] == "zfp"
        assert Carol(**kwargs).compressor_name == "zfp"

    def test_from_framework_round_trip(self):
        opts = FrameworkOptions(
            compressor="szx",
            rel_error_bounds=tuple(REL),
            n_iter=3,
            cv=2,
            seed=7,
            calibration_points=4,
            model_kind="gbt",
        )
        for kind in ("carol", "fxrz"):
            assert FrameworkOptions.from_framework(opts.build(kind)) == opts

    def test_from_framework_default_grid(self):
        fw = Fxrz(compressor="szx")
        recovered = FrameworkOptions.from_framework(fw)
        assert recovered.rel_error_bounds is None
        assert recovered.build("fxrz").compressor_name == "szx"


class TestSaveLoad:
    def test_roundtrip_via_facade(self, fitted, tmp_path, train_fields):
        path = save(tmp_path / "model.npz", fitted)
        loaded = load(path)
        assert type(loaded) is Carol
        data = train_fields[0].data
        eb_orig = fitted.predict_error_bound(data, 5.0).error_bound
        eb_loaded = loaded.predict_error_bound(data, 5.0).error_bound
        assert eb_loaded == pytest.approx(eb_orig)


class TestUnifiedRefine:
    def test_fxrz_refine_merges_on_base_class(self, train_fields):
        fw = Fxrz(compressor="szx", rel_error_bounds=REL, n_iter=2, cv=2)
        fw.fit(train_fields[:2])
        rows_before = fw.training_data.n_rows
        rep = fw.refine(train_fields[2:3])
        assert fw.training_data.n_rows == rows_before + REL.size
        assert rep.n_rows == fw.training_data.n_rows
        assert fw.model.info.method == "grid"  # re-searched, not warm-started

    def test_refine_without_fit_falls_back(self, train_fields):
        fw = Fxrz(compressor="szx", rel_error_bounds=REL, n_iter=2, cv=2)
        rep = fw.refine(train_fields[:2])
        assert rep.n_rows == 2 * REL.size


class TestInferenceSurface:
    def test_evaluate_targets_accepts_safety(self, fitted, train_fields):
        data = train_fields[0].data
        plain = fitted.evaluate_targets(data, [4.0, 8.0])
        safe = fitted.evaluate_targets(data, [4.0, 8.0], safety=1.5)
        # positive safety biases toward larger error bounds, matching
        # predict_error_bound's convention
        assert (safe.predicted_ebs >= plain.predicted_ebs).all()
        eb_direct = fitted.predict_error_bound(data, 4.0, safety=1.5).error_bound
        assert safe.predicted_ebs[0] == pytest.approx(eb_direct)

    def test_feature_seconds_on_report_not_first_prediction(self, fitted, train_fields):
        rep = fitted.evaluate_targets(train_fields[0].data, [4.0, 8.0, 12.0])
        assert rep.feature_seconds > 0
        assert all(p.feature_seconds == 0.0 for p in rep.predictions)
        assert rep.inference_seconds == pytest.approx(
            rep.feature_seconds + sum(p.inference_seconds for p in rep.predictions)
        )

    def test_predict_error_bound_batch_surface(self, fitted, train_fields):
        data = train_fields[0].data
        batch = fitted.predict_error_bound_batch(data, [4.0, 8.0, 16.0])
        assert isinstance(batch, BatchPrediction)
        assert len(batch) == 3
        assert [p.target_ratio for p in batch] == [4.0, 8.0, 16.0]
        assert batch.error_bounds.shape == (3,)
        assert batch.feature_seconds > 0

    def test_batch_matches_sequential_bitwise(self, fitted, train_fields):
        data = train_fields[0].data
        ratios = [3.0, 7.0, 11.0, 29.0]
        for safety in (0.0, 1.5):
            batch = fitted.predict_error_bound_batch(data, ratios, safety=safety)
            sequential = [
                fitted.predict_error_bound(data, r, safety=safety).error_bound
                for r in ratios
            ]
            assert batch.error_bounds.tolist() == sequential

    def test_precomputed_features_skip_extraction(self, fitted, train_fields):
        data = train_fields[0].data
        feats = fitted.extract_features(data)
        pred = fitted.predict_error_bound(data, 5.0, features=feats)
        assert pred.feature_seconds == 0.0
        assert pred.error_bound == fitted.predict_error_bound(data, 5.0).error_bound

    def test_extract_features_many_matches_single(self, fitted, train_fields):
        datas = [f.data for f in train_fields]
        many = fitted.extract_features_many(datas)
        for row, data in zip(many, datas):
            np.testing.assert_array_equal(row, fitted.extract_features(data))

    def test_batch_invalid_ratios_rejected(self, fitted, train_fields):
        with pytest.raises(ValueError):
            fitted.predict_error_bound_batch(train_fields[0].data, [4.0, -1.0])
