"""Raw binary (SDRBench-format) field I/O."""

import numpy as np
import pytest

from repro.data.fields import Field
from repro.data.io import load_raw, load_raw_dataset, save_raw


@pytest.fixture()
def field(rng):
    return Field("testset", "temp", rng.standard_normal((6, 8, 10)).astype(np.float32))


class TestRoundTrip:
    def test_save_load(self, field, tmp_path):
        path = save_raw(field, tmp_path / "testset" / "temp_6x8x10.f32")
        loaded = load_raw(path, (6, 8, 10))
        np.testing.assert_array_equal(loaded.data, field.data)
        assert loaded.dataset == "testset"
        assert loaded.name == "temp_6x8x10"

    def test_explicit_names(self, field, tmp_path):
        path = save_raw(field, tmp_path / "x.f32")
        loaded = load_raw(path, (6, 8, 10), dataset="miranda", name="temp")
        assert loaded.path == "miranda/temp"

    def test_float64_dtype(self, rng, tmp_path):
        f = Field("d", "v", rng.standard_normal((4, 4)).astype(np.float64))
        path = save_raw(f, tmp_path / "v.f64")
        loaded = load_raw(path, (4, 4), dtype=np.float64)
        np.testing.assert_array_equal(loaded.data, f.data)


class TestValidation:
    def test_size_mismatch(self, field, tmp_path):
        path = save_raw(field, tmp_path / "t.f32")
        with pytest.raises(ValueError, match="bytes"):
            load_raw(path, (6, 8, 11))

    def test_nonfinite_rejected(self, tmp_path):
        bad = np.array([1.0, np.nan], dtype=np.float32)
        bad.tofile(tmp_path / "bad.f32")
        with pytest.raises(ValueError, match="non-finite"):
            load_raw(tmp_path / "bad.f32", (2,))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_raw_dataset(tmp_path, (4, 4))


class TestNonFiniteMask:
    """SDRBench fill sentinels: opt-in masking instead of hard rejection."""

    @pytest.fixture()
    def sentinel_path(self, tmp_path):
        data = np.array([[1.0, np.nan, 3.0], [np.inf, 5.0, -np.inf]], dtype=np.float32)
        data.tofile(tmp_path / "sentinels.f32")
        return tmp_path / "sentinels.f32"

    def test_mask_mode_replaces_with_finite_mean(self, sentinel_path):
        field = load_raw(sentinel_path, (2, 3), on_nonfinite="mask")
        assert np.isfinite(field.data).all()
        mean = np.float32(np.mean([1.0, 3.0, 5.0]))
        np.testing.assert_allclose(field.data[field.mask], mean, rtol=1e-6)

    def test_mask_records_exact_positions(self, sentinel_path):
        field = load_raw(sentinel_path, (2, 3), on_nonfinite="mask")
        expected = np.array([[False, True, False], [True, False, True]])
        np.testing.assert_array_equal(field.mask, expected)

    def test_finite_values_untouched(self, sentinel_path):
        field = load_raw(sentinel_path, (2, 3), on_nonfinite="mask")
        np.testing.assert_array_equal(
            field.data[~field.mask], np.array([1.0, 3.0, 5.0], dtype=np.float32)
        )

    def test_clean_file_has_no_mask(self, field, tmp_path):
        path = save_raw(field, tmp_path / "clean.f32")
        loaded = load_raw(path, (6, 8, 10), on_nonfinite="mask")
        assert loaded.mask is None
        np.testing.assert_array_equal(loaded.data, field.data)

    def test_default_still_raises(self, sentinel_path):
        with pytest.raises(ValueError, match="non-finite"):
            load_raw(sentinel_path, (2, 3))

    def test_all_nonfinite_raises_even_masked(self, tmp_path):
        np.full(4, np.nan, dtype=np.float32).tofile(tmp_path / "allnan.f32")
        with pytest.raises(ValueError, match="every value"):
            load_raw(tmp_path / "allnan.f32", (4,), on_nonfinite="mask")

    def test_unknown_mode_rejected(self, sentinel_path):
        with pytest.raises(ValueError, match="on_nonfinite"):
            load_raw(sentinel_path, (2, 3), on_nonfinite="zero")

    def test_masked_field_runs_compressors(self, sentinel_path):
        """The masked field is finite, so the compressor path accepts it."""
        from repro import get_compressor

        field = load_raw(sentinel_path, (2, 3), on_nonfinite="mask")
        recon, res = get_compressor("szx").roundtrip(field.data, 0.01)
        assert np.abs(recon - field.data).max() <= 0.01


class TestAtomicSave:
    def test_overwrite_is_atomic_on_failure(self, field, tmp_path):
        target = tmp_path / "field.f32"
        save_raw(field, target)
        good = target.read_bytes()

        class Exploding:
            def tofile(self, fh):
                fh.write(b"partial")  # bytes hit the temp file, never the target
                raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            save_raw(Field("d", "v", Exploding()), target)
        assert target.read_bytes() == good

    def test_failed_first_write_leaves_nothing(self, tmp_path):
        class Exploding:
            def tofile(self, fh):
                raise OSError("disk full")

        target = tmp_path / "new.f32"
        with pytest.raises(OSError):
            save_raw(Field("d", "v", Exploding()), target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no orphaned temp files

    def test_no_temp_files_after_success(self, field, tmp_path):
        save_raw(field, tmp_path / "ok.f32")
        assert [p.name for p in tmp_path.iterdir()] == ["ok.f32"]


class TestDatasetLoad:
    def test_loads_all_matching(self, rng, tmp_path):
        d = tmp_path / "nyx"
        for name in ("density", "temp", "vx"):
            save_raw(
                Field("nyx", name, rng.standard_normal((4, 6)).astype(np.float32)),
                d / f"{name}.f32",
            )
        fields = load_raw_dataset(d, (4, 6))
        assert [f.name for f in fields] == ["density", "temp", "vx"]
        assert all(f.dataset == "nyx" for f in fields)

    def test_pipeline_on_raw_data(self, rng, tmp_path):
        """Raw-loaded fields run the full CAROL pipeline unchanged."""
        from repro import CarolFramework

        d = tmp_path / "sim"
        for i in range(3):
            data = np.cumsum(
                rng.standard_normal((10, 12, 12)), axis=0
            ).astype(np.float32)
            save_raw(Field("sim", f"f{i}", data), d / f"f{i}.f32")
        fields = load_raw_dataset(d, (10, 12, 12))
        fw = CarolFramework(
            compressor="szx", rel_error_bounds=np.geomspace(1e-3, 1e-1, 5),
            n_iter=3, cv=2,
        )
        fw.fit(fields)
        pred = fw.predict_error_bound(fields[0].data, 5.0)
        assert pred.error_bound > 0
