"""Raw binary (SDRBench-format) field I/O."""

import numpy as np
import pytest

from repro.data.fields import Field
from repro.data.io import load_raw, load_raw_dataset, save_raw


@pytest.fixture()
def field(rng):
    return Field("testset", "temp", rng.standard_normal((6, 8, 10)).astype(np.float32))


class TestRoundTrip:
    def test_save_load(self, field, tmp_path):
        path = save_raw(field, tmp_path / "testset" / "temp_6x8x10.f32")
        loaded = load_raw(path, (6, 8, 10))
        np.testing.assert_array_equal(loaded.data, field.data)
        assert loaded.dataset == "testset"
        assert loaded.name == "temp_6x8x10"

    def test_explicit_names(self, field, tmp_path):
        path = save_raw(field, tmp_path / "x.f32")
        loaded = load_raw(path, (6, 8, 10), dataset="miranda", name="temp")
        assert loaded.path == "miranda/temp"

    def test_float64_dtype(self, rng, tmp_path):
        f = Field("d", "v", rng.standard_normal((4, 4)).astype(np.float64))
        path = save_raw(f, tmp_path / "v.f64")
        loaded = load_raw(path, (4, 4), dtype=np.float64)
        np.testing.assert_array_equal(loaded.data, f.data)


class TestValidation:
    def test_size_mismatch(self, field, tmp_path):
        path = save_raw(field, tmp_path / "t.f32")
        with pytest.raises(ValueError, match="bytes"):
            load_raw(path, (6, 8, 11))

    def test_nonfinite_rejected(self, tmp_path):
        bad = np.array([1.0, np.nan], dtype=np.float32)
        bad.tofile(tmp_path / "bad.f32")
        with pytest.raises(ValueError, match="non-finite"):
            load_raw(tmp_path / "bad.f32", (2,))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_raw_dataset(tmp_path, (4, 4))


class TestDatasetLoad:
    def test_loads_all_matching(self, rng, tmp_path):
        d = tmp_path / "nyx"
        for name in ("density", "temp", "vx"):
            save_raw(
                Field("nyx", name, rng.standard_normal((4, 6)).astype(np.float32)),
                d / f"{name}.f32",
            )
        fields = load_raw_dataset(d, (4, 6))
        assert [f.name for f in fields] == ["density", "temp", "vx"]
        assert all(f.dataset == "nyx" for f in fields)

    def test_pipeline_on_raw_data(self, rng, tmp_path):
        """Raw-loaded fields run the full CAROL pipeline unchanged."""
        from repro import CarolFramework

        d = tmp_path / "sim"
        for i in range(3):
            data = np.cumsum(
                rng.standard_normal((10, 12, 12)), axis=0
            ).astype(np.float32)
            save_raw(Field("sim", f"f{i}", data), d / f"f{i}.f32")
        fields = load_raw_dataset(d, (10, 12, 12))
        fw = CarolFramework(
            compressor="szx", rel_error_bounds=np.geomspace(1e-3, 1e-1, 5),
            n_iter=3, cv=2,
        )
        fw.fit(fields)
        pred = fw.predict_error_bound(fields[0].data, 5.0)
        assert pred.error_bound > 0
