"""The traffic layer: gateway semantics, workload models, run table, bench."""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.api import Carol, Service, ServiceOptions
from repro.load import (
    ClosedLoopClients,
    Gateway,
    GatewayClosed,
    GatewayOptions,
    GatewayStats,
    Measurement,
    OpenLoopPoisson,
    Overloaded,
    RunSpec,
    build_run_table,
    drive_closed_loop,
    drive_open_loop,
    execute_run,
    find_saturation,
    run_identity_gate,
)
from repro.load.bench import build_field_pool, load_report, write_report

SHAPE = (8, 12, 12)
REL = np.geomspace(1e-3, 1e-1, 4)


@pytest.fixture(scope="module")
def train_fields():
    from repro import load_dataset

    return load_dataset("miranda", shape=SHAPE)[:3]


@pytest.fixture(scope="module")
def fitted(train_fields):
    fw = Carol(compressor="szx", rel_error_bounds=REL, n_iter=2, cv=2)
    fw.fit(train_fields)
    return fw


def _run(coro):
    return asyncio.run(coro)


class TestGatewayOptions:
    def test_defaults_and_validation(self):
        opts = GatewayOptions()
        assert opts.max_batch >= 1 and opts.max_pending >= 1
        with pytest.raises(ValueError):
            GatewayOptions(max_batch=0)
        with pytest.raises(ValueError):
            GatewayOptions(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            GatewayOptions(max_pending=0)

    def test_frozen_hashable_keyword_only(self):
        opts = GatewayOptions(max_batch=4)
        assert opts == GatewayOptions(max_batch=4)
        assert hash(opts) == hash(GatewayOptions(max_batch=4))
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.max_batch = 8
        with pytest.raises(TypeError):
            GatewayOptions(8)

    def test_to_kwargs_round_trip(self):
        opts = GatewayOptions(max_batch=3, max_wait_ms=1.5, max_pending=7, safety=0.5)
        assert GatewayOptions(**opts.to_kwargs()) == opts

    def test_build_and_from_gateway(self, fitted):
        opts = GatewayOptions(max_batch=5, max_pending=9)
        with Service(fitted) as svc:
            gw = opts.build(svc)
            assert isinstance(gw, Gateway)
            assert GatewayOptions.from_gateway(gw) == opts


class TestCoalescingDeterminism:
    @pytest.mark.parametrize("max_batch,max_wait_ms", [
        (1, 0.0), (3, 0.0), (3, 5.0), (16, 5.0),
    ])
    def test_bitwise_identical_to_direct_predict(
        self, fitted, train_fields, max_batch, max_wait_ms
    ):
        rng = np.random.default_rng(7)
        requests = [
            (int(rng.integers(len(train_fields))), float(rng.choice([4.0, 8.0, 16.0])))
            for _ in range(10)
        ]
        datas = [f.data for f in train_fields]
        with Service(fitted) as svc:
            direct = [
                svc.predict(datas[i], r).error_bound for i, r in requests
            ]

        async def main(svc):
            opts = GatewayOptions(
                max_batch=max_batch, max_wait_ms=max_wait_ms, max_pending=64
            )
            async with opts.build(svc) as gw:
                preds = await asyncio.gather(
                    *(gw.submit(datas[i], r) for i, r in requests)
                )
            return [p.error_bound for p in preds], gw.stats()

        with Service(fitted) as svc:
            answers, stats = _run(main(svc))
        assert answers == direct
        assert stats.completed == len(requests)
        if max_batch > 1:
            # simultaneous submission must actually coalesce
            assert stats.batches < len(requests)
            assert stats.mean_batch_size > 1.0

    def test_single_request_flushes_on_timer(self, fitted, train_fields):
        async def main(svc):
            opts = GatewayOptions(max_batch=16, max_wait_ms=1.0)
            async with opts.build(svc) as gw:
                pred = await gw.submit(train_fields[0].data, 8.0)
            return pred, gw.stats()

        with Service(fitted) as svc:
            pred, stats = _run(main(svc))
        assert pred.error_bound > 0
        assert stats.batches == 1
        assert stats.flushes_timer == 1

    def test_safety_applied_uniformly(self, fitted, train_fields):
        data = train_fields[0].data
        with Service(fitted) as svc:
            direct = svc.predict(data, 8.0, safety=1.5).error_bound

        async def main(svc):
            opts = GatewayOptions(max_batch=2, safety=1.5)
            async with opts.build(svc) as gw:
                return (await gw.submit(data, 8.0)).error_bound

        with Service(fitted) as svc:
            assert _run(main(svc)) == direct


class TestAdmissionControl:
    def test_over_cap_rejected_with_typed_error(self, fitted, train_fields):
        data = train_fields[0].data

        async def main(svc):
            opts = GatewayOptions(max_batch=4, max_wait_ms=50.0, max_pending=4)
            async with opts.build(svc) as gw:
                results = await asyncio.gather(
                    *(gw.submit(data, 8.0) for _ in range(10)),
                    return_exceptions=True,
                )
            return results, gw.stats()

        with Service(fitted) as svc:
            results, stats = _run(main(svc))
        rejected = [r for r in results if isinstance(r, Overloaded)]
        ok = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 6 and len(ok) == 4
        assert stats.accepted == 4 and stats.rejected == 6
        assert stats.submitted == 10
        assert stats.rejection_rate == pytest.approx(0.6)
        err = rejected[0]
        assert err.pending == 4 and err.max_pending == 4
        assert "cap 4" in str(err)

    def test_capacity_frees_as_batches_complete(self, fitted, train_fields):
        data = train_fields[0].data

        async def main(svc):
            opts = GatewayOptions(max_batch=2, max_wait_ms=0.0, max_pending=2)
            async with opts.build(svc) as gw:
                first = await asyncio.gather(
                    *(gw.submit(data, 8.0) for _ in range(2))
                )
                second = await asyncio.gather(
                    *(gw.submit(data, 8.0) for _ in range(2))
                )
            return first + second, gw.stats()

        with Service(fitted) as svc:
            results, stats = _run(main(svc))
        assert len(results) == 4
        assert stats.rejected == 0 and stats.completed == 4


class TestCloseSemantics:
    def test_close_drains_admitted_requests(self, fitted, train_fields):
        data = train_fields[0].data

        async def main(svc):
            # a long linger window: only the close() drain can flush early
            opts = GatewayOptions(max_batch=64, max_wait_ms=10_000.0)
            gw = opts.build(svc)
            async with gw:
                tasks = [
                    asyncio.ensure_future(gw.submit(data, r))
                    for r in (4.0, 8.0, 16.0)
                ]
                await asyncio.sleep(0)  # let them enqueue
            # __aexit__ == close(): every admitted future must have resolved
            assert all(t.done() for t in tasks)
            return [t.result() for t in tasks], gw.stats()

        with Service(fitted) as svc:
            preds, stats = _run(main(svc))
        assert all(p.error_bound > 0 for p in preds)
        assert stats.completed == 3
        assert stats.flushes_drain >= 1

    def test_submit_after_close_raises(self, fitted, train_fields):
        async def main(svc):
            gw = Gateway(svc)
            async with gw:
                await gw.submit(train_fields[0].data, 8.0)
            with pytest.raises(GatewayClosed):
                await gw.submit(train_fields[0].data, 8.0)

        with Service(fitted) as svc:
            _run(main(svc))

    def test_close_idempotent(self, fitted):
        async def main(svc):
            gw = Gateway(svc)
            async with gw:
                pass
            await gw.close()

        with Service(fitted) as svc:
            _run(main(svc))

    def test_service_failure_propagates_to_callers(self, fitted, train_fields):
        async def main(svc):
            async with Gateway(svc, options=GatewayOptions(max_batch=2)) as gw:
                results = await asyncio.gather(
                    gw.submit(train_fields[0].data, 8.0),
                    gw.submit(train_fields[0].data, -3.0),  # invalid ratio
                    return_exceptions=True,
                )
            return results, gw.stats()

        with Service(fitted) as svc:
            results, stats = _run(main(svc))
        # the whole batch fails together: failures belong to the callers
        assert all(isinstance(r, ValueError) for r in results)
        assert stats.failed == 2 and stats.completed == 0


class TestGatewayStats:
    def test_frozen_with_dict_view(self):
        stats = GatewayStats(
            submitted=10, accepted=8, rejected=2, completed=7, failed=1,
            batches=2, flushes_full=1, flushes_timer=1, flushes_drain=0,
            max_queue_depth=5,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.submitted = 0
        assert stats.rejection_rate == pytest.approx(0.2)
        assert stats.mean_batch_size == pytest.approx(4.0)
        d = stats.as_dict()
        assert d["submitted"] == 10
        assert d["rejection_rate"] == pytest.approx(0.2)
        assert d["mean_batch_size"] == pytest.approx(4.0)

    def test_service_stats_typed(self, fitted, train_fields):
        with Service(fitted) as svc:
            svc.predict(train_fields[0].data, 8.0)
            stats = svc.stats()
        assert stats.requests == 1
        assert stats.cache.misses == 1
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.requests = 0
        d = stats.as_dict()
        assert d["requests"] == 1 and d["cache"]["misses"] == 1
        assert set(d) == {"requests", "batches", "cache", "pool"}


class TestWorkloadModels:
    def test_open_loop_schedule_seeded(self):
        wl = OpenLoopPoisson(rate=100.0, n_requests=50, n_fields=3, seed=11)
        a, b = wl.schedule(), wl.schedule()
        assert a == b
        other = OpenLoopPoisson(rate=100.0, n_requests=50, n_fields=3, seed=12)
        assert other.schedule() != a
        assert len(a) == 50
        assert all(0 <= r.field < 3 for r in a)
        assert all(r.target_ratio in wl.ratios for r in a)
        # exponential gaps with mean 1/rate: the sample mean is near 10ms
        assert np.mean([r.gap_s for r in a]) == pytest.approx(0.01, rel=0.5)
        assert wl.name == "open-poisson@100rps"

    def test_closed_loop_schedule_seeded(self):
        wl = ClosedLoopClients(
            n_clients=4, requests_per_client=5, n_fields=2, seed=3
        )
        scripts = wl.schedule()
        assert scripts == wl.schedule()
        assert len(scripts) == 4 and all(len(s) == 5 for s in scripts)
        assert all(r.gap_s == 0.0 for s in scripts for r in s)  # no think time
        assert wl.name == "closed-4clients"

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopPoisson(rate=0.0, n_requests=1, n_fields=1)
        with pytest.raises(ValueError):
            OpenLoopPoisson(rate=1.0, n_requests=0, n_fields=1)
        with pytest.raises(ValueError):
            ClosedLoopClients(n_clients=0, requests_per_client=1, n_fields=1)
        with pytest.raises(ValueError):
            ClosedLoopClients(
                n_clients=1, requests_per_client=1, n_fields=1, think_ms=-1.0
            )

    def test_measurement_properties(self):
        m = Measurement(
            outcomes=["ok", "rejected", "ok"],
            latencies_s=[0.010, 0.030],
            error_bounds=[1.0, None, 2.0],
            wall_s=2.0,
        )
        assert m.completed == 2 and m.rejected == 1
        assert m.throughput_rps == pytest.approx(1.0)
        assert m.rejection_rate == pytest.approx(1 / 3)
        assert m.percentile_ms(50) == pytest.approx(20.0)
        assert Measurement().percentile_ms(99) == 0.0

    def test_drivers_preserve_script_order(self, fitted, train_fields):
        datas = [f.data for f in train_fields]
        open_wl = OpenLoopPoisson(
            rate=500.0, n_requests=8, n_fields=len(datas), seed=5
        )
        closed_wl = ClosedLoopClients(
            n_clients=2, requests_per_client=4, n_fields=len(datas), seed=5
        )
        with Service(fitted) as svc:
            reference_open = [
                svc.predict(datas[r.field], r.target_ratio).error_bound
                for r in open_wl.schedule()
            ]
            reference_closed = [
                svc.predict(datas[r.field], r.target_ratio).error_bound
                for s in closed_wl.schedule()
                for r in s
            ]

        async def main(svc, wl):
            async with Gateway(svc, options=GatewayOptions(max_batch=4)) as gw:
                if isinstance(wl, OpenLoopPoisson):
                    return await drive_open_loop(gw, datas, wl.schedule())
                return await drive_closed_loop(gw, datas, wl.schedule())

        with Service(fitted) as svc:
            m_open = _run(main(svc, open_wl))
        with Service(fitted) as svc:
            m_closed = _run(main(svc, closed_wl))
        assert m_open.error_bounds == reference_open
        assert m_closed.error_bounds == reference_closed
        assert m_open.completed == 8 and m_closed.completed == 8


class TestRunTable:
    def test_enumerates_sweep_with_distinct_seeds(self):
        specs = build_run_table(
            open_rates=(10.0, 20.0), closed_clients=(1, 4),
            n_requests=16, repetitions=3, base_seed=42,
        )
        assert len(specs) == 12
        assert len({s.seed for s in specs}) == 12
        assert {s.topology for s in specs} == {"open", "closed"}
        assert {s.repetition for s in specs} == {0, 1, 2}
        opens = [s for s in specs if s.topology == "open"]
        assert all(s.scenario.startswith("open-poisson@") for s in opens)

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            build_run_table(open_rates=(1.0,), n_requests=4, repetitions=0)

    def test_execute_run_open_and_closed(self, fitted, train_fields):
        datas = [f.data for f in train_fields]
        for spec in (
            RunSpec(scenario="open-poisson@200rps", topology="open",
                    load=200.0, n_requests=8, repetition=0, seed=1),
            RunSpec(scenario="closed-2clients", topology="closed",
                    load=2.0, n_requests=8, repetition=0, seed=2),
        ):
            result = execute_run(
                fitted, spec, datas,
                service_options=ServiceOptions(cache_entries=32),
                gateway_options=GatewayOptions(max_batch=4, max_pending=64),
            )
            row = result.row()
            assert row["scenario"] == spec.scenario
            assert row["completed"] + row["rejected"] == row["requests"]
            assert row["completed"] > 0
            assert row["throughput_rps"] > 0
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
            assert result.gateway.batches == row["batches"]

    def test_unknown_topology_rejected(self, fitted, train_fields):
        spec = RunSpec(scenario="x", topology="sideways", load=1.0,
                       n_requests=2, repetition=0, seed=0)
        with pytest.raises(ValueError, match="topology"):
            execute_run(fitted, spec, [train_fields[0].data])


class TestBench:
    def test_identity_gate_passes_on_real_service(self, fitted, train_fields):
        datas = [f.data for f in train_fields[:2]]
        verdict = run_identity_gate(
            fitted, datas, n_requests=8, seed=0,
            batch_configs=((1, 0.0), (4, 2.0)),
        )
        assert verdict["identical"] is True
        assert set(verdict["configs"]) == {"batch1-wait0ms", "batch4-wait2ms"}
        for cfg in verdict["configs"].values():
            assert cfg["identical"] is True
            assert cfg["batches"] >= 1

    def test_find_saturation_locates_first_unsustained_level(self):
        def row(rate, thru, rej):
            return {"topology": "open", "load": rate,
                    "throughput_rps": thru, "rejection_rate": rej}

        rows = [
            row(10.0, 9.8, 0.0), row(10.0, 9.9, 0.0),   # sustained
            row(20.0, 19.5, 0.005),                     # sustained
            row(40.0, 25.0, 0.2),                       # broken: thru + shed
            row(80.0, 26.0, 0.5),                       # broken
            {"topology": "closed", "load": 4.0,         # ignored
             "throughput_rps": 1.0, "rejection_rate": 0.0},
        ]
        sat = find_saturation(rows)
        assert sat["reached"] is True
        assert sat["saturation_offered_rps"] == 40.0
        assert sat["last_sustained_rps"] == 20.0
        assert sat["peak_rps"] == pytest.approx(26.0)
        assert [lv["sustained"] for lv in sat["levels"]] == [True, True, False, False]

    def test_find_saturation_not_reached(self):
        rows = [{"topology": "open", "load": 5.0,
                 "throughput_rps": 5.0, "rejection_rate": 0.0}]
        sat = find_saturation(rows)
        assert sat["reached"] is False
        assert sat["saturation_offered_rps"] is None
        assert sat["last_sustained_rps"] == 5.0

    def test_field_pool_deterministic(self):
        a = build_field_pool(shape=SHAPE, n_fields=2, seed=3)
        b = build_field_pool(shape=SHAPE, n_fields=2, seed=3)
        assert len(a) == 2
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_write_and_load_report(self, tmp_path):
        report = {"schema": "repro.load-bench/v1", "identical": True}
        out = write_report(report, tmp_path / "BENCH_serve.json")
        assert load_report(out) == report
        assert load_report(tmp_path / "missing.json") is None
        (tmp_path / "bad.json").write_text('{"schema": "other/v1"}')
        assert load_report(tmp_path / "bad.json") is None
