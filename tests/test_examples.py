"""Smoke tests: every example script runs to completion.

Examples are the public face of the API; a broken example is a broken
release. Each is executed in-process with its module namespace isolated.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Keep examples from inheriting test argv.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # every example reports something substantial


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "storage_budget",
        "streaming_hurricane",
        "dnn_activation_budget",
        "inspect_model",
        "compare_compressors",
    } <= names
