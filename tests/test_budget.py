"""Storage-budget planner tests (use case 1)."""

import numpy as np
import pytest

from repro import CarolFramework, load_dataset
from repro.core.budget import StorageBudgetPlanner

SHAPE = (14, 18, 18)
REL = np.geomspace(1e-3, 1e-1, 6)


@pytest.fixture(scope="module")
def framework():
    fw = CarolFramework(compressor="sperr", rel_error_bounds=REL, n_iter=4, cv=2)
    fw.fit(load_dataset("miranda", shape=SHAPE)[:4])
    return fw


@pytest.fixture(scope="module")
def campaign():
    return load_dataset("miranda", shape=SHAPE, seed=777)


class TestPlanning:
    def test_plan_covers_all_fields(self, framework, campaign):
        planner = StorageBudgetPlanner(framework)
        total_raw = sum(f.nbytes for f in campaign)
        plan = planner.plan(campaign, total_raw // 10)
        assert len(plan.plans) == len(campaign)
        assert all(p.error_bound > 0 for p in plan.plans)
        assert plan.planned_bytes <= total_raw

    def test_generous_budget_near_lossless(self, framework, campaign):
        planner = StorageBudgetPlanner(framework)
        plan = planner.plan(campaign, 10 * sum(f.nbytes for f in campaign))
        assert all(p.target_ratio <= 1.5 for p in plan.plans)

    def test_validation(self, framework, campaign):
        planner = StorageBudgetPlanner(framework)
        with pytest.raises(ValueError):
            planner.plan(campaign, 0)
        with pytest.raises(ValueError):
            planner.plan([], 1000)
        with pytest.raises(ValueError):
            StorageBudgetPlanner(framework, headroom=1.0)


class TestExecution:
    def test_plan_and_execute_fits_budget(self, framework, campaign):
        planner = StorageBudgetPlanner(framework, safety=1.0, headroom=0.1)
        total_raw = sum(f.nbytes for f in campaign)
        budget = total_raw // 8
        plan, results = planner.plan_and_execute(campaign, budget)
        assert len(results) == len(campaign)
        # actual usage recorded and within ~1.5x of the budget even when the
        # one corrective round cannot fully converge at this tiny scale
        assert plan.actual_bytes > 0
        assert plan.actual_bytes <= budget * 1.5
        for p in plan.plans:
            assert p.achieved_ratio is not None and p.achieved_ratio > 1

    def test_corrective_round_tightens(self, framework, campaign):
        """If the first pass busts the budget, targets only move up."""
        planner = StorageBudgetPlanner(framework, safety=0.0, headroom=0.0)
        total_raw = sum(f.nbytes for f in campaign)
        plan, _ = planner.plan_and_execute(campaign, total_raw // 12)
        uniform = total_raw / (total_raw // 12)
        assert all(p.target_ratio >= uniform * 0.99 for p in plan.plans)


class TestTransferPlanning:
    def test_meets_deadline(self, framework, campaign):
        from repro.core.budget import StorageBudgetPlanner, plan_transfer

        planner = StorageBudgetPlanner(framework, safety=1.0, headroom=0.1)
        total_raw = sum(f.nbytes for f in campaign)
        bandwidth = total_raw / 60.0  # raw data would take 60 s
        plan, results, seconds = plan_transfer(planner, campaign, bandwidth, deadline_s=8.0)
        assert seconds <= 8.0 * 1.5  # within 50% even at tiny training scale
        assert len(results) == len(campaign)

    def test_validation(self, framework, campaign):
        from repro.core.budget import StorageBudgetPlanner, plan_transfer

        planner = StorageBudgetPlanner(framework)
        with pytest.raises(ValueError):
            plan_transfer(planner, campaign, 0.0, 5.0)
        with pytest.raises(ValueError):
            plan_transfer(planner, campaign, 100.0, -1.0)
