"""Observability subsystem: spans, recorder, metrics, summary, CLI."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    obs.registry().clear()
    yield
    obs.disable()
    obs.registry().clear()


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        with obs.capture() as rec:
            with obs.span("outer", stage="collection"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        assert [r.name for r in rec.roots] == ["outer"]
        assert [c.name for c in rec.roots[0].children] == ["inner.a", "inner.b"]
        assert rec.roots[0].attrs == {"stage": "collection"}

    def test_sibling_roots(self):
        with obs.capture() as rec:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [r.name for r in rec.roots] == ["first", "second"]

    def test_elapsed_covers_children(self):
        with obs.capture() as rec:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(1000))
        outer, inner = rec.roots[0], rec.roots[0].children[0]
        assert outer.elapsed >= inner.elapsed >= 0.0

    def test_set_attaches_attributes_mid_span(self):
        with obs.capture() as rec:
            with obs.span("s") as sp:
                sp.set(bytes_out=42)
        assert rec.roots[0].attrs["bytes_out"] == 42


class TestDisabledMode:
    def test_span_returns_shared_noop(self):
        assert obs.span("a") is obs.span("b") is _NOOP_SPAN

    def test_noop_span_is_inert(self):
        with obs.span("ignored", x=1) as sp:
            assert sp.set(y=2) is sp
        assert sp.elapsed == 0.0
        assert sp.attrs == {}

    def test_nothing_recorded(self):
        with obs.span("ignored"):
            pass
        obs.count("ignored.counter")
        obs.observe("ignored.hist", 1.0)
        obs.set_gauge("ignored.gauge", 1.0)
        assert obs.get_recorder() is None
        assert obs.registry().as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_timed_span_still_times(self):
        with obs.timed_span("always") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0
        assert obs.get_recorder() is None

    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        rec = obs.enable()
        assert obs.enabled() and obs.get_recorder() is rec
        assert obs.disable() is rec
        assert not obs.enabled()


class TestStageClock:
    """Per-tile stage timing aggregates into *one* span per stage — a
    fused loop over thousands of tiles must not emit thousands of spans."""

    def test_one_span_per_stage_with_call_counts(self):
        with obs.capture() as rec:
            clock = obs.StageClock("compressor.stage", codec="t")
            for _ in range(3):
                with clock("predict"):
                    pass
                with clock("encode"):
                    pass
            clock.add("encode", 0.5, calls=2)
            clock.emit(tiles=3)
        assert sorted(r.name for r in rec.roots) == [
            "compressor.stage.encode",
            "compressor.stage.predict",
        ]
        by_name = {r.name: r for r in rec.roots}
        predict = by_name["compressor.stage.predict"]
        assert predict.attrs["calls"] == 3
        assert predict.attrs["codec"] == "t"
        assert predict.attrs["tiles"] == 3
        encode = by_name["compressor.stage.encode"]
        assert encode.attrs["calls"] == 5  # 3 timed blocks + add(calls=2)
        assert encode.elapsed >= 0.5

    def test_emit_resets_the_clock(self):
        with obs.capture() as rec:
            clock = obs.StageClock("x")
            with clock("a"):
                pass
            clock.emit()
            clock.emit()  # nothing accumulated since the first emit
        assert len(rec.roots) == 1

    def test_noop_while_disabled(self):
        clock = obs.StageClock("x")
        with clock("a"):
            pass
        clock.add("b", 1.0)
        assert clock._seconds == {} and clock._calls == {}
        clock.emit()  # must not raise (and has nothing to emit)


class TestJsonRoundTrip:
    def test_export_and_load(self, tmp_path):
        with obs.capture() as rec:
            with obs.span("fit.collection", n_fields=3) as sp:
                with obs.span("collection.field", field="miranda/density"):
                    pass
                sp.set(numpy_attr=np.float64(1.5), arr=np.arange(2))
            obs.count("compressor.calls", 7)
        path = obs.export_trace(tmp_path / "t.json", rec)
        payload = obs.load_trace(path)
        root = payload["spans"][0]
        assert root.name == "fit.collection"
        assert root.attrs["n_fields"] == 3
        assert root.attrs["numpy_attr"] == 1.5
        assert root.attrs["arr"] == [0, 1]
        assert root.children[0].attrs["field"] == "miranda/density"
        assert root.elapsed == pytest.approx(rec.roots[0].elapsed)
        assert payload["metrics"]["counters"]["compressor.calls"] == 7

    def test_export_is_valid_json(self, tmp_path):
        with obs.capture() as rec:
            with obs.span("s"):
                pass
        path = obs.export_trace(tmp_path / "t.json", rec)
        raw = json.loads(path.read_text())
        assert raw["version"] == 1 and len(raw["spans"]) == 1

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ValueError, match="version"):
            obs.load_trace(path)


class TestMetricsRegistry:
    def test_counter_arithmetic(self):
        reg = obs.MetricsRegistry()
        c = reg.counter("calls")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("calls") is c  # get-or-create

    def test_gauge_last_write_wins(self):
        g = obs.MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary_stats(self):
        h = obs.MetricsRegistry().histogram("seconds")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.mean == 3.0
        assert h.min == 1.0 and h.max == 6.0

    def test_empty_histogram_is_zeroed(self):
        h = obs.MetricsRegistry().histogram("empty")
        assert h.count == 0 and h.mean == 0.0 and h.min == 0.0 and h.max == 0.0

    def test_as_dict_and_clear(self):
        reg = obs.MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        reg.histogram("c").observe(3.0)
        d = reg.as_dict()
        assert d["counters"] == {"a": 1}
        assert d["gauges"] == {"b": 2.0}
        assert d["histograms"]["c"]["count"] == 1
        reg.clear()
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_module_helpers_record_when_enabled(self):
        obs.enable()
        obs.count("calls", 2)
        obs.observe("lat", 0.5)
        obs.set_gauge("depth", 7)
        d = obs.registry().as_dict()
        assert d["counters"]["calls"] == 2
        assert d["gauges"]["depth"] == 7.0
        assert d["histograms"]["lat"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_spans_and_counters(self):
        n_threads, per_thread = 8, 50
        rec = obs.enable()
        errors = []

        def work():
            try:
                for i in range(per_thread):
                    with obs.span("worker.span", i=i):
                        obs.count("worker.ops")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.disable()
        assert not errors
        # spans opened on a thread with no enclosing span become roots
        assert len(rec.roots) == n_threads * per_thread
        assert obs.registry().as_dict()["counters"]["worker.ops"] == n_threads * per_thread


class TestSummary:
    def test_aggregate_totals_and_self_time(self):
        with obs.capture() as rec:
            for _ in range(3):
                with obs.span("outer"):
                    with obs.span("inner"):
                        sum(range(200))
        stats = obs.aggregate(rec.roots)
        assert stats["outer"].count == 3
        assert stats["inner"].count == 3
        assert stats["outer"].total_seconds >= stats["inner"].total_seconds
        assert stats["outer"].self_seconds == pytest.approx(
            stats["outer"].total_seconds - stats["inner"].total_seconds, abs=1e-9
        )

    def test_format_summary_lists_stages_and_metrics(self):
        with obs.capture() as rec:
            with obs.span("fit.collection"):
                pass
            obs.count("collection.fields", 4)
        text = obs.format_summary(rec.roots, obs.registry().as_dict())
        assert "fit.collection" in text
        assert "collection.fields" in text
        assert "total(s)" in text

    def test_format_summary_empty_trace(self):
        assert "(no spans recorded)" in obs.format_summary([])


class TestPipelineIntegration:
    """Traces derived from real fits agree with the reports they feed."""

    def test_fit_spans_match_setup_report(self):
        from repro import CarolFramework, load_dataset

        fields = load_dataset("miranda", shape=(8, 12, 12))[:2]
        fw = CarolFramework(compressor="szx",
                            rel_error_bounds=np.geomspace(1e-3, 1e-1, 4),
                            n_iter=3, cv=2)
        with obs.capture() as rec:
            report = fw.fit(fields)
        stats = obs.aggregate(rec.roots)
        # same measurement object feeds both — agreement is exact, well
        # inside the 1% acceptance band
        assert stats["fit.collection"].total_seconds == pytest.approx(
            report.collection_seconds, rel=0.01
        )
        assert stats["fit.training"].total_seconds == pytest.approx(
            report.training_seconds, rel=0.01
        )
        # per-field and per-iteration spans nest under the stage spans
        assert stats["collection.field"].count == 2
        assert stats["training.iteration"].count == fw.model.info.n_evaluations
        it = next(
            s for r in rec.roots for s in _walk(r) if s.name == "training.iteration"
        )
        assert "params" in it.attrs and "score" in it.attrs

    def test_compressor_metrics_recorded(self):
        from repro import get_compressor

        rng = np.random.default_rng(0)
        data = rng.normal(size=(6, 8, 8))
        codec = get_compressor("szx")
        with obs.capture() as rec:
            result = codec.compress(data, 0.1)
            codec.decompress(result)
        counters = obs.registry().as_dict()["counters"]
        assert counters["compressor.compress.calls"] == 1
        assert counters["compressor.compress.bytes_in"] == data.nbytes
        assert counters["compressor.compress.bytes_out"] == len(result.payload)
        assert counters["compressor.decompress.calls"] == 1
        names = {s.name for r in rec.roots for s in _walk(r)}
        assert {"compressor.compress", "compressor.decompress"} <= names


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestCli:
    def test_train_trace_and_summary(self, tmp_path, capsys):
        from repro.cli import main

        model = tmp_path / "m.npz"
        trace = tmp_path / "t.json"
        rc = main([
            "train", "--datasets", "miranda", "--shape", "8", "12", "12",
            "--compressor", "szx", "--out", str(model), "-n", "4", "--iters", "3",
            "--trace", str(trace),
        ])
        assert rc == 0
        assert trace.exists()
        assert not obs.enabled()  # CLI turns observability back off
        capsys.readouterr()

        rc = main(["trace-summary", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        for stage in ("fit.collection", "fit.training", "collection.field",
                      "compressor.compress"):
            assert stage in out

    def test_trace_summary_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace-summary", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err
