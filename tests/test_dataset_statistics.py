"""Dataset statistical character: each synthetic domain must deliver the
compressibility profile its real counterpart is known for (these are the
properties the whole evaluation leans on — see DESIGN.md substitutions)."""

import numpy as np

from repro.compressors import get_compressor
from repro.data import load_dataset, load_field

SHAPE = (16, 20, 20)


class TestCompressibilityProfiles:
    def test_miranda_smooth_fields_compress_harder_than_velocity(self):
        """Diffusivity/viscosity (smooth) vs velocity (turbulent)."""
        codec = get_compressor("sz3")
        diff = load_field("miranda/diffusivity", shape=SHAPE)
        vel = load_field("miranda/velocityx", shape=SHAPE)
        r_diff = codec.compression_ratio(diff.data, diff.relative_error_bound(1e-2))
        r_vel = codec.compression_ratio(vel.data, vel.relative_error_bound(1e-2))
        assert r_diff > r_vel

    def test_nyx_density_dynamic_range(self):
        """Cosmological densities span orders of magnitude (lognormal)."""
        f = load_field("nyx/dark_matter_density", shape=SHAPE)
        data = f.data.astype(np.float64)
        assert data.max() / max(np.median(data), 1e-30) > 20

    def test_cesm_zonal_structure(self):
        """Surface temperature must fall from equator to poles."""
        ts = load_field("cesm/ts", shape=(40, 80))
        data = ts.data.astype(np.float64)
        equator = data[18:22].mean()
        poles = 0.5 * (data[:4].mean() + data[-4:].mean())
        assert equator > poles + 20

    def test_hurricane_wind_peaks_at_eye_wall(self):
        fields = load_dataset("hurricane", shape=SHAPE, timestep=5)
        u = next(f for f in fields if f.name == "u").data
        assert np.abs(u).max() > 3 * np.abs(u).std()

    def test_mrs_sheet_sparsity(self):
        """Current sheets: high values concentrated on thin structures."""
        f = load_field("mrs/magnetic_reconnection", shape=SHAPE)
        data = f.data.astype(np.float64)
        hot = (data > 0.5 * data.max()).mean()
        assert hot < 0.35

    def test_duct_channel_profile(self):
        """Velocity magnitude vanishes at the channel walls."""
        f = load_field("duct/velocity_magnitude", shape=(12, 20, 24))
        data = f.data.astype(np.float64)
        wall = 0.5 * (np.abs(data[0]).mean() + np.abs(data[-1]).mean())
        core = np.abs(data[5:7]).mean()
        assert core > 2 * wall


class TestFeatureSeparation:
    def test_features_separate_datasets(self):
        """The five features must place smooth and turbulent fields apart —
        otherwise the learned frameworks have nothing to generalize from."""
        from repro.features.definitions import feature_vector

        smooth = load_field("cesm/psl", shape=(40, 80))
        rough = load_field("nyx/velocity_x", shape=SHAPE)
        fs = feature_vector(smooth.data)
        fr = feature_vector(rough.data)
        # normalized smoothness (MND / range) differs by an order of magnitude
        ns = fs[2] / max(fs[1], 1e-30)
        nr = fr[2] / max(fr[1], 1e-30)
        assert nr > 5 * ns

    def test_timestep_features_drift_slowly(self):
        """Hurricane features drift but stay in-family across timesteps —
        the regime where incremental refinement (not retraining) is right."""
        from repro.features.definitions import feature_vector

        from repro.data.datasets import hurricane

        f0 = next(f for f in hurricane(shape=SHAPE, timestep=0) if f.name == "p")
        f9 = next(f for f in hurricane(shape=SHAPE, timestep=9) if f.name == "p")
        a, b = feature_vector(f0.data), feature_vector(f9.data)
        rel = np.abs(b - a) / np.maximum(np.abs(a), 1e-30)
        assert rel.max() < 1.0  # drifted...
        assert not np.allclose(a, b)  # ...but measurably
