"""Estimation-error metric and calibration tests."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.calibration import (
    Calibrator,
    correct_overestimation,
    correct_underestimation,
)
from repro.core.metrics import estimation_error, signed_estimation_errors
from repro.data import load_field


class TestMetrics:
    def test_alpha_zero_for_exact(self):
        t = np.array([2.0, 5.0, 10.0])
        assert estimation_error(t, t) == 0.0

    def test_alpha_matches_paper_formula(self):
        true = np.array([10.0, 20.0])
        est = np.array([11.0, 16.0])
        # alpha_i = 100*|est-true|/true = [10, 20] -> mean 15
        assert estimation_error(true, est) == pytest.approx(15.0)

    def test_signed_errors_direction(self):
        s = signed_estimation_errors([10.0], [12.0])
        assert s[0] == pytest.approx(20.0)
        s = signed_estimation_errors([10.0], [8.0])
        assert s[0] == pytest.approx(-20.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            estimation_error([1.0, 2.0], [1.0])

    def test_nonpositive_true_rejected(self):
        with pytest.raises(ValueError):
            estimation_error([0.0], [1.0])


class TestCorrectionFormulas:
    def test_overestimation_shrinks(self):
        out = correct_overestimation(np.array([120.0]), np.array([20.0]))
        assert out[0] == pytest.approx(100.0)

    def test_underestimation_grows(self):
        out = correct_underestimation(np.array([80.0]), np.array([20.0]))
        assert out[0] == pytest.approx(100.0)

    def test_signed_interpolated_correction_is_exact_at_points(self):
        """f_cal = f_secre/(1 + alpha/100) recovers truth exactly where
        alpha is known exactly."""
        true = np.array([10.0, 50.0])
        est = np.array([13.0, 40.0])
        alpha = signed_estimation_errors(true, est)
        cal = est / (1.0 + alpha / 100.0)
        np.testing.assert_allclose(cal, true)


class TestCalibrator:
    @pytest.fixture(scope="class")
    def setup(self):
        field = load_field("miranda/density", shape=(20, 24, 24))
        codec = get_compressor("sperr")
        ebs = np.geomspace(1e-3, 1e-1, 8) * field.value_range
        true = np.array([codec.compression_ratio(field.data, eb) for eb in ebs])
        return field, codec, ebs, true

    def test_point_selection_includes_endpoints(self):
        pts = Calibrator._select_points(10, 4)
        assert pts[0] == 0 and pts[-1] == 9
        assert pts.size == 4

    def test_point_selection_clamps_to_grid(self):
        assert Calibrator._select_points(3, 5).size == 3

    def test_calibration_reduces_error(self, setup):
        field, codec, ebs, true = setup
        # Synthetic surrogate: truth distorted by a smooth one-sided bias.
        est = true * (1.25 + 0.1 * np.sin(np.linspace(0, 3, ebs.size)))
        before = estimation_error(true, est)
        cal, info = Calibrator(n_points=4).calibrate_curve(field.data, ebs, est, codec)
        after = estimation_error(true, cal)
        assert after < before / 2
        assert info.overestimating
        assert info.n_points == 4

    def test_more_points_more_accurate(self, setup):
        field, codec, ebs, true = setup
        est = true * (1.0 + 0.4 * np.linspace(0, 1, ebs.size) ** 2)
        errs = []
        for k in (2, 4, 8):
            cal, _ = Calibrator(n_points=k).calibrate_curve(field.data, ebs, est, codec)
            errs.append(estimation_error(true, cal))
        assert errs[-1] <= errs[0] + 1e-9

    def test_underestimation_detected(self, setup):
        field, codec, ebs, true = setup
        est = true * 0.7
        _, info = Calibrator(n_points=3).calibrate_curve(field.data, ebs, est, codec)
        assert not info.overestimating

    def test_real_surrogate_calibration(self, setup):
        """End to end with the actual SPERR surrogate (the paper's Table 5)."""
        from repro.surrogate import get_surrogate

        field, codec, ebs, true = setup
        est, _ = get_surrogate("sperr").estimate_curve(field.data, ebs)
        before = estimation_error(true, est)
        cal, info = Calibrator(n_points=4).calibrate_curve(field.data, ebs, est, codec)
        after = estimation_error(true, cal)
        assert after < before
        assert after < 10.0
        assert info.compressor_seconds > 0

    def test_validation(self, setup):
        field, codec, ebs, true = setup
        with pytest.raises(ValueError):
            Calibrator(n_points=1)
        with pytest.raises(ValueError):
            Calibrator().calibrate_curve(field.data, ebs[:1], true[:1], codec)
        with pytest.raises(ValueError):
            Calibrator().calibrate_curve(field.data, ebs[::-1], true, codec)
