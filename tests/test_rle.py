"""Unit tests for zero run-length coding."""

import numpy as np
import pytest

from repro.encoding.rle import zero_rle_decode, zero_rle_encode


class TestRoundTrip:
    @pytest.mark.parametrize(
        "stream",
        [
            [],
            [0],
            [0, 0, 0],
            [5],
            [5, 0, 0, 3],
            [0, 0, 7, 0],
            [1, 2, 3],
        ],
    )
    def test_fixed_streams(self, stream):
        s = np.array(stream, dtype=np.int64)
        v, r = zero_rle_encode(s)
        np.testing.assert_array_equal(zero_rle_decode(v, r), s)

    def test_random_sparse(self, rng):
        s = rng.integers(-5, 6, 5000)
        s[rng.random(5000) < 0.85] = 0
        v, r = zero_rle_encode(s)
        np.testing.assert_array_equal(zero_rle_decode(v, r), s)
        # sparse stream -> far fewer tokens than input elements
        assert v.size < 0.4 * s.size

    def test_custom_zero_symbol(self, rng):
        s = rng.integers(0, 4, 200)
        s[rng.random(200) < 0.7] = 2
        v, r = zero_rle_encode(s, zero_symbol=2)
        np.testing.assert_array_equal(zero_rle_decode(v, r, zero_symbol=2), s)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            zero_rle_decode(np.array([1, 2]), np.array([0]))

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError):
            zero_rle_decode(np.array([1, 0]), np.array([-1, 0]))

    def test_empty_pair_decodes_empty(self):
        assert zero_rle_decode(np.zeros(0), np.zeros(0)).size == 0
