"""Unit tests for predictors and the ZFP block transform."""

import numpy as np
import pytest

from repro.transforms.lorenzo import lorenzo_predict, lorenzo_residuals
from repro.transforms.spline import spline_predict_axis, spline_residuals
from repro.transforms.zfp_transform import (
    coefficient_order,
    zfp_block_forward,
    zfp_block_inverse,
)


class TestLorenzo:
    def test_1d_is_previous_value(self, rng):
        x = rng.standard_normal(20)
        pred = lorenzo_predict(x)
        assert pred[0] == 0.0
        np.testing.assert_allclose(pred[1:], x[:-1])

    def test_2d_formula(self, rng):
        x = rng.standard_normal((6, 7))
        pred = lorenzo_predict(x)
        # interior point: d[i-1,j] + d[i,j-1] - d[i-1,j-1]
        i, j = 3, 4
        assert pred[i, j] == pytest.approx(x[i - 1, j] + x[i, j - 1] - x[i - 1, j - 1])

    def test_3d_formula_matches_paper_eq6(self, rng):
        d = rng.standard_normal((5, 5, 5))
        pred = lorenzo_predict(d)
        i, j, k = 2, 3, 2
        expected = (
            d[i - 1, j, k] + d[i, j - 1, k] + d[i, j, k - 1] + d[i - 1, j - 1, k - 1]
            - d[i - 1, j - 1, k] - d[i - 1, j, k - 1] - d[i, j - 1, k - 1]
        )
        assert pred[i, j, k] == pytest.approx(expected)

    def test_exact_on_multilinear_field(self):
        """The Lorenzo predictor reproduces any multilinear surface exactly."""
        i, j, k = np.meshgrid(*[np.arange(1, 7)] * 3, indexing="ij")
        field = 2.0 * i + 3.0 * j - k + 0.5 * i * j + 0.25 * j * k + i * k
        res = lorenzo_residuals(field.astype(float))
        interior = res[1:, 1:, 1:]
        np.testing.assert_allclose(interior, 0.0, atol=1e-9)

    def test_rejects_5d(self):
        with pytest.raises(ValueError):
            lorenzo_predict(np.zeros((2,) * 5))

    def test_residual_of_constant_interior_zero(self):
        x = np.full((8, 8), 3.5)
        res = lorenzo_residuals(x)
        np.testing.assert_allclose(res[1:, 1:], 0.0, atol=1e-12)


class TestSpline:
    def test_interior_matches_paper_eq7(self, rng):
        d = rng.standard_normal(30)
        pred = spline_predict_axis(d, 0)
        i = 10
        expected = (-d[i - 3] + 9 * d[i - 1] + 9 * d[i + 1] - d[i + 3]) / 16.0
        assert pred[i] == pytest.approx(expected)

    def test_exact_on_cubic(self):
        """The 4-point stencil reproduces cubics exactly in the interior."""
        x = np.arange(40, dtype=float)
        d = 0.5 * x**3 - 2 * x**2 + x - 7
        pred = spline_predict_axis(d, 0)
        np.testing.assert_allclose(pred[3:-3], d[3:-3], rtol=1e-10)

    def test_boundary_linear_fallback(self, rng):
        d = rng.standard_normal(12)
        pred = spline_predict_axis(d, 0)
        assert pred[1] == pytest.approx(0.5 * (d[0] + d[2]))
        assert pred[0] == pytest.approx(d[1])
        assert pred[-1] == pytest.approx(d[-2])

    def test_multi_axis(self, rng):
        d = rng.standard_normal((10, 12, 14))
        for axis in range(3):
            pred = spline_predict_axis(d, axis)
            assert pred.shape == d.shape

    def test_single_element_axis(self):
        d = np.ones((1, 5))
        pred = spline_predict_axis(d, 0)
        np.testing.assert_allclose(pred, d)

    def test_residuals_nonnegative(self, smooth2d):
        res = spline_residuals(smooth2d)
        assert (res >= 0).all()
        # smooth data -> small residuals relative to the value scale
        assert res.mean() < 0.5 * np.abs(smooth2d).mean() + 1e-12


class TestZfpTransform:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_inverse_exact(self, rng, d):
        blocks = rng.standard_normal((7,) + (4,) * d)
        back = zfp_block_inverse(zfp_block_forward(blocks))
        np.testing.assert_allclose(back, blocks, atol=1e-12)

    def test_constant_block_single_dc(self):
        blocks = np.full((1, 4, 4), 2.5)
        coefs = zfp_block_forward(blocks)
        assert coefs[0, 0, 0] == pytest.approx(2.5)
        others = coefs.ravel()[1:]
        np.testing.assert_allclose(others, 0.0, atol=1e-12)

    def test_linear_ramp_decorrelates(self):
        """Linear data concentrates into the two lowest-degree modes."""
        block = np.tile(np.arange(4.0), (1, 4, 1)).reshape(1, 4, 4)
        coefs = np.abs(zfp_block_forward(block)).ravel()
        order = coefficient_order(2)
        head = coefs[order][:3].sum()
        assert head >= 0.99 * coefs.sum()

    def test_coefficient_order_degree_sorted(self):
        order = coefficient_order(3)
        degree = np.add.outer(
            np.add.outer(np.arange(4), np.arange(4)), np.arange(4)
        ).ravel()
        sorted_degrees = degree[order]
        assert (np.diff(sorted_degrees) >= 0).all()
        assert order.size == 64

    def test_order_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            coefficient_order(0)
        with pytest.raises(ValueError):
            coefficient_order(4)
