"""SZ3-specific behaviour: interpolation levels, outliers, Lorenzo mode."""

import numpy as np
import pytest

from repro.compressors.sz3 import (
    SZ3Compressor,
    _anchor_level,
    _interp_passes,
    _pass_subgrid,
    _predict,
)


class TestInterpolationTraversal:
    def test_anchor_level_bounds(self):
        assert _anchor_level((64, 64, 64)) == 5
        assert _anchor_level((1000,)) == 6  # capped
        assert _anchor_level((3, 3)) == 1

    def test_passes_cover_all_points(self):
        """Every non-anchor point is predicted exactly once."""
        shape = (13, 10)
        levels = _anchor_level(shape)
        stride = 1 << levels
        covered = np.zeros(shape, dtype=int)
        covered[::stride, ::stride] += 1  # anchors
        marker = np.zeros(shape)
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(marker, axis, s, h)
            if sub is None:
                continue
            mids, _pred = _predict(sub, h, s)
            sub[mids] += 1.0
        covered += marker.astype(int)
        np.testing.assert_array_equal(covered, np.ones(shape, dtype=int))

    @pytest.mark.parametrize("shape", [(9,), (17, 5), (6, 7, 8), (33, 31, 2)])
    def test_coverage_various_shapes(self, shape):
        levels = _anchor_level(shape)
        stride = 1 << levels
        marker = np.zeros(shape)
        marker[tuple(slice(0, None, stride) for _ in shape)] += 1
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(marker, axis, s, h)
            if sub is None:
                continue
            mids, _ = _predict(sub, h, s)
            sub[mids] += 1.0
        np.testing.assert_array_equal(marker, np.ones(shape))


class TestInterpMode:
    def test_polynomial_data_nearly_free(self):
        """Cubic data is predicted exactly -> all-zero quantization codes."""
        x = np.linspace(0, 1, 65)
        data = np.outer(x**3 - x, x**2 + 1)
        codec = SZ3Compressor()
        out, res = codec.roundtrip(data, 1e-6)
        assert np.abs(out - data).max() <= 1e-6
        assert res.ratio > 15

    def test_outliers_stored_exactly(self, rng):
        """Spikes exceeding the quantization window survive exactly."""
        x = np.cumsum(rng.standard_normal(500)) * 1e-3
        x[123] += 1e6  # enormous spike -> outlier path
        out, _ = SZ3Compressor().roundtrip(x, 1e-6)
        assert np.abs(out - x).max() <= 1e-6

    def test_high_ratio_on_smooth(self, smooth3d):
        codec = SZ3Compressor()
        ratio = codec.compression_ratio(smooth3d, 0.1 * smooth3d.std())
        assert ratio > 10


class TestLorenzoMode:
    def test_round_trip(self, smooth3d):
        codec = SZ3Compressor(predictor="lorenzo")
        out, _ = codec.roundtrip(smooth3d, 1e-3)
        assert np.abs(out - smooth3d).max() <= 1e-3

    def test_linear_field_free(self):
        i, j = np.meshgrid(np.arange(32.0), np.arange(32.0), indexing="ij")
        data = 2 * i - 3 * j
        codec = SZ3Compressor(predictor="lorenzo")
        out, res = codec.roundtrip(data, 1e-3)
        assert np.abs(out - data).max() <= 1e-3
        assert res.ratio > 20

    def test_eb_too_small_rejected(self):
        codec = SZ3Compressor(predictor="lorenzo")
        with pytest.raises(ValueError):
            codec.compress(np.array([1e30, -1e30]), 1e-25)

    def test_invalid_predictor(self):
        with pytest.raises(ValueError):
            SZ3Compressor(predictor="magic")


class TestEntropyBackend:
    def test_smoothness_reflected_in_size(self, rng):
        smooth = np.cumsum(np.cumsum(rng.standard_normal((48, 48)), 0), 1) / 20
        rough = rng.standard_normal((48, 48)) * smooth.std()
        codec = SZ3Compressor()
        eb = 1e-3 * smooth.std()
        assert codec.compression_ratio(smooth, eb) > 1.5 * codec.compression_ratio(rough, eb)

    def test_both_modes_bounded(self, smooth2d):
        for predictor in ("interp", "lorenzo"):
            out, _ = SZ3Compressor(predictor=predictor).roundtrip(smooth2d, 5e-3)
            assert np.abs(out - smooth2d).max() <= 5e-3
