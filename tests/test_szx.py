"""SZx-specific behaviour: constant blocks, bit-width grouping."""

import numpy as np
import pytest

from repro.compressors.szx import SZXCompressor


class TestConstantBlocks:
    def test_piecewise_constant_collapses(self):
        x = np.repeat(np.array([1.0, 5.0, -2.0, 8.0]), 128)
        codec = SZXCompressor()
        out, res = codec.roundtrip(x, 1e-9)
        np.testing.assert_allclose(out, x, atol=1e-9)
        # 4 constant blocks -> a handful of floats instead of 512 values.
        assert res.compressed_bytes < 100

    def test_near_constant_within_eb(self):
        x = 3.0 + 1e-4 * np.sin(np.arange(256))
        codec = SZXCompressor()
        out, res = codec.roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3
        assert res.compressed_bytes < 80

    def test_mixed_constant_and_varying(self, rng):
        x = np.concatenate([np.zeros(128), np.cumsum(rng.standard_normal(128))])
        codec = SZXCompressor()
        out, _ = codec.roundtrip(x, 1e-4)
        assert np.abs(out - x).max() <= 1e-4


class TestBitWidths:
    def test_width_shrinks_with_eb(self, rough1d):
        codec = SZXCompressor()
        sizes = [
            codec.compress(rough1d, eb).compressed_bytes
            for eb in (1e-6, 1e-3, 1e-1)
        ]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_eb_sensitivity_stepwise(self, rough1d):
        """SZx's ratio jumps when the per-block width crosses a power of 2."""
        codec = SZXCompressor()
        ebs = np.geomspace(1e-4, 1e-1, 40)
        ratios = np.array([codec.compression_ratio(rough1d, eb) for eb in ebs])
        rel_steps = np.diff(ratios) / ratios[:-1]
        assert rel_steps.max() > 0.02  # visible jumps, not a smooth curve


class TestBlockSize:
    def test_custom_block_size(self, rng):
        x = np.cumsum(rng.standard_normal(1000))
        codec = SZXCompressor(block_size=64)
        out, _ = codec.roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3

    def test_non_multiple_length(self, rng):
        x = np.cumsum(rng.standard_normal(333))
        out, _ = SZXCompressor().roundtrip(x, 1e-3)
        assert out.shape == x.shape
        assert np.abs(out - x).max() <= 1e-3

    def test_tiny_input(self):
        x = np.array([1.0, 2.0, 3.0])
        out, _ = SZXCompressor().roundtrip(x, 1e-6)
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            SZXCompressor(block_size=1)
