"""cuSZp-specific behaviour: pre-quantization, block deltas, zero blocks."""

import numpy as np
import pytest

from repro.compressors.cuszp import CuSZpCompressor


class TestZeroBlocks:
    def test_constant_collapses_to_flags(self):
        x = np.full(320, 7.5)
        codec = CuSZpCompressor()
        out, res = codec.roundtrip(x, 1e-6)
        assert np.abs(out - x).max() <= 1e-6
        # one flag bit + one absolute code per 32-value block
        assert res.compressed_bytes < 140

    def test_linear_ramp_small_deltas(self):
        """A linear ramp quantizes to constant deltas -> 1-2 bit widths."""
        x = np.linspace(0.0, 10.0, 3200)
        codec = CuSZpCompressor()
        out, res = codec.roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3
        assert res.ratio > 8


class TestDeltaCorrectness:
    def test_alternating_signs(self):
        x = np.tile([1.0, -1.0], 100)
        out, _ = CuSZpCompressor().roundtrip(x, 1e-4)
        assert np.abs(out - x).max() <= 1e-4

    def test_block_boundaries_independent(self, rng):
        """Each block's first code is absolute, so blocks decode alone."""
        x = np.concatenate([np.zeros(32), 1e6 * np.ones(32), np.zeros(32)])
        out, _ = CuSZpCompressor().roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3

    def test_non_multiple_length(self, rng):
        x = np.cumsum(rng.standard_normal(101))
        out, _ = CuSZpCompressor().roundtrip(x, 1e-3)
        assert out.shape == x.shape
        assert np.abs(out - x).max() <= 1e-3

    def test_multidimensional(self, smooth3d):
        out, _ = CuSZpCompressor().roundtrip(smooth3d, 1e-3)
        assert out.shape == smooth3d.shape
        assert np.abs(out - smooth3d).max() <= 1e-3


class TestLimits:
    def test_eb_too_small_for_magnitude(self):
        with pytest.raises(ValueError):
            CuSZpCompressor().compress(np.array([1e30, -1e30]), 1e-25)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            CuSZpCompressor(block_size=1)

    def test_throughput_class(self, rng):
        """cuSZp belongs with SZx in the high-throughput class: it must be
        far faster than the high-ratio codecs on the same input."""
        from repro.compressors import get_compressor

        x = np.cumsum(rng.standard_normal((40, 48, 48)), axis=0)
        t_cuszp = get_compressor("cuszp").compress(x, 1e-2).elapsed
        t_sperr = get_compressor("sperr").compress(x, 1e-2).elapsed
        assert t_cuszp < t_sperr / 3
