"""Unit tests for the CDF 9/7 lifting wavelet."""

import numpy as np
import pytest

from repro.transforms.wavelet import cdf97_forward, cdf97_inverse, max_levels


class TestPerfectReconstruction:
    @pytest.mark.parametrize(
        "shape", [(16,), (17,), (31,), (8, 8), (9, 13), (6, 10, 14), (5, 5, 5)]
    )
    def test_round_trip_shapes(self, rng, shape):
        x = rng.standard_normal(shape)
        levels = max_levels(shape, 2)
        y = cdf97_inverse(cdf97_forward(x, levels), levels)
        np.testing.assert_allclose(y, x, atol=1e-9)

    def test_zero_levels_identity(self, rng):
        x = rng.standard_normal((10, 10))
        np.testing.assert_array_equal(cdf97_forward(x, 0), x)

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_round_trip_levels(self, rng, levels):
        x = rng.standard_normal((32, 24))
        y = cdf97_inverse(cdf97_forward(x, levels), levels)
        np.testing.assert_allclose(y, x, atol=1e-9)

    def test_negative_levels_rejected(self, rng):
        with pytest.raises(ValueError):
            cdf97_forward(rng.standard_normal(8), -1)


class TestEnergyCompaction:
    def test_smooth_signal_concentrates_in_lowpass(self, smooth2d):
        levels = 2
        coefs = cdf97_forward(smooth2d, levels)
        lo = coefs[: smooth2d.shape[0] // 4 + 1, : smooth2d.shape[1] // 4 + 1]
        total = (coefs**2).sum()
        assert (lo**2).sum() > 0.95 * total

    def test_constant_signal_highpass_zero(self):
        x = np.full((16, 16), 7.0)
        coefs = cdf97_forward(x, 1)
        high = coefs[8:, :]
        np.testing.assert_allclose(high, 0.0, atol=1e-9)
        high2 = coefs[:, 8:]
        np.testing.assert_allclose(high2, 0.0, atol=1e-9)

    def test_noise_spreads_energy(self, rng):
        x = rng.standard_normal((32, 32))
        coefs = cdf97_forward(x, 1)
        lo = coefs[:16, :16]
        assert (lo**2).sum() < 0.6 * (coefs**2).sum()

    def test_near_orthonormal_energy(self, rng):
        """Total energy preserved within the biorthogonal tolerance."""
        x = rng.standard_normal((64,))
        coefs = cdf97_forward(x, 3)
        ratio = (coefs**2).sum() / (x**2).sum()
        assert 0.5 < ratio < 2.0


class TestMaxLevels:
    def test_large_cube(self):
        assert max_levels((64, 64, 64), min_extent=8) == 3

    def test_small_array_one_level(self):
        assert max_levels((4,), min_extent=8) == 1

    def test_mixed_with_singleton_axis(self):
        # Singleton axes must not block decomposition of the others.
        assert max_levels((1, 64), min_extent=8) >= 2

    def test_does_not_modify_input(self, rng):
        x = rng.standard_normal((16, 16))
        x0 = x.copy()
        cdf97_forward(x, 2)
        np.testing.assert_array_equal(x, x0)
