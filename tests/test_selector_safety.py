"""Compressor selector and uncertainty-aware safety margins."""

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field
from repro.core.selector import CompressorSelector

SHAPE = (14, 20, 20)
REL = np.geomspace(1e-3, 1e-1, 6)


@pytest.fixture(scope="module")
def train_fields():
    return load_dataset("miranda", shape=SHAPE)[:3]


@pytest.fixture(scope="module")
def test_field():
    return load_field("miranda/density", shape=SHAPE, seed=55)


class TestSafetyMargin:
    @pytest.fixture(scope="class")
    def fitted(self, train_fields):
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
        fw.fit(train_fields)
        return fw

    def test_positive_safety_increases_eb(self, fitted, test_field):
        base = fitted.predict_error_bound(test_field.data, 6.0).error_bound
        safe = fitted.predict_error_bound(test_field.data, 6.0, safety=2.0).error_bound
        assert safe >= base

    def test_negative_safety_decreases_eb(self, fitted, test_field):
        base = fitted.predict_error_bound(test_field.data, 6.0).error_bound
        tight = fitted.predict_error_bound(test_field.data, 6.0, safety=-2.0).error_bound
        assert tight <= base

    def test_safety_biases_achieved_ratio_up(self, fitted, test_field):
        plain, _ = fitted.compress_to_ratio(test_field.data, 6.0)
        safe, _ = fitted.compress_to_ratio(test_field.data, 6.0, safety=2.0)
        assert safe.ratio >= plain.ratio

    def test_non_forest_model_ignores_safety(self, train_fields, test_field):
        fw = CarolFramework(
            compressor="szx", rel_error_bounds=REL, n_iter=3, cv=2, model_kind="knn"
        )
        fw.fit(train_fields)
        a = fw.predict_error_bound(test_field.data, 6.0, safety=3.0).error_bound
        b = fw.predict_error_bound(test_field.data, 6.0).error_bound
        assert a == pytest.approx(b)

    def test_predict_std_shapes(self, fitted, test_field):
        forest = fitted.model.forest
        x = np.concatenate((fitted.predict_error_bound(test_field.data, 6.0).features,
                            [np.log(6.0)]))
        std = forest.predict_std(x[None, :])
        assert std.shape == (1,)
        assert std[0] >= 0


class TestSelector:
    @pytest.fixture(scope="class")
    def selector(self, train_fields):
        sel = CompressorSelector(
            compressors=("szx", "sperr"),
            rel_error_bounds=REL, n_iter=3, cv=2,
        )
        sel.fit(train_fields)
        return sel

    def test_low_target_prefers_fast_codec(self, selector, test_field):
        out = selector.compress_to_ratio(test_field.data, 3.0)
        assert out.compressor == "szx"
        assert out.result.ratio > 1.0

    def test_high_target_falls_to_high_ratio_codec(self, selector, test_field):
        # beyond SZx's trained envelope -> SPERR (larger envelope)
        out = selector.compress_to_ratio(test_field.data, 1e5)
        assert out.compressor == "sperr"

    def test_unfitted_rejected(self, test_field):
        sel = CompressorSelector(compressors=("szx",), rel_error_bounds=REL)
        with pytest.raises(RuntimeError):
            sel.compress_to_ratio(test_field.data, 3.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            CompressorSelector(compressors=())

    def test_outcome_reports_envelopes(self, selector, test_field):
        out = selector.compress_to_ratio(test_field.data, 3.0)
        assert set(out.candidates) == {"szx", "sperr"}
        assert all(v > 0 for v in out.candidates.values())
