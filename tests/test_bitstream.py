"""Unit tests for the MSB-first bitstream writer/reader."""

import numpy as np
import pytest

from repro.encoding.bitstream import BitReader, BitWriter, pack_uint_array


class TestBitWriter:
    def test_empty_stream(self):
        w = BitWriter()
        assert w.bit_length == 0
        assert w.byte_length == 0
        assert w.getvalue() == b""

    def test_single_bits(self):
        w = BitWriter()
        for b in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bit(b)
        assert w.bit_length == 8
        assert w.getvalue() == bytes([0b10110001])

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b01111, 5)
        assert w.getvalue() == bytes([0b10101111])

    def test_write_bits_zero_width(self):
        w = BitWriter()
        w.write_bits(123, 0)
        assert w.bit_length == 0

    def test_write_bits_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 4)
        with pytest.raises(ValueError):
            w.write_bits(1, -2)

    def test_byte_padding(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        assert w.byte_length == 1
        assert w.getvalue() == bytes([0b10000000])

    def test_write_uint_array(self):
        w = BitWriter()
        w.write_uint_array(np.array([1, 2, 3], dtype=np.uint64), 4)
        r = BitReader(w.getvalue())
        assert list(r.read_uint_array(3, 4)) == [1, 2, 3]

    def test_write_bit_array_accepts_nonbool(self):
        w = BitWriter()
        w.write_bit_array(np.array([0, 2, 0, 5]))  # nonzero -> 1
        r = BitReader(w.getvalue())
        assert list(r.read_bit_array(4)) == [False, True, False, True]

    def test_extend_concatenates_without_alignment(self):
        a = BitWriter()
        a.write_bits(0b101, 3)
        b = BitWriter()
        b.write_bits(0b11, 2)
        a.extend(b)
        assert a.bit_length == 5
        r = BitReader(a.getvalue())
        assert r.read_bits(5) == 0b10111

    def test_large_values_64bit(self):
        w = BitWriter()
        big = (1 << 63) + 12345
        w.write_bits(big, 64)
        r = BitReader(w.getvalue())
        assert r.read_bits(64) == big


class TestPackedRuns:
    """The fused pipelines' fast path: :func:`pack_uint_array` /
    :meth:`BitWriter.write_packed` / :meth:`BitWriter.compact` /
    :meth:`BitReader.seek` must be bit-identical to the primitives they
    bypass — byte identity of whole compressor streams rests on it."""

    @pytest.mark.parametrize("nbits", [1, 7, 8, 13, 17, 32, 41, 64])
    def test_pack_matches_write_uint_array(self, rng, nbits):
        vals = rng.integers(0, 1 << min(nbits, 62), size=200, dtype=np.uint64)
        vals[0] = 0
        vals[-1] = np.uint64((1 << nbits) - 1)  # all-ones field
        ref, fast = BitWriter(), BitWriter()
        ref.write_uint_array(vals, nbits)
        fast.write_packed(pack_uint_array(vals, nbits))
        assert fast.bit_length == ref.bit_length == nbits * vals.size
        assert fast.getvalue() == ref.getvalue()

    def test_pack_at_unaligned_offset(self, rng):
        vals = rng.integers(0, 1 << 11, size=50, dtype=np.uint64)
        for prefix in range(1, 8):
            ref, fast = BitWriter(), BitWriter()
            for w in (ref, fast):
                w.write_bits(1, prefix)
            ref.write_uint_array(vals, 11)
            fast.write_packed(pack_uint_array(vals, 11))
            assert fast.getvalue() == ref.getvalue()

    def test_pack_empty_and_zero_width(self):
        assert pack_uint_array(np.zeros(0, dtype=np.uint64), 13).nbits == 0
        assert pack_uint_array(np.arange(4, dtype=np.uint64), 0).nbits == 0
        w = BitWriter()
        w.write_packed(pack_uint_array(np.zeros(0, dtype=np.uint64), 13))
        assert w.getvalue() == b""

    def test_pack_rejects_oversized_width(self):
        with pytest.raises(ValueError, match="nbits"):
            pack_uint_array(np.arange(4, dtype=np.uint64), 65)

    def test_compact_per_tile_preserves_bytes(self, rng):
        """Compacting after every tile (what the fused loops do to bound
        writer memory) never changes the emitted stream."""
        ref, tiled = BitWriter(), BitWriter()
        for _ in range(5):
            bits = rng.integers(0, 2, size=37).astype(bool)
            ref.write_bit_array(bits)
            tiled.write_bit_array(bits)
            tiled.compact()
        tiled.compact()  # idempotent on an already-packed writer
        assert tiled.getvalue() == ref.getvalue()

    def test_seek_random_access(self, rng):
        vals = rng.integers(0, 1 << 9, size=64, dtype=np.uint64)
        w = BitWriter()
        w.write_uint_array(vals, 9)
        r = BitReader(w.getvalue())
        r.seek(9 * 10)
        np.testing.assert_array_equal(r.read_uint_array(5, 9), vals[10:15])
        r.seek(0)
        np.testing.assert_array_equal(r.read_uint_array(64, 9), vals)
        with pytest.raises(ValueError, match="seek"):
            r.seek(10**9)
        with pytest.raises(ValueError, match="seek"):
            r.seek(-1)


class TestBitReader:
    def test_round_trip_mixed(self, rng):
        w = BitWriter()
        values = rng.integers(0, 2**20, 50)
        for v in values:
            w.write_bits(int(v), 21)
        w.write_unary(7)
        w.write_elias_gamma(123456)
        r = BitReader(w.getvalue())
        for v in values:
            assert r.read_bits(21) == v
        assert r.read_unary() == 7
        assert r.read_elias_gamma() == 123456

    def test_reader_from_bit_array(self):
        r = BitReader(np.array([True, False, True, True]))
        assert r.read_bits(4) == 0b1011

    def test_exhaustion_raises(self):
        r = BitReader(bytes([0xFF]))
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_unterminated_unary_raises(self):
        w = BitWriter()
        w.write_bit_array(np.zeros(5, dtype=bool))
        r = BitReader(w.bits())
        with pytest.raises(EOFError):
            r.read_unary()

    def test_position_and_remaining(self):
        w = BitWriter()
        w.write_bits(0b1010, 4)
        r = BitReader(w.getvalue())
        assert r.remaining == 8  # byte-padded
        r.read_bits(3)
        assert r.position == 3
        assert r.remaining == 5

    def test_read_uint_array_empty(self):
        r = BitReader(b"")
        assert r.read_uint_array(0, 8).size == 0
        assert r.read_uint_array(5, 0).size == 5


class TestEliasGamma:
    @pytest.mark.parametrize("value", [1, 2, 3, 4, 7, 8, 255, 256, 10**6])
    def test_round_trip(self, value):
        w = BitWriter()
        w.write_elias_gamma(value)
        assert BitReader(w.getvalue()).read_elias_gamma() == value

    def test_rejects_nonpositive(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_elias_gamma(0)

    def test_one_is_single_bit(self):
        w = BitWriter()
        w.write_elias_gamma(1)
        assert w.bit_length == 1


class TestUnary:
    def test_round_trip_sequence(self):
        w = BitWriter()
        for v in [0, 1, 5, 0, 2]:
            w.write_unary(v)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(5)] == [0, 1, 5, 0, 2]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)


def test_float64_bits_round_trip(rng):
    """Raw float bit patterns survive the uint64 path (used by compressors)."""
    vals = rng.standard_normal(10)
    w = BitWriter()
    w.write_uint_array(vals.view(np.uint64), 64)
    r = BitReader(w.getvalue())
    out = r.read_uint_array(10, 64).view(np.float64)
    np.testing.assert_array_equal(out, vals)
