"""Cross-module integration tests: the paper's scenarios in miniature."""

import numpy as np
import pytest

from repro import (
    CarolFramework,
    FxrzFramework,
    estimation_error,
    get_compressor,
    get_surrogate,
    invert_curve,
    load_dataset,
    load_field,
)
from repro.core.calibration import Calibrator

SHAPE = (16, 20, 20)
REL = np.geomspace(1e-3, 1e-1, 6)


class TestSecrePlusCalibrationPipeline:
    """Section 5.1 + 5.2: surrogate estimate, then calibrate, then invert."""

    @pytest.mark.parametrize("name", ["sz3", "sperr"])
    def test_calibrated_curve_inverts_to_good_eb(self, name):
        field = load_field("miranda/viscosity", shape=(20, 28, 28))
        codec = get_compressor(name)
        ebs = REL * field.value_range
        est, _ = get_surrogate(name).estimate_curve(field.data, ebs)
        cal, _ = Calibrator(n_points=4).calibrate_curve(field.data, ebs, est, codec)

        # Invert the calibrated curve for a mid-range target and check the
        # achieved ratio against the request.
        target = float(cal[len(cal) // 2])
        eb = invert_curve(ebs, cal, target)
        achieved = codec.compression_ratio(field.data, eb)
        assert estimation_error([target], [achieved]) < 35.0


class TestMultiDatasetTraining:
    """Fig. 7's multi-domain setting, miniature."""

    def test_cross_dataset_generalization(self):
        train = (
            load_dataset("miranda", shape=SHAPE)[:3]
            + load_dataset("hcci", shape=SHAPE)
            + load_dataset("mrs", shape=SHAPE)
        )
        test_field = load_field("nyx/velocity_x", shape=SHAPE)
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=5, cv=3)
        fw.fit(train)
        codec = get_compressor("szx")
        ebs = REL[1:5] * test_field.value_range
        targets = [codec.compression_ratio(test_field.data, eb) for eb in ebs]
        rep = fw.evaluate_targets(test_field.data, targets)
        assert rep.alpha < 80.0  # unseen dataset, miniature training set

    def test_both_frameworks_agree_on_training_rows(self):
        train = load_dataset("miranda", shape=SHAPE)[:2]
        for cls in (CarolFramework, FxrzFramework):
            fw = cls(compressor="zfp", rel_error_bounds=REL, n_iter=3, cv=2)
            fw.fit(train)
            X, y = fw.training_data.design_matrix()
            assert X.shape[0] == y.size == 2 * REL.size


class TestTimeEvolvingRefinement:
    """The hurricane scenario motivating incremental refinement (Sec. 1)."""

    def test_refinement_tracks_drift(self):
        early = load_dataset("hurricane", shape=(8, 24, 24), timestep=0)[:3]
        late = load_dataset("hurricane", shape=(8, 24, 24), timestep=30)[:3]
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
        fw.fit(early)
        evals_cold = fw.model.info.n_evaluations
        rep = fw.refine(late)
        # refinement runs fewer fresh search evaluations than the cold fit
        # (wall-clock comparisons are too noisy on a loaded CI box)
        assert fw.model.info.n_evaluations <= evals_cold
        # and the model still serves predictions
        pred = fw.predict_error_bound(late[0].data, 8.0)
        assert pred.error_bound > 0


class TestCompressorInteroperability:
    def test_compressed_stream_is_self_describing(self, smooth2d):
        codec = get_compressor("sz3")
        res = codec.compress(smooth2d, 1e-2)
        # decoding with a *fresh* instance must work (no shared state)
        out = get_compressor("sz3").decompress(res)
        assert np.abs(out - smooth2d).max() <= 1e-2

    def test_all_codecs_on_all_dataset_flavours(self):
        fields = [
            load_field("cesm/ts", shape=(24, 48)),
            load_field("hcci/oh", shape=(14, 14, 14)),
        ]
        for name in ("szx", "zfp", "sz3", "sperr"):
            codec = get_compressor(name)
            for f in fields:
                eb = f.relative_error_bound(1e-2)
                out, res = codec.roundtrip(f.data, eb)
                assert np.abs(out - f.data.astype(np.float64)).max() <= eb
                assert res.ratio > 1.0
