"""SPERR-specific behaviour: outlier correction, quantization factor."""

import numpy as np
import pytest

from repro.compressors.sperr import SPERRCompressor


class TestOutlierCorrection:
    def test_bound_guaranteed_despite_synthesis_gain(self, rng):
        """Wavelet synthesis can amplify coefficient error; the outlier pass
        must still deliver the pointwise bound."""
        x = rng.standard_normal((40, 40))  # worst case: pure noise
        for eb in (1e-3, 1e-2, 1e-1):
            out, _ = SPERRCompressor().roundtrip(x, eb)
            assert np.abs(out - x).max() <= eb

    def test_spiky_data(self, rng):
        x = np.zeros((32, 32))
        x[rng.integers(0, 32, 10), rng.integers(0, 32, 10)] = 100.0
        out, _ = SPERRCompressor().roundtrip(x, 1e-2)
        assert np.abs(out - x).max() <= 1e-2

    def test_exact_outliers_path(self, rng):
        """Huge local spikes exercise the store-exact fallback."""
        x = np.cumsum(rng.standard_normal(400)) * 1e-3
        x[37] += 1e7
        out, _ = SPERRCompressor().roundtrip(x, 1e-5)
        assert np.abs(out - x).max() <= 1e-5


class TestQuantFactor:
    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SPERRCompressor(quant_factor=0.0)
        with pytest.raises(ValueError):
            SPERRCompressor(quant_factor=1.5)

    def test_smaller_factor_fewer_outliers(self, rng):
        x = rng.standard_normal((24, 24))
        tight = SPERRCompressor(quant_factor=0.25).compress(x, 1e-2)
        loose = SPERRCompressor(quant_factor=1.0).compress(x, 1e-2)
        # both hold the bound; sizes just trade off differently
        for codec, res in ((SPERRCompressor(quant_factor=0.25), tight),
                           (SPERRCompressor(quant_factor=1.0), loose)):
            out = codec.decompress(res)
            assert np.abs(out - x).max() <= 1e-2


class TestHighRatio:
    def test_smooth_data_high_ratio(self, smooth3d):
        """SPERR is a high-ratio codec: large eb -> ratios far above SZx's."""
        codec = SPERRCompressor()
        ratio = codec.compression_ratio(smooth3d, 0.2 * smooth3d.std())
        assert ratio > 20

    def test_2d_and_1d_supported(self, rng, smooth2d):
        out2, _ = SPERRCompressor().roundtrip(smooth2d, 1e-2)
        assert np.abs(out2 - smooth2d).max() <= 1e-2
        sig = np.cumsum(rng.standard_normal(700)) / 10
        out1, _ = SPERRCompressor().roundtrip(sig, 1e-2)
        assert np.abs(out1 - sig).max() <= 1e-2
