"""Random-forest regressor unit tests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor


class TestFit:
    def test_basic_regression(self, rng):
        X = rng.random((300, 4))
        y = 2 * X[:, 0] - X[:, 1] + 0.1 * rng.standard_normal(300)
        rf = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert rf.score(X, y) > 0.9

    def test_reproducible_with_seed(self, rng):
        X = rng.random((100, 3))
        y = rng.random(100)
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y)
        Xt = rng.random((20, 3))
        np.testing.assert_array_equal(a.predict(Xt), b.predict(Xt))

    def test_no_bootstrap_deterministic_trees(self, rng):
        X = rng.random((80, 3))
        y = X.sum(axis=1)
        rf = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=None, random_state=0
        ).fit(X, y)
        p0 = rf.trees[0].predict(X)
        p1 = rf.trees[1].predict(X)
        np.testing.assert_allclose(p0, p1)  # identical trees without bagging

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestPrediction:
    def test_single_vector_prediction(self, rng):
        X = rng.random((50, 3))
        y = X[:, 0]
        rf = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
        out = rf.predict(X[0])
        assert np.isscalar(out) or out.ndim == 0

    def test_averaging_reduces_variance(self, rng):
        X = rng.random((400, 3))
        y = np.sin(5 * X[:, 0]) + 0.3 * rng.standard_normal(400)
        Xt = rng.random((200, 3))
        yt = np.sin(5 * Xt[:, 0])
        one = RandomForestRegressor(n_estimators=1, random_state=0).fit(X, y)
        many = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
        err_one = ((one.predict(Xt) - yt) ** 2).mean()
        err_many = ((many.predict(Xt) - yt) ** 2).mean()
        assert err_many < err_one

    def test_score_r2_bounds(self, rng):
        X = rng.random((100, 2))
        y = X[:, 0]
        rf = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        assert rf.score(X, y) <= 1.0


class TestParams:
    def test_get_params_round_trip(self):
        rf = RandomForestRegressor(
            n_estimators=12, max_features="sqrt", max_depth=7,
            min_samples_split=5, min_samples_leaf=2, bootstrap=False,
        )
        p = rf.get_params()
        rf2 = RandomForestRegressor(**p)
        assert rf2.get_params() == p

    def test_memory_footprint_positive(self, rng):
        X = rng.random((60, 3))
        y = rng.random(60)
        rf = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        assert rf.memory_footprint_bytes() > 0
