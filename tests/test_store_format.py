"""Container format: header/footer framing, manifest round trip, corruption."""

import json

import numpy as np
import pytest

from repro.store.format import (
    FOOTER_BYTES,
    HEADER_BYTES,
    MAGIC,
    CorruptChunkError,
    StoreFormatError,
    chunk_checksum,
    json_safe,
    read_manifest,
    write_header,
    write_manifest,
)

MANIFEST = {
    "shape": [4, 4],
    "dtype": "float32",
    "chunk_shape": [2, 4],
    "compressor": "szx",
    "chunks": [],
}


def _write_store(path, manifest=MANIFEST, payload=b"\x01\x02\x03"):
    with open(path, "wb") as fh:
        write_header(fh)
        fh.write(payload)
        write_manifest(fh, manifest)
    return path


class TestFraming:
    def test_manifest_roundtrip_bit_exact(self, tmp_path):
        manifest = dict(MANIFEST, chunks=[{"coords": [0, 0], "offset": HEADER_BYTES,
                                           "nbytes": 3, "checksum": chunk_checksum(b"abc")}])
        path = _write_store(tmp_path / "x.rps", manifest)
        with open(path, "rb") as fh:
            loaded = read_manifest(fh, path)
        assert loaded == json.loads(json.dumps(manifest))
        # serialization is canonical (sorted keys): re-writing is bit-exact
        a, b = tmp_path / "a.rps", tmp_path / "b.rps"
        _write_store(a, manifest)
        _write_store(b, loaded)
        assert a.read_bytes() == b.read_bytes()

    def test_header_and_footer_sizes(self, tmp_path):
        path = _write_store(tmp_path / "x.rps", MANIFEST, payload=b"")
        blob = path.read_bytes()
        assert blob.startswith(MAGIC)
        assert len(blob) == HEADER_BYTES + len(json.dumps(MANIFEST, sort_keys=True)) + FOOTER_BYTES

    def test_bad_magic_rejected(self, tmp_path):
        path = _write_store(tmp_path / "x.rps")
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with open(path, "rb") as fh:
            with pytest.raises(StoreFormatError, match="magic"):
                read_manifest(fh, path)

    def test_truncated_file_rejected(self, tmp_path):
        path = _write_store(tmp_path / "x.rps")
        path.write_bytes(path.read_bytes()[:-4])
        with open(path, "rb") as fh:
            with pytest.raises(StoreFormatError, match="truncated"):
                read_manifest(fh, path)

    def test_tiny_file_rejected(self, tmp_path):
        path = tmp_path / "x.rps"
        path.write_bytes(b"abc")
        with open(path, "rb") as fh:
            with pytest.raises(StoreFormatError, match="too small"):
                read_manifest(fh, path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = _write_store(tmp_path / "x.rps")
        blob = bytearray(path.read_bytes())
        blob[12] = 0xFE  # version field follows the 12-byte magic
        path.write_bytes(bytes(blob))
        with open(path, "rb") as fh:
            with pytest.raises(StoreFormatError, match="version"):
                read_manifest(fh, path)

    def test_missing_manifest_key_rejected(self, tmp_path):
        bad = {k: v for k, v in MANIFEST.items() if k != "compressor"}
        path = _write_store(tmp_path / "x.rps", bad)
        with open(path, "rb") as fh:
            with pytest.raises(StoreFormatError, match="compressor"):
                read_manifest(fh, path)


class TestChecksumsAndMeta:
    def test_checksum_changes_with_payload(self):
        assert chunk_checksum(b"abc") != chunk_checksum(b"abd")
        assert chunk_checksum(b"abc") == chunk_checksum(b"abc")

    def test_corrupt_chunk_error_names_chunk(self, tmp_path):
        err = CorruptChunkError((1, 2, 3), tmp_path / "f.rps", "checksum mismatch")
        assert "(1, 2, 3)" in str(err)
        assert "f.rps" in str(err)
        assert err.coords == (1, 2, 3)

    def test_json_safe_numpy_types(self):
        meta = {
            "shape": (4, np.int64(8)),
            "eb": np.float64(0.5),
            "n": np.int32(7),
            "arr": np.array([1, 2]),
            "mode": "interp",
            "flag": True,
            "none": None,
        }
        safe = json_safe(meta)
        assert json.loads(json.dumps(safe)) == safe
        assert safe["shape"] == [4, 8]
        assert safe["eb"] == 0.5
        assert safe["arr"] == [1, 2]

    def test_json_safe_rejects_opaque_objects(self):
        with pytest.raises(TypeError, match="not JSON-serializable"):
            json_safe({"bad": object()})
