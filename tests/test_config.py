"""FrameworkConfig: validation, serialization, end-to-end fit."""

import numpy as np
import pytest

from repro.core.config import FrameworkConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = FrameworkConfig()
        assert cfg.framework == "carol"
        assert cfg.rel_error_bounds().size == cfg.n_error_bounds

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"framework": "magic"},
            {"rel_eb_min": 0.0},
            {"rel_eb_min": 0.5, "rel_eb_max": 0.1},
            {"n_error_bounds": 1},
            {"n_iter": 0},
            {"cv": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FrameworkConfig(**kwargs)

    def test_shape_normalized(self):
        cfg = FrameworkConfig(shape=[8, 12.0, 10])
        assert cfg.shape == (8, 12, 10)


class TestSerialization:
    def test_dict_round_trip(self):
        cfg = FrameworkConfig(
            framework="fxrz", compressor="szx", shape=(8, 10, 10),
            datasets=["miranda", "hcci"], model_kind="knn",
        )
        again = FrameworkConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = FrameworkConfig(compressor="sperr", n_iter=3)
        path = cfg.save(tmp_path / "cfg.json")
        assert FrameworkConfig.load(path) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            FrameworkConfig.from_dict({"gpu": True})


class TestBuildAndFit:
    def test_build_matches_config(self):
        cfg = FrameworkConfig(framework="fxrz", compressor="zfp", n_iter=3, cv=2)
        fw = cfg.build()
        assert fw.name == "fxrz"
        assert fw.compressor_name == "zfp"
        assert fw.n_iter == 3

    def test_end_to_end_fit(self):
        cfg = FrameworkConfig(
            framework="carol", compressor="szx", shape=(10, 12, 12),
            datasets=["hcci"], n_error_bounds=5, n_iter=3, cv=2,
        )
        fw = cfg.fit()
        assert fw.setup_report is not None
        assert fw.training_data.n_rows == 5  # 1 field x 5 ebs

    def test_same_config_same_model(self):
        """Reproducibility: identical configs produce identical predictions."""
        cfg = FrameworkConfig(
            framework="carol", compressor="szx", shape=(10, 12, 12),
            datasets=["hcci"], n_error_bounds=5, n_iter=3, cv=2, seed=7,
        )
        a, b = cfg.fit(), FrameworkConfig.from_dict(cfg.to_dict()).fit()
        x = np.cumsum(np.random.default_rng(0).standard_normal((10, 12, 12)), 0)
        pa = a.predict_error_bound(x, 5.0).error_bound
        pb = b.predict_error_bound(x, 5.0).error_bound
        assert pa == pytest.approx(pb)
