"""CompressionResult accounting and the CLI bench command."""

import pytest

from repro.compressors import get_compressor
from repro.compressors.base import CompressionResult


class TestAccounting:
    def test_ratio_includes_header(self):
        res = CompressionResult(
            compressor="szx", payload=b"x" * 68, metadata={},
            original_bytes=1000, error_bound=0.1,
        )
        assert res.compressed_bytes == 68 + CompressionResult._HEADER_BYTES
        assert res.ratio == pytest.approx(1000 / 100)

    def test_metadata_defaults_filled(self, smooth2d):
        res = get_compressor("szx").compress(smooth2d, 1e-2)
        assert tuple(res.metadata["shape"]) == smooth2d.shape
        assert res.metadata["error_bound"] == pytest.approx(1e-2)
        assert res.metadata["dtype"] == str(smooth2d.dtype)

    def test_elapsed_recorded(self, smooth2d):
        res = get_compressor("sperr").compress(smooth2d, 1e-2)
        assert res.elapsed > 0

    def test_payload_not_in_repr(self, smooth2d):
        res = get_compressor("szx").compress(smooth2d, 1e-2)
        assert "payload" not in repr(res)
        assert len(repr(res)) < 200


class TestCliBench:
    def test_bench_command_runs_tiny_experiment(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        rc = main(["bench", "fig2_surrogate_curves"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "sperr" in out
