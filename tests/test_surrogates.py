"""SECRE surrogate estimators: accuracy structure and speed contracts."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.metrics import estimation_error
from repro.data import load_field
from repro.surrogate import available_surrogates, get_surrogate

SHAPE = (24, 32, 32)


@pytest.fixture(scope="module")
def field():
    return load_field("miranda/viscosity", shape=SHAPE)


@pytest.fixture(scope="module")
def ebs(field):
    return np.geomspace(1e-3, 1e-1, 6) * field.value_range


class TestRegistry:
    def test_all_compressors_covered(self):
        from repro.compressors import available_compressors

        assert set(available_surrogates()) == set(available_compressors())

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_surrogate("nope")

    def test_names_match(self):
        for name in available_surrogates():
            assert get_surrogate(name).compressor_name == name


class TestEstimates:
    @pytest.mark.parametrize("name", ["szx", "zfp", "sz3", "sperr"])
    def test_positive_and_monotone_trend(self, field, ebs, name):
        est, elapsed = get_surrogate(name).estimate_curve(field.data, ebs)
        assert (est > 0).all()
        assert elapsed >= 0
        # overall trend must rise (allow local steps/noise)
        assert est[-1] > est[0]

    @pytest.mark.parametrize("name", ["szx", "zfp"])
    def test_high_throughput_surrogates_accurate(self, field, ebs, name):
        """Paper: SZx/ZFP surrogate errors are small (<~5% here, <1% at
        paper-scale data) because the surrogate is the real coder on a
        sample."""
        codec = get_compressor(name)
        true = np.array([codec.compression_ratio(field.data, eb) for eb in ebs])
        est, _ = get_surrogate(name).estimate_curve(field.data, ebs)
        assert estimation_error(true, est) < 8.0

    @pytest.mark.parametrize("name", ["sz3", "sperr"])
    def test_high_ratio_surrogates_biased(self, field, ebs, name):
        """Paper: SZ3/SPERR surrogates skip stages and carry larger error —
        which is exactly what calibration exists to fix."""
        codec = get_compressor(name)
        true = np.array([codec.compression_ratio(field.data, eb) for eb in ebs])
        est, _ = get_surrogate(name).estimate_curve(field.data, ebs)
        alpha = estimation_error(true, est)
        assert alpha > 2.0  # visibly biased...
        assert alpha < 150.0  # ...but in the right ballpark

    def test_single_ratio_matches_curve(self, field):
        sur = get_surrogate("szx")
        eb = 0.01 * field.value_range
        one = sur.estimate_ratio(field.data, eb)
        curve, _ = sur.estimate_curve(field.data, [eb])
        assert one == pytest.approx(curve[0])


class TestSpeed:
    @pytest.mark.parametrize("name", ["sz3", "sperr"])
    def test_much_faster_than_full_compressor(self, field, ebs, name):
        import time

        codec = get_compressor(name)
        t0 = time.perf_counter()
        for eb in ebs:
            codec.compression_ratio(field.data, eb)
        t_full = time.perf_counter() - t0
        _, t_est = get_surrogate(name).estimate_curve(field.data, ebs)
        assert t_est < t_full / 3


class TestValidation:
    def test_nan_rejected(self):
        sur = get_surrogate("szx")
        bad = np.ones((8, 8))
        with pytest.raises(Exception):
            sur.estimate_curve(bad * np.nan, [0.1])

    def test_empty_grid_rejected(self, field):
        with pytest.raises(ValueError):
            get_surrogate("zfp").estimate_curve(field.data, [])

    def test_bad_eb_rejected(self, field):
        with pytest.raises(ValueError):
            get_surrogate("sperr").estimate_curve(field.data, [0.0])

    def test_sz3_stride_validation(self):
        from repro.surrogate.sz3_surrogate import SZ3Surrogate

        with pytest.raises(ValueError):
            SZ3Surrogate(stride=1)
