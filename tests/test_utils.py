"""Utility-layer tests: timing, validation."""

import numpy as np
import pytest

from repro.utils.timing import Timer, TimingRecord, timed
from repro.utils.validation import (
    as_float_array,
    check_error_bound,
    check_positive_int,
    check_probability,
    require_finite,
)


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0

    def test_timer_reports_to_record(self):
        rec = TimingRecord()
        with Timer(record=rec, name="stage"):
            pass
        with Timer(record=rec, name="stage"):
            pass
        assert rec.counts["stage"] == 2
        assert rec.total("stage") >= 0
        assert rec.mean("stage") == pytest.approx(rec.total("stage") / 2)

    def test_record_merge(self):
        a, b = TimingRecord(), TimingRecord()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)
        assert "y" in a and "z" not in a

    def test_timed_decorator(self):
        @timed
        def f(x):
            return x * 2

        assert f(21) == 42
        assert f.last_elapsed >= 0

    def test_record_as_dict(self):
        rec = TimingRecord()
        rec.add("a", 1.5)
        assert rec.as_dict() == {"a": 1.5}


class TestValidation:
    def test_float32_kept(self):
        x = np.ones(4, dtype=np.float32)
        assert as_float_array(x).dtype == np.float32

    def test_int_promoted(self):
        assert as_float_array(np.ones(4, dtype=np.int32)).dtype == np.float64

    def test_float16_promoted(self):
        assert as_float_array(np.ones(4, dtype=np.float16)).dtype == np.float64

    def test_object_rejected(self):
        with pytest.raises(TypeError):
            as_float_array(np.array(["a", "b"]))

    def test_empty_rejected_unless_allowed(self):
        with pytest.raises(ValueError):
            as_float_array(np.zeros(0))
        assert as_float_array(np.zeros(0), allow_empty=True).size == 0

    def test_contiguity_enforced(self):
        x = np.ones((4, 4))[:, ::2]
        assert as_float_array(x).flags["C_CONTIGUOUS"]

    def test_require_finite(self):
        require_finite(np.ones(3))
        with pytest.raises(ValueError):
            require_finite(np.array([1.0, np.inf]))

    @pytest.mark.parametrize("bad", [0, -1, np.nan, np.inf])
    def test_check_error_bound(self, bad):
        with pytest.raises(ValueError):
            check_error_bound(bad)

    def test_check_positive_int(self):
        assert check_positive_int(5, name="n") == 5
        with pytest.raises(ValueError):
            check_positive_int(0, name="n")
        with pytest.raises(ValueError):
            check_positive_int(2.5, name="n")

    def test_check_probability(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, name="p")
