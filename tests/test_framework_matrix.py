"""Framework x codec x model-kind matrix: every combination serves requests.

The paper's portability claim in test form: both frameworks must work for
every registered compressor (including the cuSZp extension with its
fallback surrogate) and for every model family.
"""

import numpy as np
import pytest

from repro import CarolFramework, FxrzFramework, load_dataset, load_field
from repro.compressors import available_compressors

SHAPE = (12, 16, 16)
REL = np.geomspace(1e-3, 1e-1, 5)


@pytest.fixture(scope="module")
def train_fields():
    return load_dataset("miranda", shape=SHAPE)[:3]


@pytest.fixture(scope="module")
def test_field():
    return load_field("miranda/diffusivity", shape=SHAPE, seed=88)


@pytest.mark.parametrize("codec", available_compressors())
@pytest.mark.parametrize("cls", [CarolFramework, FxrzFramework], ids=["carol", "fxrz"])
def test_every_codec_every_framework(cls, codec, train_fields, test_field):
    fw = cls(compressor=codec, rel_error_bounds=REL, n_iter=3, cv=2)
    report = fw.fit(train_fields)
    assert report.n_rows == 3 * REL.size
    result, pred = fw.compress_to_ratio(test_field.data, 4.0)
    assert pred.error_bound > 0
    assert result.ratio > 1.0
    # prediction stayed within the trained error-bound envelope
    ebs = np.concatenate([r.error_bounds for r in fw.training_data.records])
    assert ebs.min() * 0.1 <= pred.error_bound <= ebs.max() * 10


@pytest.mark.parametrize("model_kind", ["forest", "gbt", "knn"])
def test_every_model_kind_end_to_end(model_kind, train_fields, test_field):
    fw = CarolFramework(
        compressor="szx", rel_error_bounds=REL, n_iter=3, cv=2, model_kind=model_kind
    )
    fw.fit(train_fields)
    assert fw.model.info.model_kind == model_kind
    result, pred = fw.compress_to_ratio(test_field.data, 4.0)
    assert result.ratio > 1.0
