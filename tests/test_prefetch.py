"""Prefetcher: deterministic prediction, advisory-only issuance.

Two halves, matching the split in :mod:`repro.store.prefetch`:

- **prediction** is a pure function of the per-key request history —
  two prefetchers fed the same stream emit identical hints, regardless
  of cache state, timing, or interleaved keys;
- **issuance** (the catalog acting on hints) fills the shared LRU ahead
  of sequential/strided scans, is fully accounted (``issued`` /
  ``hits`` / ``wasted``, mirrored as obs counters), and is never
  load-bearing: bytes served are identical with the prefetcher on, off,
  or issuing hints the LRU immediately drops — and prefetch churn can
  never corrupt tiles already in flight (streamed tiles are fresh
  copies, not cache references).
"""

import time

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field, obs
from repro.store import (
    CatalogOptions,
    Prefetcher,
    PrefetchStats,
    Store,
    StoreCatalog,
    StoreOptions,
    pack,
)

SHAPE = (40, 30, 30)  # 5x2x2 chunk grid: a slab scan strides 4 chunk ids
CHUNK = (8, 16, 16)
TARGET = 8.0
REL = np.geomspace(1e-3, 3e-1, 8)
N_CHUNKS = 20
SLAB_IDS = [list(range(4 * i, 4 * i + 4)) for i in range(5)]


def slab_region(i: int) -> tuple[slice, ...]:
    return (slice(8 * i, 8 * i + 8), slice(None), slice(None))


def drain_hints(cat: StoreCatalog, timeout: float = 60.0) -> PrefetchStats:
    """Harvest until no async hint decode remains in flight."""
    deadline = time.monotonic() + timeout
    while True:
        stats = cat.prefetch_stats()  # each snapshot harvests finished decodes
        with cat._prefetch_lock:
            if not cat._prefetch_inflight:
                return stats
        if time.monotonic() > deadline:
            raise AssertionError("async prefetch hints never drained")
        time.sleep(0.02)


class TestPrediction:
    """Pure-function half: no store, no cache, just request histories."""

    def test_hints_are_a_pure_function_of_history(self):
        a, b = Prefetcher(depth=3), Prefetcher(depth=3)
        stream = [
            ("x", SLAB_IDS[0]),
            ("y", [17, 3, 9]),  # interleaved irregular key
            ("x", SLAB_IDS[1]),
            ("y", [1]),
            ("x", SLAB_IDS[2]),
            ("x", SLAB_IDS[3]),
        ]
        hints_a = [a.predict(key, ids, N_CHUNKS) for key, ids in stream]
        hints_b = [b.predict(key, ids, N_CHUNKS) for key, ids in stream]
        assert hints_a == hints_b
        # the strided key produces hints; the irregular one never does
        assert any(h for (key, _), h in zip(stream, hints_a) if key == "x")
        assert all(not h for (key, _), h in zip(stream, hints_a) if key == "y")

    def test_sequential_run_detected(self):
        p = Prefetcher(depth=2)
        assert p.predict("k", [0], N_CHUNKS) == []
        assert p.predict("k", [1], N_CHUNKS) == []
        assert p.predict("k", [2], N_CHUNKS) == [3, 4]

    def test_strided_slab_scan_detected(self):
        p = Prefetcher(depth=4)
        assert p.predict("k", SLAB_IDS[0], N_CHUNKS) == []
        assert p.predict("k", SLAB_IDS[1], N_CHUNKS) == []
        assert p.predict("k", SLAB_IDS[2], N_CHUNKS) == SLAB_IDS[3]

    def test_reverse_scan_hints_descend(self):
        p = Prefetcher(depth=2)
        p.predict("k", [10], N_CHUNKS)
        p.predict("k", [8], N_CHUNKS)
        assert p.predict("k", [6], N_CHUNKS) == [4, 2]

    def test_hints_clipped_to_grid(self):
        p = Prefetcher(depth=4)
        for ids in SLAB_IDS[2:]:  # scan ends at the last slab
            hints = p.predict("k", ids, N_CHUNKS)
        assert hints == []  # predicted ids 20..23 all fall off the grid

    def test_hints_skip_the_current_request(self):
        p = Prefetcher(depth=4)
        # overlapping windows, stride 2: predictions overlap the request
        p.predict("k", [0, 1, 2, 3], N_CHUNKS)
        p.predict("k", [2, 3, 4, 5], N_CHUNKS)
        hints = p.predict("k", [4, 5, 6, 7], N_CHUNKS)
        assert hints and not set(hints) & {4, 5, 6, 7}

    def test_depth_caps_hint_count(self):
        p = Prefetcher(depth=1)
        p.predict("k", [0], N_CHUNKS)
        p.predict("k", [1], N_CHUNKS)
        assert p.predict("k", [2], N_CHUNKS) == [3]

    def test_forget_clears_a_key_history(self):
        p = Prefetcher(depth=2)
        for i in range(3):
            p.predict("k", [i], N_CHUNKS)
        p.forget("k")
        assert p.predict("k", [3], N_CHUNKS) == []  # run must rebuild

    def test_validation(self):
        with pytest.raises(ValueError, match="depth"):
            Prefetcher(depth=0)
        with pytest.raises(ValueError, match="min_run"):
            Prefetcher(min_run=1)

    def test_stats_shape(self):
        stats = PrefetchStats(issued=4, hits=3, wasted=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.as_dict() == {"issued": 4, "hits": 3, "wasted": 1, "hit_rate": 0.75}
        assert PrefetchStats(issued=0, hits=0, wasted=0).hit_rate == 0.0


@pytest.fixture(scope="module")
def fitted():
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=6, cv=2)
    fw.fit(load_dataset("miranda", shape=CHUNK))
    return fw


@pytest.fixture(scope="module")
def store_root(fitted, tmp_path_factory):
    root = tmp_path_factory.mktemp("prefetch")
    options = StoreOptions(chunk_shape=CHUNK)
    fields = {}
    for i, key in enumerate(["a", "b"]):
        field = load_field("miranda/pressure", shape=SHAPE, seed=30 + i)
        pack(root / f"{key}.rps", field, fitted, TARGET, options=options)
        with Store(root / f"{key}.rps") as st:
            fields[key] = st.read()
    return root, fields


class TestIssuance:
    """The catalog acting on hints, against real stores."""

    def test_sequential_scan_prefetches_and_hits(self, store_root):
        root, fields = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4)
        obs.enable()  # clears the metrics registry
        try:
            with StoreCatalog(root, options=options) as cat:
                for i in range(5):
                    out = cat.read("a", slab_region(i))
                    np.testing.assert_array_equal(out, fields["a"][slab_region(i)])
                stats = cat.prefetch_stats()
                # slabs 3 and 4 were fully prefetched after the run was seen
                assert stats.issued == 8
                assert stats.hits == 8
                assert stats.wasted == 0
                assert stats.hit_rate == 1.0
                reg = obs.registry()
                assert reg.counter("store.read.prefetch_issued").value == stats.issued
                assert reg.counter("store.read.prefetch_hits").value == stats.hits
                assert cat.stats().prefetch == stats
                assert cat.stats().as_dict()["prefetch"] == stats.as_dict()
        finally:
            obs.disable()

    def test_streamed_scan_observes_the_same_pattern(self, store_root):
        root, fields = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4)
        with StoreCatalog(root, options=options) as cat:
            for i in range(5):
                region = slab_region(i)
                sel = cat.reader("a").grid.normalize_region(region)
                out = np.zeros(tuple(s.stop - s.start for s in sel), fields["a"].dtype)
                for tile_sel, tile in cat.read_iter("a", region):
                    local = tuple(
                        slice(t.start - s.start, t.stop - s.start)
                        for t, s in zip(tile_sel, sel)
                    )
                    out[local] = tile
                np.testing.assert_array_equal(out, fields["a"][region])
            stats = cat.prefetch_stats()
            assert stats.issued == 8 and stats.hits == 8 and stats.wasted == 0

    def test_prefetch_off_by_default(self, store_root):
        root, _ = store_root
        with StoreCatalog(root) as cat:
            assert cat.prefetcher is None
            cat.read("a", slab_region(0))
            assert cat.prefetch_stats() == PrefetchStats(issued=0, hits=0, wasted=0)
            assert cat.stats().prefetch is None
            assert "prefetch" not in cat.stats().as_dict()

    def test_disabled_cache_suppresses_issuance_not_correctness(self, store_root):
        root, fields = store_root
        options = CatalogOptions(cache_bytes=0, prefetch_depth=4)
        with StoreCatalog(root, options=options) as cat:
            for i in range(5):
                np.testing.assert_array_equal(
                    cat.read("a", slab_region(i)), fields["a"][slab_region(i)]
                )
            assert cat.prefetch_stats() == PrefetchStats(issued=0, hits=0, wasted=0)

    def test_tiny_cache_counts_wasted_prefetches(self, store_root):
        root, fields = store_root
        chunk_bytes = int(np.prod(CHUNK)) * fields["a"].itemsize
        options = CatalogOptions(cache_bytes=2 * chunk_bytes + 128, prefetch_depth=4)
        with StoreCatalog(root, options=options) as cat:
            for i in range(5):
                np.testing.assert_array_equal(
                    cat.read("a", slab_region(i)), fields["a"][slab_region(i)]
                )
            stats = cat.prefetch_stats()
            # hints were issued, but a 2-chunk LRU drops most of each
            # 4-chunk prefetch wave before its request arrives
            assert stats.issued > 0
            assert stats.wasted > 0
            assert stats.hits + stats.wasted <= stats.issued

    def test_prefetch_churn_never_corrupts_inflight_tiles(self, store_root):
        """Streamed tiles are fresh copies: evicting their source chunks
        (here via another key's prefetch-heavy scan through a tiny
        cache) must not change bytes already scheduled."""
        root, fields = store_root
        chunk_bytes = int(np.prod(CHUNK)) * fields["a"].itemsize
        options = CatalogOptions(cache_bytes=2 * chunk_bytes + 128, prefetch_depth=4)
        with StoreCatalog(root, options=options) as cat:
            sel = cat.reader("a").grid.normalize_region(None)
            stream = cat.read_iter("a", max_inflight=8)
            it = iter(stream)
            first_sel, first = next(it)  # 7 more tiles already scheduled
            # churn: a scan of the other key issues prefetches that evict
            # everything the tiny LRU holds, repeatedly
            for i in range(5):
                cat.read("b", slab_region(i))
            np.testing.assert_array_equal(first, fields["a"][first_sel])
            for tile_sel, tile in it:
                np.testing.assert_array_equal(tile, fields["a"][tile_sel])

    def test_async_hint_decodes_land_in_cache_and_hit(self, store_root):
        """With a decode pool, hints are *submitted* (not run inline) and
        harvested before the next request: once the in-flight set drains,
        every predicted chunk was admitted, and the request that follows
        consumes all of them from cache."""
        root, fields = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4, workers=1)
        with StoreCatalog(root, options=options) as cat:
            for i in range(3):
                np.testing.assert_array_equal(
                    cat.read("a", slab_region(i)), fields["a"][slab_region(i)]
                )
            stats = drain_hints(cat)  # slab 3's four chunks, decoded async
            assert stats.issued == 4
            assert cat.stats().pool.submitted >= 4
            np.testing.assert_array_equal(
                cat.read("a", slab_region(3)), fields["a"][slab_region(3)]
            )
            stats = cat.prefetch_stats()
            assert stats.hits == 4 and stats.wasted == 0

    def test_async_prefetch_never_corrupts_inflight_streams(self, store_root):
        """Async hint decodes landing mid-stream (and the LRU churn they
        cause in a tiny cache) must not change bytes a read_iter already
        scheduled — streamed tiles stay fresh copies."""
        root, fields = store_root
        chunk_bytes = int(np.prod(CHUNK)) * fields["a"].itemsize
        options = CatalogOptions(
            cache_bytes=2 * chunk_bytes + 128, prefetch_depth=4, workers=1
        )
        with StoreCatalog(root, options=options) as cat:
            stream = cat.read_iter("a", max_inflight=8)
            it = iter(stream)
            first_sel, first = next(it)  # 7 more tiles already scheduled
            # churn: the other key's scan submits async hints that evict
            # everything the tiny LRU holds as they are harvested
            for i in range(5):
                cat.read("b", slab_region(i))
            cat.prefetch_stats()  # harvest whatever finished mid-stream
            np.testing.assert_array_equal(first, fields["a"][first_sel])
            for tile_sel, tile in it:
                np.testing.assert_array_equal(tile, fields["a"][tile_sel])

    def test_close_with_inflight_hints_does_not_hang(self, store_root):
        root, _ = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4, workers=1)
        with StoreCatalog(root, options=options) as cat:
            for i in range(3):
                cat.read("a", slab_region(i))
            # exit immediately: slab 3's hint decodes may still be running;
            # close() cancels them — reaching the assertion is the test
        assert cat.prefetch_stats().wasted >= 0

    def test_reregistration_mid_flight_never_serves_stale_bytes(self, store_root):
        """Re-pointing a key while its hint decodes are still on the pool
        must not let the old store's chunks serve the new key (the admit
        path drops hints whose reader was retired)."""
        root, fields = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4, workers=1)
        with StoreCatalog(root, options=options) as cat:
            for i in range(3):
                cat.read("a", slab_region(i))  # slab 3 hints now in flight
            cat.register("a", root / "b.rps")
            for i in range(5):
                np.testing.assert_array_equal(
                    cat.read("a", slab_region(i)), fields["b"][slab_region(i)]
                )
            drain_hints(cat)

    def test_pool_task_done(self, store_root):
        from repro.serve.pool import WorkerPool

        with WorkerPool(0) as pool:
            task = pool.submit(int, "7")
            assert task.done()  # deferred in-process tasks are always ready
            assert task.result() == 7
        with WorkerPool(1) as pool:
            task = pool.submit(int, "7")
            assert task.result() == 7
            assert task.done()

    def test_reregistration_forgets_history(self, store_root, tmp_path):
        root, fields = store_root
        options = CatalogOptions(cache_bytes=64 << 20, prefetch_depth=4)
        with StoreCatalog(root, options=options) as cat:
            for i in range(3):
                cat.read("a", slab_region(i))
            assert cat.prefetch_stats().issued > 0
            issued_before = cat.prefetch_stats().issued
            # re-point "a" at a different file: the old run must not
            # seed predictions for the new store
            cat.register("a", root / "b.rps")
            cat.read("a", slab_region(3))  # would extend the old run
            assert cat.prefetch_stats().issued == issued_before
            np.testing.assert_array_equal(
                cat.read("a", slab_region(4)), fields["b"][slab_region(4)]
            )
