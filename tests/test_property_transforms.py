"""Property-based tests for transforms and compressors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressors import get_compressor
from repro.compressors.speck import SpeckCoder
from repro.encoding.bitstream import BitReader, BitWriter
from repro.transforms.wavelet import cdf97_forward, cdf97_inverse, max_levels
from repro.transforms.zfp_transform import zfp_block_forward, zfp_block_inverse

_SETTINGS = dict(max_examples=25, deadline=None)

_finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


class TestWaveletProperties:
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=20),
            elements=_finite_floats,
        )
    )
    @settings(**_SETTINGS)
    def test_perfect_reconstruction_any_shape(self, x):
        levels = max_levels(x.shape, 2)
        y = cdf97_inverse(cdf97_forward(x, levels), levels)
        np.testing.assert_allclose(y, x, atol=1e-6 * max(np.abs(x).max(), 1.0))

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(**_SETTINGS)
    def test_linearity_in_scale(self, property_seed, scale):
        rng = np.random.default_rng(property_seed)
        x = rng.standard_normal((16, 16))
        a = cdf97_forward(x, 2) * scale
        b = cdf97_forward(x * scale, 2)
        np.testing.assert_allclose(a, b, atol=1e-8 * (abs(scale) + 1))


class TestZfpTransformProperties:
    @given(
        arrays(np.float64, (3, 4, 4), elements=_finite_floats),
    )
    @settings(**_SETTINGS)
    def test_inverse_property(self, blocks):
        back = zfp_block_inverse(zfp_block_forward(blocks))
        np.testing.assert_allclose(back, blocks, atol=1e-7 * max(np.abs(blocks).max(), 1.0))


class TestSpeckProperties:
    @given(
        arrays(
            np.int64,
            array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=12),
            elements=st.integers(0, 4000),
        )
    )
    @settings(**_SETTINGS)
    def test_magnitudes_round_trip(self, mag):
        neg = (mag % 2).astype(bool)
        coder = SpeckCoder()
        w = BitWriter()
        p_top = coder.encode(mag, neg, w)
        out_mag, out_neg = coder.decode(BitReader(w.bits()), mag.shape, p_top)
        np.testing.assert_array_equal(out_mag, mag)
        np.testing.assert_array_equal(out_neg[mag > 0], neg[mag > 0])


class TestCompressorProperties:
    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=2, max_side=14),
            elements=_finite_floats,
        ),
        st.sampled_from(["szx", "zfp", "sz3", "sperr"]),
        st.floats(min_value=1e-6, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_error_bound_always_holds(self, data, name, eb):
        codec = get_compressor(name)
        out, res = codec.roundtrip(data, eb)
        assert np.abs(out - data).max() <= eb * (1 + 1e-9)
        assert res.compressed_bytes > 0
