"""Byte-identity regression against checked-in golden encoded blobs.

The vectorized kernels in :mod:`repro.encoding` are contractually
byte-identical to the scalar references they replaced — and therefore to
every stream ever written by earlier versions of this repo. The fuzz tests
catch divergence between the *current* kernel and the *current* reference;
these golden blobs additionally pin the on-disk format across history: a
future "optimization" that changes the stream (even one both current
implementations agree on) fails here.

The fixtures are rebuilt deterministically from a hard-coded seed, so the
blobs never need to ship their inputs. Regenerate after an *intentional*
format change with::

    PYTHONPATH=src python -m tests.test_encoding_golden
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.compressors.sperr import SPERRCompressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZXCompressor
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.encoding.range_coder import RangeDecoder, RangeEncoder
from repro.encoding.rle import rle_bytes_decode, rle_bytes_encode

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"
_SEED = 20260805
_CENTER = 256  # SZ3-like symbol offset for the quantization-code fixture
_FIELD_EB = 1e-3

#: Whole-compressor golden payloads: the fused tile-streamed pipelines
#: are contractually byte-identical to the frozen oracles *and* to every
#: stream already on disk — these pin the full payload format (headers,
#: outlier sections, entropy streams) across history, not just the
#: entropy-coder primitives above.
_COMPRESSORS = {
    "sz3.bin": lambda: SZ3Compressor(),
    "sz3_range.bin": lambda: SZ3Compressor(entropy="range"),
    "sz3_lorenzo.bin": lambda: SZ3Compressor(predictor="lorenzo"),
    "szx.bin": lambda: SZXCompressor(),
    "sperr.bin": lambda: SPERRCompressor(chunk_edge=16),
}


def _fixture_symbols() -> np.ndarray:
    """Deterministic SZ3-like symbol stream: dominant center, normal tails."""
    rng = np.random.default_rng(_SEED)
    return _CENTER + np.clip(
        np.rint(rng.standard_normal(20000) * 4), -_CENTER, _CENTER
    ).astype(np.int64)


def _fixture_bytes() -> bytes:
    """Deterministic LZ77 input: repetitive text plus an incompressible tail."""
    rng = np.random.default_rng(_SEED + 1)
    text = rng.integers(32, 127, size=1500, dtype=np.uint8).tobytes()
    noise = rng.integers(0, 256, size=1024, dtype=np.uint8).tobytes()
    return text * 3 + noise


def _fixture_field() -> np.ndarray:
    """Deterministic smooth 3-D field for the whole-compressor payloads."""
    rng = np.random.default_rng(_SEED + 2)
    x = rng.standard_normal((20, 24, 28))
    for axis in range(3):
        x = np.cumsum(x, axis=axis)
    return x / 12.0


def _encode_all() -> dict[str, bytes]:
    syms = _fixture_symbols()
    codec = HuffmanCodec.fit(syms)
    writer = BitWriter()
    codec.encode(syms, writer)
    freq = np.bincount(syms)
    field = _fixture_field()
    out = {
        "huffman.bin": writer.getvalue(),
        "lz77.bin": lz77_compress(_fixture_bytes()),
        "range.bin": RangeEncoder(freq).encode(syms),
        "rle.bin": rle_bytes_encode(syms, zero_symbol=_CENTER),
    }
    for name, make in _COMPRESSORS.items():
        out[name] = make().compress(field, _FIELD_EB).payload
    return out


@pytest.fixture(scope="module")
def encoded() -> dict[str, bytes]:
    return _encode_all()


@pytest.mark.parametrize(
    "name",
    ["huffman.bin", "lz77.bin", "range.bin", "rle.bin", *_COMPRESSORS],
)
def test_encoded_stream_matches_golden(name: str, encoded: dict[str, bytes]) -> None:
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"golden blob {path} missing; regenerate with "
        f"PYTHONPATH=src python -m tests.test_encoding_golden"
    )
    assert encoded[name] == path.read_bytes(), (
        f"{name}: encoder output diverged bit-for-bit from the committed "
        f"golden stream — an intentional format change must regenerate the "
        f"blobs and say so in the commit"
    )


def test_golden_blobs_decode_to_fixture() -> None:
    syms = _fixture_symbols()
    codec = HuffmanCodec.fit(syms)
    freq = np.bincount(syms)

    huff = (GOLDEN_DIR / "huffman.bin").read_bytes()
    np.testing.assert_array_equal(
        codec.decode(BitReader(huff), syms.size), syms
    )
    lz = (GOLDEN_DIR / "lz77.bin").read_bytes()
    assert lz77_decompress(lz) == _fixture_bytes()
    rng_blob = (GOLDEN_DIR / "range.bin").read_bytes()
    np.testing.assert_array_equal(
        RangeDecoder(freq, rng_blob).decode(syms.size), syms
    )
    rle_blob = (GOLDEN_DIR / "rle.bin").read_bytes()
    np.testing.assert_array_equal(
        rle_bytes_decode(rle_blob, zero_symbol=_CENTER), syms
    )


@pytest.mark.parametrize("name", sorted(_COMPRESSORS))
def test_golden_compressor_payloads_decode_within_bound(name: str) -> None:
    """The committed whole-compressor streams still decode, and to the
    promised pointwise bound — format *and* semantics are pinned."""
    data = _fixture_field()
    comp = _COMPRESSORS[name]()
    result = comp.compress(data, _FIELD_EB)
    assert result.payload == (GOLDEN_DIR / name).read_bytes()
    out = comp.decompress(result)
    assert np.abs(out - data).max() <= _FIELD_EB * (1 + 1e-9)


def _write_golden() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, blob in _encode_all().items():
        (GOLDEN_DIR / name).write_bytes(blob)
        print(f"wrote {GOLDEN_DIR / name} ({len(blob)} bytes)")


if __name__ == "__main__":
    _write_golden()
