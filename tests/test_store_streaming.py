"""Streaming reads (``read_iter``): the property harness.

The streaming contract under test, end to end:

- concatenating a stream's tiles reproduces ``read()`` **byte-for-byte**
  for every worker count x tile shape x ``max_inflight`` x cache size
  (decode is pure, the tile plan is fixed up front);
- tiles arrive in the deterministic plan order
  (:meth:`ChunkGrid.tiles_for_region`) and partition the region exactly;
- in-flight decoded bytes never exceed twice the ``max_inflight`` tile
  budget (backpressure, not queueing);
- a corrupt chunk surfaces as :class:`CorruptChunkError` naming the
  chunk at *its own* yield slot — every earlier tile streams intact,
  and the reader stays usable afterward.

The store shape is deliberately not divisible by the chunk shape on any
axis, so every configuration also crosses edge-clipped chunks.
"""

import re
import shutil

import numpy as np
import pytest

from repro import CarolFramework, load_dataset, load_field, obs
from repro.store import (
    CatalogOptions,
    CorruptChunkError,
    Store,
    StoreCatalog,
    StoreOptions,
    pack,
)

SHAPE = (20, 30, 30)  # 8 ∤ 20, 16 ∤ 30: edge-clipped chunks on every axis
CHUNK = (8, 16, 16)
TARGET = 8.0
REL = np.geomspace(1e-3, 3e-1, 8)

WORKER_COUNTS = (0, 1, 2, 4)
CACHE_SIZES = (0, 64 << 20)
MAX_INFLIGHT = (1, 2, 8)
TILE_SHAPES = (None, CHUNK, (5, 12, 16), SHAPE)


@pytest.fixture(scope="module")
def fitted():
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=6, cv=2)
    fw.fit(load_dataset("miranda", shape=CHUNK))
    return fw


@pytest.fixture(scope="module")
def store_root(fitted, tmp_path_factory):
    """One packed store plus the exact bytes any correct read returns."""
    root = tmp_path_factory.mktemp("streaming")
    field = load_field("miranda/pressure", shape=SHAPE, seed=7)
    pack(root / "field.rps", field, fitted, TARGET, options=StoreOptions(chunk_shape=CHUNK))
    with Store(root / "field.rps") as st:
        expected = st.read()
    return root, expected


def random_region(rng) -> tuple[slice, ...]:
    """A non-empty axis-aligned box at seeded-random offsets."""
    region = []
    for n in SHAPE:
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo + 1, n + 1))
        region.append(slice(lo, hi))
    return tuple(region)


def assemble(stream, sel, dtype):
    """Scatter a stream into a region-shaped buffer; returns the buffer
    and the observed tile order. Asserts the tiles partition the region
    (every cell written exactly once)."""
    out_shape = tuple(s.stop - s.start for s in sel)
    out = np.zeros(out_shape, dtype=dtype)
    covered = np.zeros(out_shape, dtype=bool)
    order = []
    for tile_sel, tile in stream:
        local = tuple(
            slice(t.start - s.start, t.stop - s.start) for t, s in zip(tile_sel, sel)
        )
        assert not covered[local].any(), "tile overlaps an earlier tile"
        covered[local] = True
        out[local] = tile
        order.append(tile_sel)
    assert covered.all(), "tiles did not cover the region"
    return out, order


class TestStreamMatchesRead:
    """The property cross: every configuration streams the same bytes."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cache_bytes", CACHE_SIZES)
    def test_byte_identity_across_configurations(
        self, store_root, workers, cache_bytes, property_rng
    ):
        root, expected = store_root
        regions = [
            None,  # whole field
            (slice(16, 20), slice(16, 30), slice(16, 30)),  # pure edge-clipped corner
            random_region(property_rng),
            random_region(property_rng),
        ]
        options = CatalogOptions(cache_bytes=cache_bytes, workers=workers)
        with StoreCatalog(root, options=options) as cat:
            reader = cat.reader("field")
            for region in regions:
                sel = reader.grid.normalize_region(region)
                want = expected[sel]
                plan = reader.grid.tiles_for_region(sel)
                for tile in TILE_SHAPES:
                    for max_inflight in MAX_INFLIGHT:
                        stream = cat.read_iter(
                            "field", region, tile=tile, max_inflight=max_inflight
                        )
                        got, order = assemble(stream, sel, expected.dtype)
                        assert got.tobytes() == want.tobytes()
                        # deterministic plan order, independent of config
                        assert order == reader.grid.tiles_for_region(sel, tile)
                        stats = stream.stats
                        assert stats.tiles_yielded == stats.tiles_total == len(order)
                        assert stats.peak_inflight_bytes <= 2 * stats.budget_bytes
                assert plan == reader.grid.tiles_for_region(sel)  # plan is pure

    def test_empty_region_yields_nothing(self, store_root):
        root, _ = store_root
        with Store(root / "field.rps") as st:
            for tile in TILE_SHAPES:
                stream = st.read_iter(
                    (slice(5, 5), slice(0, 30), slice(0, 30)), tile=tile
                )
                assert list(stream) == []
                assert stream.stats.tiles_total == 0
                assert stream.stats.peak_inflight_bytes == 0

    def test_plain_reader_and_catalog_streams_agree(self, store_root):
        root, expected = store_root
        with Store(root / "field.rps") as st:
            sel = st.grid.normalize_region(None)
            got, order = assemble(st.read_iter(max_inflight=4), sel, expected.dtype)
        np.testing.assert_array_equal(got, expected)
        assert order == st.grid.tiles_for_region(None)

    def test_stream_is_context_manager(self, store_root):
        root, expected = store_root
        with Store(root / "field.rps") as st:
            with st.read_iter(max_inflight=2) as stream:
                tile_sel, tile = next(iter(stream))
                np.testing.assert_array_equal(tile, expected[tile_sel])
            # closed: abandoned look-ahead, iteration over
            assert list(stream) == []


class TestBackpressure:
    def test_peak_stays_within_budget_and_below_materialized(self, store_root):
        root, expected = store_root
        with Store(root / "field.rps") as st:
            stream = st.read_iter(max_inflight=1)
            for _ in stream:
                pass
            stats = stream.stats
        assert 0 < stats.peak_inflight_bytes <= 2 * stats.budget_bytes
        # streaming the whole field never holds the whole field
        assert stats.budget_bytes < expected.nbytes

    @pytest.mark.parametrize("max_inflight", MAX_INFLIGHT)
    def test_budget_scales_with_max_inflight(self, store_root, max_inflight):
        root, _ = store_root
        with Store(root / "field.rps") as st:
            stream = st.read_iter(max_inflight=max_inflight)
            stats = stream.stats
            assert stats.budget_bytes == max_inflight * stats.max_tile_cost_bytes
            stream.close()

    def test_invalid_arguments_rejected(self, store_root):
        root, _ = store_root
        with Store(root / "field.rps") as st:
            with pytest.raises(ValueError, match="max_inflight"):
                st.read_iter(max_inflight=0)
            with pytest.raises(ValueError, match="rank"):
                st.read_iter(tile=(8, 16))
            with pytest.raises(ValueError, match="positive"):
                st.read_iter(tile=(0, 16, 16))


class TestCorruptionMidStream:
    """A bitflipped or truncated chunk fails *its* tile, in order."""

    @pytest.fixture()
    def corrupt_store(self, store_root, tmp_path):
        """A copy of the store with one mid-file chunk bitflipped.

        Returns ``(path, coords, bad_id)`` where ``bad_id`` is the
        victim's flat chunk id — with ``tile=None`` streams, also the
        index of the tile that must raise.
        """
        root, _ = store_root
        path = tmp_path / "corrupt.rps"
        shutil.copyfile(root / "field.rps", path)
        with Store(path) as st:
            grid = st.grid
            bad_id = grid.n_chunks // 2
            coords = grid.chunk(bad_id).coords
            victim = st.chunk_entry(coords)
        blob = bytearray(path.read_bytes())
        blob[victim["offset"]] ^= 0xFF
        path.write_bytes(bytes(blob))
        return path, coords, bad_id

    @pytest.mark.parametrize("workers", (0, 2))
    @pytest.mark.parametrize("max_inflight", (1, 8))
    def test_bitflip_raises_at_its_tile_after_earlier_tiles(
        self, corrupt_store, store_root, workers, max_inflight, tmp_path
    ):
        path, coords, bad_id = corrupt_store
        _, expected = store_root
        options = CatalogOptions(cache_bytes=0, workers=workers)
        with StoreCatalog(tmp_path, options=options) as cat:
            cat.register("bad", path)
            stream = cat.read_iter("bad", max_inflight=max_inflight)
            it = iter(stream)
            # with max_inflight=8 the error is *captured* while earlier
            # tiles are still pending; it must still be *raised* in order
            for _ in range(bad_id):
                tile_sel, tile = next(it)
                np.testing.assert_array_equal(tile, expected[tile_sel])
            with pytest.raises(CorruptChunkError, match=re.escape(str(coords))):
                next(it)
            assert stream.stats.tiles_yielded == bad_id

            # the reader survives: clean chunks and fresh streams still work
            reader = cat.reader("bad")
            clean = reader.grid.chunk(0)
            np.testing.assert_array_equal(
                cat.read_chunk("bad", clean.coords), expected[clean.slices]
            )
            clean_region = tuple(slice(0, c) for c in CHUNK)
            sel = reader.grid.normalize_region(clean_region)
            got, _ = assemble(
                cat.read_iter("bad", clean_region), sel, expected.dtype
            )
            assert got.tobytes() == expected[sel].tobytes()

    def test_truncated_payload_raises_in_order(self, store_root, tmp_path):
        root, expected = store_root
        path = tmp_path / "trunc.rps"
        shutil.copyfile(root / "field.rps", path)
        with Store(path) as st:
            bad_id = st.grid.n_chunks // 2
            coords = st.grid.chunk(bad_id).coords
            # lie about the payload length: the fetch comes up short
            st._entries[coords]["nbytes"] = 1 << 30
            it = iter(st.read_iter(max_inflight=2))
            for _ in range(bad_id):
                tile_sel, tile = next(it)
                np.testing.assert_array_equal(tile, expected[tile_sel])
            with pytest.raises(CorruptChunkError, match="truncated"):
                next(it)

    def test_close_midway_leaves_reader_usable(self, store_root):
        root, expected = store_root
        options = CatalogOptions(cache_bytes=0, workers=2)
        with StoreCatalog(root, options=options) as cat:
            stream = cat.read_iter("field", max_inflight=8)
            next(iter(stream))
            stream.close()  # cancels the look-ahead decodes
            assert list(stream) == []
            np.testing.assert_array_equal(cat.read("field"), expected)


class TestStreamObservability:
    def test_tiles_streamed_counter(self, store_root):
        root, _ = store_root
        obs.enable()  # clears the metrics registry
        try:
            with Store(root / "field.rps") as st:
                n = sum(1 for _ in st.read_iter())
                reg = obs.registry()
                assert reg.counter("store.read.tiles_streamed").value == n
        finally:
            obs.disable()
