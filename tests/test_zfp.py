"""ZFP-specific behaviour: block partitioning, step-wise ratio function."""

import numpy as np
import pytest

from repro.compressors.zfp import ZFPCompressor, _blockize, _unblockize


class TestBlockize:
    @pytest.mark.parametrize("shape", [(8,), (7,), (8, 12), (9, 10), (4, 8, 6), (5, 6, 7)])
    def test_round_trip(self, rng, shape):
        x = rng.standard_normal(shape)
        blocks, padded = _blockize(x)
        assert blocks.shape[1:] == (4,) * len(shape)
        back = _unblockize(blocks, padded, shape)
        np.testing.assert_array_equal(back, x)

    def test_padding_uses_edge_values(self):
        x = np.arange(6.0)
        blocks, padded = _blockize(x)
        assert padded == (8,)
        assert blocks[1, 2] == x[5] and blocks[1, 3] == x[5]


class TestStepwiseRatio:
    def test_many_ebs_same_ratio(self, smooth3d):
        """ZFP's compression function is a staircase: nearby error bounds
        hit the same number of bit planes (paper Section 6.2.1)."""
        codec = ZFPCompressor()
        ebs = np.geomspace(1e-3, 1e-2, 12)
        ratios = np.array([codec.compression_ratio(smooth3d, eb) for eb in ebs])
        assert np.unique(np.round(ratios, 6)).size < ratios.size

    def test_doubling_eb_changes_ratio(self, smooth3d):
        codec = ZFPCompressor()
        r1 = codec.compression_ratio(smooth3d, 1e-4)
        r2 = codec.compression_ratio(smooth3d, 1e-1)
        assert r2 > r1 * 1.3


class TestAccuracyMargin:
    def test_error_well_within_bound(self, smooth3d):
        """Guard bits keep the max error a factor below the bound."""
        codec = ZFPCompressor()
        out, _ = codec.roundtrip(smooth3d, 1e-2)
        assert np.abs(out - smooth3d).max() <= 1e-2 / 2

    def test_mixed_magnitude_blocks(self, rng):
        """Per-block exponents handle wildly different block scales."""
        x = rng.standard_normal((8, 8))
        x[:4] *= 1e8
        x[4:] *= 1e-8
        out, _ = ZFPCompressor().roundtrip(x, 1e-4)
        assert np.abs(out - x).max() <= 1e-4

    def test_negative_heavy_data(self, rng):
        x = -np.abs(np.cumsum(rng.standard_normal((16, 16)), axis=0)) - 5.0
        out, _ = ZFPCompressor().roundtrip(x, 1e-3)
        assert np.abs(out - x).max() <= 1e-3


class TestDimensionality:
    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            ZFPCompressor().compress(np.zeros((2, 2, 2, 2)), 0.1)

    @pytest.mark.parametrize("shape", [(100,), (33, 17), (9, 13, 11)])
    def test_odd_shapes(self, rng, shape):
        x = np.cumsum(rng.standard_normal(shape), axis=0)
        out, _ = ZFPCompressor().roundtrip(x, 1e-3)
        assert out.shape == shape
        assert np.abs(out - x).max() <= 1e-3
