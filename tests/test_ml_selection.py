"""KFold, search space, grid search unit tests."""

import numpy as np
import pytest

from repro.ml.grid_search import RandomizedGridSearch
from repro.ml.kfold import KFold, cross_val_score
from repro.ml.forest import RandomForestRegressor
from repro.ml.space import PAPER_SPACE, SCALED_SPACE, Choice, IntRange, SearchSpace


class TestKFold:
    def test_partitions_disjoint_and_complete(self):
        kf = KFold(n_splits=4, random_state=0)
        seen = []
        for train, test in kf.split(23):
            assert np.intersect1d(train, test).size == 0
            seen.append(test)
        all_test = np.concatenate(seen)
        np.testing.assert_array_equal(np.sort(all_test), np.arange(23))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_deterministic_shuffle(self):
        a = [t.tolist() for _, t in KFold(3, random_state=1).split(12)]
        b = [t.tolist() for _, t in KFold(3, random_state=1).split(12)]
        assert a == b

    def test_cross_val_score_shape(self, rng):
        X = rng.random((60, 3))
        y = X[:, 0]
        scores = cross_val_score(
            lambda: RandomForestRegressor(n_estimators=3, random_state=0), X, y, cv=3
        )
        assert scores.shape == (3,)
        assert (scores <= 1.0).all()


class TestSpace:
    def test_int_range_encode_decode(self):
        spec = IntRange(90, 1200, 10)
        for v in (90, 500, 1200):
            assert spec.decode(spec.encode(v)) == v

    def test_choice_encode_decode(self):
        spec = Choice(("auto", "sqrt"))
        for v in ("auto", "sqrt"):
            assert spec.decode(spec.encode(v)) == v

    def test_decode_clamps(self):
        spec = IntRange(10, 20)
        assert spec.decode(-0.5) == 10
        assert spec.decode(1.5) == 20

    def test_paper_space_cardinality(self):
        # six axes; the paper quotes ~396 000 unique configurations
        assert 300_000 < PAPER_SPACE.size() < 500_000

    def test_sample_in_bounds(self, rng):
        for _ in range(20):
            params = PAPER_SPACE.sample(rng)
            assert 90 <= params["n_estimators"] <= 1200
            assert params["max_features"] in ("auto", "sqrt")
            assert 10 <= params["max_depth"] <= 110
            assert params["min_samples_split"] in (2, 5, 10)
            assert params["min_samples_leaf"] in (1, 2, 4)
            assert isinstance(params["bootstrap"], bool)

    def test_vector_round_trip(self, rng):
        params = SCALED_SPACE.sample(rng)
        vec = SCALED_SPACE.encode(params)
        assert ((0 <= vec) & (vec <= 1)).all()
        assert SCALED_SPACE.decode(vec) == params

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})

    def test_grid_axes(self):
        axes = SCALED_SPACE.grid_axes()
        assert set(axes) == set(SCALED_SPACE.names)
        assert axes["min_samples_split"] == [2, 5, 10]


class TestGridSearch:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(3)
        X = rng.random((90, 6))
        y = 3 * X[:, 0] + np.sin(5 * X[:, 1])
        return X, y

    def test_finds_reasonable_model(self, data):
        X, y = data
        res = RandomizedGridSearch(SCALED_SPACE, n_iter=3, cv=3, random_state=0).fit(X, y)
        assert res.best_score > 0.3
        assert len(res.records) == 3
        assert res.model.predict(X).shape == (90,)

    def test_unique_configurations(self, data):
        X, y = data
        res = RandomizedGridSearch(SCALED_SPACE, n_iter=5, cv=3, random_state=0).fit(X, y)
        keys = [tuple(sorted(r.params.items())) for r in res.records]
        assert len(set(keys)) == len(keys)

    def test_records_have_timing_and_memory(self, data):
        X, y = data
        res = RandomizedGridSearch(SCALED_SPACE, n_iter=2, cv=3).fit(X, y)
        for rec in res.records:
            assert rec.fit_seconds > 0
            assert rec.memory_bytes > 0
        assert res.total_fit_seconds <= res.elapsed + 1e-6
