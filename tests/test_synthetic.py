"""Spectral synthesis primitives."""

import numpy as np
import pytest

from repro.data.synthetic import (
    current_sheet_field,
    front_field,
    gaussian_random_field,
    lognormal_field,
    vortex_field,
)


class TestGRF:
    def test_normalized(self):
        g = gaussian_random_field((32, 32), slope=-3.0, seed=1)
        assert g.std() == pytest.approx(1.0, rel=1e-6)

    def test_deterministic(self):
        a = gaussian_random_field((16, 16), seed=5)
        b = gaussian_random_field((16, 16), seed=5)
        np.testing.assert_array_equal(a, b)

    def test_steeper_slope_smoother(self):
        smooth = gaussian_random_field((64, 64), slope=-4.0, seed=2)
        rough = gaussian_random_field((64, 64), slope=-1.0, seed=2)
        def roughness(x):
            return np.abs(np.diff(x, axis=0)).mean() / x.std()
        assert roughness(smooth) < 0.5 * roughness(rough)

    def test_phase_shift_evolves(self):
        a = gaussian_random_field((32, 32), seed=3, phase_shift=0.0)
        b = gaussian_random_field((32, 32), seed=3, phase_shift=0.02)
        assert not np.array_equal(a, b)
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.2

    def test_anisotropy_changes_directional_roughness(self):
        iso = gaussian_random_field((64, 64), slope=-3.0, seed=4)
        aniso = gaussian_random_field((64, 64), slope=-3.0, seed=4, anisotropy=(1.0, 4.0))
        def dir_rough(x, axis):
            return np.abs(np.diff(x, axis=axis)).mean()
        ratio_iso = dir_rough(iso, 0) / dir_rough(iso, 1)
        ratio_aniso = dir_rough(aniso, 0) / dir_rough(aniso, 1)
        assert ratio_aniso > ratio_iso

    @pytest.mark.parametrize("shape", [(64,), (16, 16), (8, 12, 10)])
    def test_shapes(self, shape):
        assert gaussian_random_field(shape, seed=0).shape == shape


class TestDerivedFields:
    def test_lognormal_positive(self):
        f = lognormal_field((16, 16, 16), seed=6)
        assert (f > 0).all()

    def test_vortex_peak_near_ring(self):
        v = vortex_field((64, 64), center=(0.5, 0.5), radius=0.2)
        assert v.max() > 0
        peak = np.unravel_index(np.argmax(v), v.shape)
        r = np.hypot(peak[0] / 64 - 0.5, peak[1] / 64 - 0.5)
        assert 0.1 < r < 0.3

    def test_front_bounded(self):
        f = front_field((24, 24), seed=7)
        assert np.abs(f).max() <= 1.0 + 1e-9

    def test_current_sheet_positive_peaks(self):
        f = current_sheet_field((24, 24), seed=8)
        assert f.max() > 0.8  # sheets reach the sech^2 peak
