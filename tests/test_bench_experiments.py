"""Smoke tests for the experiment functions at the tiny scale.

The benchmark suite is a deliverable; these tests keep every experiment
function importable and runnable (correct table structure, no crashes)
without paying benchmark-scale runtimes in the unit suite.
"""

from repro.bench.harness import _SCALES

TINY = _SCALES["tiny"]


class TestCurveExperiments:
    def test_fig2(self):
        from repro.bench.experiments import fig2_surrogate_curves

        table = fig2_surrogate_curves(TINY)
        for codec in ("szx", "zfp", "sz3", "sperr"):
            assert codec in table
        assert "speedup" in table

    def test_fig3(self):
        from repro.bench.experiments import fig3_calibration_curves

        table = fig3_calibration_curves(TINY)
        assert "alpha% before" in table and "alpha% after" in table

    def test_fig10(self):
        from repro.bench.experiments import fig10_calibrated_curves

        table = fig10_calibrated_curves(TINY)
        assert "calibrated" in table

    def test_ablation_entropy(self):
        from repro.bench.experiments import ablation_entropy

        table = ablation_entropy(TINY)
        assert "ratio range" in table or "range" in table


class TestModelExperiments:
    def test_fig5b(self):
        from repro.bench.experiments_model import fig5b_bo_convergence

        table = fig5b_bo_convergence(TINY)
        assert "it0" in table

    def test_fig9_runs_at_tiny_scale(self):
        # fig9 uses the near-paper _TIMING_SHAPES keyed by scale name; the
        # tiny profile is not registered there, by design.
        from repro.bench.experiments_model import _TIMING_SHAPES

        assert set(_TIMING_SHAPES) == {"small", "medium"}

    def test_modeled_walltime_exposed(self):
        from repro.bench.experiments_model import _modeled_parallel_walltime  # noqa: F401


class TestScaleRegistry:
    def test_tiny_not_default(self, monkeypatch):
        from repro.bench.harness import get_scale

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_tiny_selectable(self, monkeypatch):
        from repro.bench.harness import get_scale

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale().n_ebs == 5
