"""FRaZ iterative search, quality metrics, ZFP fixed-rate mode."""

import numpy as np
import pytest

from repro.compressors.zfp import ZFPCompressor
from repro.core.fraz import FrazSearch
from repro.core.quality import max_abs_error, nrmse, psnr, rmse
from repro.data import load_field

SHAPE = (16, 24, 24)


class TestQualityMetrics:
    def test_identical_arrays(self, smooth2d):
        assert rmse(smooth2d, smooth2d) == 0.0
        assert nrmse(smooth2d, smooth2d) == 0.0
        assert psnr(smooth2d, smooth2d) == float("inf")
        assert max_abs_error(smooth2d, smooth2d) == 0.0

    def test_known_values(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.0, 0.5])
        assert rmse(a, b) == pytest.approx(np.sqrt(0.125))
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.125))
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_psnr_decreases_with_noise(self, rng, smooth2d):
        small = smooth2d + 1e-4 * rng.standard_normal(smooth2d.shape)
        big = smooth2d + 1e-2 * rng.standard_normal(smooth2d.shape)
        assert psnr(smooth2d, small) > psnr(smooth2d, big)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_constant_original(self):
        c = np.full(10, 2.0)
        assert nrmse(c, c) == 0.0
        assert nrmse(c, c + 1.0) == float("inf")


class TestFrazSearch:
    @pytest.fixture(scope="class")
    def field(self):
        return load_field("miranda/viscosity", shape=SHAPE)

    def test_converges_to_achievable_target(self, field):
        fraz = FrazSearch("szx", tolerance=0.1, max_iterations=14)
        out = fraz.compress_to_ratio(field.data, 8.0)
        assert out.converged
        assert abs(out.achieved_ratio - 8.0) / 8.0 <= 0.1
        assert out.n_compressions >= 3

    def test_costs_multiple_compressions(self, field):
        """Section 3.2: trial-and-error pays several full compressions."""
        fraz = FrazSearch("szx", tolerance=0.02, max_iterations=14)
        out = fraz.compress_to_ratio(field.data, 10.0)
        assert out.n_compressions >= 4
        assert len(out.history) == out.n_compressions

    def test_target_below_achievable_clamps(self, field):
        fraz = FrazSearch("szx", max_iterations=6)
        out = fraz.compress_to_ratio(field.data, 0.5)  # < ratio at tiny eb
        # settles at the smallest achievable ratio (lo bracket end)
        assert out.achieved_ratio >= 1.0
        assert out.n_compressions <= 2

    def test_target_above_achievable_clamps(self, field):
        fraz = FrazSearch("szx", max_iterations=6)
        out = fraz.compress_to_ratio(field.data, 1e7)
        assert out.n_compressions <= 3  # both ends checked, hi wins

    def test_monotone_history(self, field):
        """Bisection keeps the bracket: ratios at lo/hi straddle target."""
        fraz = FrazSearch("sperr", tolerance=0.05, max_iterations=10)
        out = fraz.compress_to_ratio(field.data, 12.0)
        ebs = np.array([eb for eb, _ in out.history])
        ratios = np.array([r for _, r in out.history])
        order = np.argsort(ebs)
        assert (np.diff(ratios[order]) >= -1e-9 * ratios[order][:-1]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FrazSearch("szx", tolerance=0.0)
        with pytest.raises(ValueError):
            FrazSearch("szx", max_iterations=0)
        with pytest.raises(ValueError):
            FrazSearch("szx", rel_eb_bracket=(0.5, 0.1))
        with pytest.raises(ValueError):
            FrazSearch("szx").compress_to_ratio(np.ones(10), -1.0)
        with pytest.raises(ValueError):
            FrazSearch("szx").compress_to_ratio(np.ones(10), 8.0, initial_eb=0.0)
        with pytest.raises(ValueError):
            FrazSearch("szx").compress_to_ratio(np.ones(10), 8.0, initial_eb=-1e-3)

    def test_warm_start_beats_cold(self, field):
        """The control plane's T2 economics: seeding the search with a
        good guess must cost strictly fewer compressions than the cold
        bracket (this is what makes per-chunk escalation affordable)."""
        fraz = FrazSearch("szx", tolerance=0.05, max_iterations=14)
        cold = fraz.compress_to_ratio(field.data, 8.0)
        warm = fraz.compress_to_ratio(
            field.data, 8.0, initial_eb=cold.error_bound
        )
        assert warm.converged
        assert warm.n_compressions < cold.n_compressions

    def test_warm_start_far_guess_still_converges(self, field):
        """The accelerating bracket: a guess off by orders of magnitude
        doubles its log step each probe instead of crawling."""
        fraz = FrazSearch("szx", tolerance=0.1, max_iterations=12)
        anchor = fraz.compress_to_ratio(field.data, 8.0)
        for factor in (1e3, 1e-3):
            out = fraz.compress_to_ratio(
                field.data, 8.0, initial_eb=anchor.error_bound * factor
            )
            assert out.converged, factor
            assert abs(out.achieved_ratio - 8.0) / 8.0 <= 0.1


class TestZfpFixedRate:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(7)
        return np.cumsum(np.cumsum(rng.standard_normal((36, 40)), 0), 1) / 10

    def test_size_tracks_rate(self, data):
        z = ZFPCompressor()
        sizes = [z.compress_fixed_rate(data, r).compressed_bytes for r in (2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]
        # within ~60% of the nominal budget (headers + any-bits overhead)
        nominal = data.size * 4 / 8
        assert sizes[1] <= nominal * 1.6

    def test_round_trip_and_error_decreases_with_rate(self, data):
        z = ZFPCompressor()
        errs = []
        for rate in (2, 8, 20):
            res = z.compress_fixed_rate(data, rate)
            out = z.decompress(res)
            assert out.shape == data.shape
            errs.append(np.abs(out - data).max())
        assert errs[0] > errs[1] > errs[2]

    def test_no_error_guarantee_at_low_rate(self, data):
        """The paper's point: fixed rate gives size, not quality."""
        z = ZFPCompressor()
        res = z.compress_fixed_rate(data, 1.0)
        out = z.decompress(res)
        # at 1 bit/value the reconstruction is visibly degraded
        assert np.abs(out - data).max() > 1e-3 * np.abs(data).max()

    def test_fixed_accuracy_beats_fixed_rate_quality(self, data):
        """At matched compressed size, error-bounded mode reconstructs
        better — Section 2.2's motivating claim."""
        from repro.core.quality import psnr

        z = ZFPCompressor()
        fr = z.compress_fixed_rate(data, 6.0)
        # Find the error bound whose size matches the fixed-rate stream.
        target_size = fr.compressed_bytes
        ebs = np.geomspace(1e-7, 1.0, 28) * (data.max() - data.min())
        best = None
        for eb in ebs:
            res = z.compress(data, eb)
            if best is None or abs(res.compressed_bytes - target_size) < abs(
                best.compressed_bytes - target_size
            ):
                best = res
        q_rate = psnr(data, z.decompress(fr))
        q_acc = psnr(data, z.decompress(best))
        assert q_acc >= q_rate - 1.0  # never meaningfully worse

    def test_invalid_rate(self, data):
        with pytest.raises(ValueError):
            ZFPCompressor().compress_fixed_rate(data, 0.0)
