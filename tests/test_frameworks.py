"""End-to-end framework tests: FXRZ baseline and CAROL."""

import numpy as np
import pytest

from repro import CarolFramework, FxrzFramework, get_compressor, load_dataset, load_field

SHAPE = (16, 24, 24)
REL = np.geomspace(1e-3, 1e-1, 6)


@pytest.fixture(scope="module")
def train_fields():
    return load_dataset("miranda", shape=SHAPE)[:4]


@pytest.fixture(scope="module")
def test_field():
    return load_field("miranda/pressure", shape=SHAPE, seed=321)


@pytest.fixture(scope="module")
def fitted_carol(train_fields):
    fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=3)
    fw.fit(train_fields)
    return fw


@pytest.fixture(scope="module")
def fitted_fxrz(train_fields):
    fw = FxrzFramework(compressor="szx", rel_error_bounds=REL, n_iter=3, cv=3)
    fw.fit(train_fields)
    return fw


class TestSetup:
    def test_setup_report_populated(self, fitted_carol):
        rep = fitted_carol.setup_report
        assert rep.framework == "carol"
        assert rep.collection_seconds > 0
        assert rep.training_seconds > 0
        assert rep.n_rows == 4 * REL.size
        assert rep.training_info.method == "bayesopt"

    def test_fxrz_uses_grid_search(self, fitted_fxrz):
        assert fitted_fxrz.setup_report.training_info.method == "grid"

    def test_carol_records_calibration(self, fitted_carol):
        recs = fitted_carol.training_data.records
        assert all(r.source == "calibrated" for r in recs)


class TestInference:
    def test_predict_error_bound(self, fitted_carol, test_field):
        pred = fitted_carol.predict_error_bound(test_field.data, target_ratio=5.0)
        assert pred.error_bound > 0
        assert pred.feature_seconds >= 0
        assert pred.features.shape == (5,)

    def test_compress_to_ratio_end_to_end(self, fitted_carol, test_field):
        result, pred = fitted_carol.compress_to_ratio(test_field.data, target_ratio=5.0)
        codec = get_compressor("szx")
        recon = codec.decompress(result)
        assert np.abs(recon - test_field.data).max() <= pred.error_bound * (1 + 1e-9)
        # achieved ratio within a reasonable band of the request
        assert 0.3 * 5.0 < result.ratio < 3.0 * 5.0

    def test_higher_target_higher_eb(self, fitted_carol, test_field):
        lo = fitted_carol.predict_error_bound(test_field.data, 3.0).error_bound
        hi = fitted_carol.predict_error_bound(test_field.data, 20.0).error_bound
        assert hi >= lo

    def test_evaluate_targets_alpha(self, fitted_carol, test_field):
        codec = get_compressor("szx")
        ebs = REL[1:5] * test_field.value_range
        targets = [codec.compression_ratio(test_field.data, eb) for eb in ebs]
        report = fitted_carol.evaluate_targets(test_field.data, targets)
        assert report.alpha < 60.0  # sane accuracy at this tiny scale
        assert report.achieved.shape == (4,)
        assert (report.predicted_ebs > 0).all()


class TestAccuracyParity:
    def test_carol_within_band_of_fxrz(self, fitted_carol, fitted_fxrz, test_field):
        """The paper's headline: CAROL's accuracy is close to FXRZ's."""
        codec = get_compressor("szx")
        ebs = REL[1:5] * test_field.value_range
        targets = [codec.compression_ratio(test_field.data, eb) for eb in ebs]
        a_carol = fitted_carol.evaluate_targets(test_field.data, targets).alpha
        a_fxrz = fitted_fxrz.evaluate_targets(test_field.data, targets).alpha
        # at this miniature scale allow a generous parity band
        assert a_carol < a_fxrz + 35.0

    def test_carol_collection_faster_for_high_ratio_codec(self):
        # A dense grid (4 calibration points out of 12, like the paper's
        # 4/35) and fields large enough that the compressor dominates the
        # surrogate's fixed overhead — otherwise timing is a coin flip.
        fields = load_dataset("miranda", shape=(24, 36, 36))[:2]
        rel = np.geomspace(1e-3, 1e-1, 12)
        carol = CarolFramework(compressor="sperr", rel_error_bounds=rel, n_iter=3, cv=2)
        fxrz = FxrzFramework(compressor="sperr", rel_error_bounds=rel, n_iter=3, cv=2)
        rc = carol.fit(fields)
        rf = fxrz.fit(fields)
        assert rc.collection_seconds < rf.collection_seconds


class TestRefinement:
    def test_refine_merges_and_warm_starts(self, train_fields):
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=4, cv=2)
        fw.fit(train_fields[:2])
        rows_before = fw.training_data.n_rows
        evals_before = fw.model.info.n_evaluations
        rep = fw.refine(train_fields[2:4])
        assert fw.training_data.n_rows == rows_before + 2 * REL.size
        # warm start: fewer fresh evaluations than a cold fit
        assert fw.model.info.n_evaluations <= evals_before
        assert rep.n_rows == fw.training_data.n_rows

    def test_refine_without_fit_falls_back(self, train_fields):
        fw = CarolFramework(compressor="szx", rel_error_bounds=REL, n_iter=3, cv=2)
        rep = fw.refine(train_fields[:2])
        assert rep.n_rows == 2 * REL.size


class TestValidation:
    def test_unknown_compressor(self):
        with pytest.raises(KeyError):
            CarolFramework(compressor="rar")

    def test_predict_before_fit(self, test_field):
        fw = CarolFramework(compressor="szx")
        with pytest.raises(RuntimeError):
            fw.predict_error_bound(test_field.data, 5.0)
