"""Alternative ML models (boosting, kNN) and the model registry."""

import numpy as np
import pytest

from repro.core.collection import TrainingCollector
from repro.core.prediction import ErrorBoundModel
from repro.core.training import train_model
from repro.data import load_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.models import MODEL_KINDS, default_space, make_model


@pytest.fixture(scope="module")
def xy():
    rng = np.random.default_rng(1)
    X = rng.random((250, 4))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(250)
    return X, y


class TestBoosting:
    def test_fits_nonlinear_function(self, xy):
        X, y = xy
        m = GradientBoostingRegressor(n_estimators=80, learning_rate=0.2, random_state=0)
        m.fit(X, y)
        assert m.score(X, y) > 0.9

    def test_more_stages_monotone_train_score(self, xy):
        X, y = xy
        m = GradientBoostingRegressor(n_estimators=50, learning_rate=0.2, random_state=0).fit(X, y)
        staged = m.staged_score(X, y)
        assert staged[-1] > staged[0]
        assert staged[-1] == pytest.approx(m.score(X, y), abs=1e-9)

    def test_subsample(self, xy):
        X, y = xy
        m = GradientBoostingRegressor(n_estimators=20, subsample=0.5, random_state=0).fit(X, y)
        assert m.score(X, y) > 0.5

    @pytest.mark.parametrize(
        "bad", [{"n_estimators": 0}, {"learning_rate": 0.0}, {"subsample": 1.5}]
    )
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(**bad)

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((1, 2)))


class TestKNN:
    def test_exact_on_training_points_k1(self, xy):
        X, y = xy
        m = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-9)

    def test_interpolates_smooth_function(self, rng):
        X = rng.random((400, 2))
        y = X[:, 0] + 2 * X[:, 1]
        m = KNeighborsRegressor(n_neighbors=5).fit(X, y)
        Xt = rng.random((50, 2))
        yt = Xt[:, 0] + 2 * Xt[:, 1]
        assert np.abs(m.predict(Xt) - yt).max() < 0.2

    def test_uniform_vs_distance_weights(self, xy):
        X, y = xy
        u = KNeighborsRegressor(n_neighbors=5, weights="uniform").fit(X, y)
        d = KNeighborsRegressor(n_neighbors=5, weights="distance").fit(X, y)
        assert not np.allclose(u.predict(X[:10]), d.predict(X[:10]))

    def test_k_clamped_to_n(self):
        m = KNeighborsRegressor(n_neighbors=10).fit(np.ones((3, 1)), np.arange(3.0))
        assert np.isfinite(m.predict(np.ones((1, 1)))).all()

    def test_constant_feature_handled(self, rng):
        X = np.ones((20, 3))
        X[:, 0] = rng.random(20)
        m = KNeighborsRegressor().fit(X, X[:, 0])
        assert np.isfinite(m.predict(X)).all()

    @pytest.mark.parametrize("bad", [{"n_neighbors": 0}, {"weights": "cosine"}])
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            KNeighborsRegressor(**bad)


class TestRegistry:
    def test_all_kinds_construct_and_fit(self, xy):
        X, y = xy
        for kind in MODEL_KINDS:
            space = default_space(kind)
            params = space.sample(np.random.default_rng(0))
            model = make_model(kind, random_state=0, **params)
            model.fit(X, y)
            assert model.predict(X).shape == (X.shape[0],)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_model("svm")
        with pytest.raises(KeyError):
            default_space("svm")


class TestTrainModelKinds:
    @pytest.mark.parametrize("kind", ["gbt", "knn"])
    def test_bayesopt_over_alternative_models(self, xy, kind):
        X, y = xy
        model, info = train_model(X, y, method="bayesopt", model_kind=kind, n_iter=4, cv=2)
        assert info.model_kind == kind
        assert model.score(X, y) > 0.3

    def test_grid_over_knn(self, xy):
        X, y = xy
        model, info = train_model(X, y, method="grid", model_kind="knn", n_iter=3, cv=2)
        assert info.method == "grid"
        assert model.get_params()["n_neighbors"] >= 1


class TestErrorBoundModelKinds:
    @pytest.mark.parametrize("kind", ["forest", "gbt", "knn"])
    def test_end_to_end_prediction(self, kind):
        fields = load_dataset("miranda", shape=(12, 16, 16))[:3]
        data = TrainingCollector(
            "szx", mode="secre", rel_error_bounds=np.geomspace(1e-3, 1e-1, 5)
        ).collect(fields)
        model = ErrorBoundModel().fit(data, method="bayesopt", n_iter=3, cv=2, model_kind=kind)
        rec = data.records[0]
        eb = model.predict_error_bound(rec.features, float(rec.ratios[2]))
        assert rec.error_bounds[0] * 0.1 <= eb <= rec.error_bounds[-1] * 10
