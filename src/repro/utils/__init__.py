"""Shared utilities: timing, validation, serialization."""

from repro.utils.timing import Timer, TimingRecord, timed
from repro.utils.validation import (
    as_float_array,
    check_error_bound,
    check_positive_int,
    check_probability,
    require_finite,
)

__all__ = [
    "Timer",
    "TimingRecord",
    "timed",
    "as_float_array",
    "check_error_bound",
    "check_positive_int",
    "check_probability",
    "require_finite",
]
