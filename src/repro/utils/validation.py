"""Input validation helpers shared across compressors, ML and frameworks.

All public entry points validate eagerly so failures surface with a clear
message at the API boundary instead of deep inside a vectorized kernel.
"""

from __future__ import annotations

import numpy as np


def as_float_array(data, *, name: str = "data", allow_empty: bool = False) -> np.ndarray:
    """Coerce ``data`` to a C-contiguous float array (float32 or float64).

    Integer and float16 inputs are promoted to float64/float32; other dtypes
    (complex, object, strings) are rejected.
    """
    arr = np.asarray(data)
    if arr.dtype == np.float32:
        pass
    elif arr.dtype == np.float64:
        pass
    elif np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.float16:
        arr = arr.astype(np.float64)
    else:
        raise TypeError(f"{name} must be real floating point, got dtype {arr.dtype}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return np.ascontiguousarray(arr)


def require_finite(arr: np.ndarray, *, name: str = "data") -> None:
    """Reject NaN/Inf inputs.

    Error-bounded lossy compressors have no meaningful error bound for
    non-finite values, so all compressor entry points call this.
    """
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or Inf; error-bounded compression is undefined")


def check_error_bound(error_bound: float) -> float:
    eb = float(error_bound)
    if not np.isfinite(eb) or eb <= 0.0:
        raise ValueError(f"error_bound must be finite and > 0, got {error_bound!r}")
    return eb


def check_positive_int(value, *, name: str) -> int:
    iv = int(value)
    if iv <= 0 or iv != value:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return iv


def check_probability(value: float, *, name: str) -> float:
    fv = float(value)
    if not (0.0 <= fv <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return fv
