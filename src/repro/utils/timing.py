"""Lightweight wall-clock instrumentation.

Every pipeline stage in the frameworks (data collection, model training,
feature extraction, inference) reports its cost through these helpers so the
benchmark harnesses can regenerate the paper's timing tables without
re-instrumenting call sites.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field


@dataclass
class TimingRecord:
    """Accumulates named wall-clock measurements.

    Measurements with the same name accumulate, so a record can be shared
    across repeated stage invocations (e.g. one compressor run per error
    bound during data collection).
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        count = self.counts.get(name, 0)
        return self.totals[name] / count if count else 0.0

    def merge(self, other: "TimingRecord") -> None:
        for name, seconds in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.counts[name] = self.counts.get(name, 0) + other.counts[name]

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)

    def __contains__(self, name: str) -> bool:
        return name in self.totals


class Timer:
    """Context manager measuring wall-clock time.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    Optionally reports into a :class:`TimingRecord`:

    >>> rec = TimingRecord()
    >>> with Timer(record=rec, name="stage"):
    ...     pass
    >>> "stage" in rec
    True
    """

    def __init__(self, record: TimingRecord | None = None, name: str = "") -> None:
        self._record = record
        self._name = name
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._record is not None:
            self._record.add(self._name or "timer", self.elapsed)


def timed(func):
    """Decorator attaching the call's wall time as ``wrapper.last_elapsed``."""

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        wrapper.last_elapsed = time.perf_counter() - start
        return result

    wrapper.last_elapsed = 0.0
    return wrapper
