"""Persistence for trained models and frameworks.

Production deployments train once and serve many inference calls, often in
a different process (the paper's use cases 1-3 all separate setup from
serving). Everything needed at inference time — forest structure, feature
configuration, the Bayesian-optimization checkpoint for later refinement —
round-trips through a single ``.npz`` archive, with no pickle involved
(forests are flat arrays already).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor

_FORMAT_VERSION = 1


def _tree_arrays(tree: DecisionTreeRegressor, idx: int) -> dict[str, np.ndarray]:
    return {
        f"t{idx}_feature": tree.feature,
        f"t{idx}_threshold": tree.threshold,
        f"t{idx}_left": tree.left,
        f"t{idx}_right": tree.right,
        f"t{idx}_value": tree.value,
        f"t{idx}_n_samples": tree.n_samples,
        f"t{idx}_mse": tree.mse,
    }


def _tree_from_arrays(data, idx: int) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree.feature = data[f"t{idx}_feature"]
    tree.threshold = data[f"t{idx}_threshold"]
    tree.left = data[f"t{idx}_left"]
    tree.right = data[f"t{idx}_right"]
    tree.value = data[f"t{idx}_value"]
    tree.n_samples = data[f"t{idx}_n_samples"]
    tree.mse = data[f"t{idx}_mse"]
    return tree


def save_forest(path: str | Path, forest: RandomForestRegressor, extra: dict | None = None) -> Path:
    """Serialize a fitted forest (plus an optional JSON-able ``extra`` dict)."""
    if not forest.trees:
        raise ValueError("cannot save an unfitted forest")
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for i, tree in enumerate(forest.trees):
        arrays.update(_tree_arrays(tree, i))
    meta = {
        "version": _FORMAT_VERSION,
        "n_trees": len(forest.trees),
        "params": forest.get_params(),
        "extra": extra or {},
    }
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz if missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_forest(path: str | Path) -> tuple[RandomForestRegressor, dict]:
    """Inverse of :func:`save_forest`; returns ``(forest, extra)``."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format version {meta.get('version')!r}")
        forest = RandomForestRegressor(**meta["params"])
        forest.trees = [_tree_from_arrays(data, i) for i in range(meta["n_trees"])]
    return forest, meta["extra"]


def save_framework(path: str | Path, framework) -> Path:
    """Persist a fitted framework's inference state.

    Saves the forest, the trained error-bound range, the compressor name,
    the framework class name, and (for CAROL) the BO checkpoint so that a
    reloaded framework can both predict and :meth:`refine`.
    """
    model = framework.model
    if model.forest is None:
        raise ValueError("framework is not fitted")
    extra = {
        "framework": framework.name,
        "compressor": framework.compressor_name,
        "feature_names": model.feature_names,
        "eb_range": list(model._eb_range),
        "checkpoint": _jsonify_checkpoint(model.checkpoint),
    }
    return save_forest(path, model.forest, extra=extra)


def load_framework(path: str | Path):
    """Reconstruct a framework saved by :func:`save_framework`."""
    from repro.core.carol import CarolFramework
    from repro.core.fxrz import FxrzFramework
    from repro.core.training import TrainingInfo

    forest, extra = load_forest(path)
    cls = {"carol": CarolFramework, "fxrz": FxrzFramework}[extra["framework"]]
    fw = cls(compressor=extra["compressor"])
    fw.model.forest = forest
    fw.model.feature_names = list(extra["feature_names"])
    fw.model._eb_range = tuple(extra["eb_range"])
    checkpoint = _dejsonify_checkpoint(extra.get("checkpoint"))
    fw.model.info = TrainingInfo(
        method="loaded",
        best_params=forest.get_params(),
        best_score=float("nan"),
        elapsed=0.0,
        n_evaluations=0,
        checkpoint=checkpoint,
    )
    return fw


def _jsonify_checkpoint(checkpoint):
    if checkpoint is None:
        return None
    return [[params, float(score)] for params, score in checkpoint]


def _dejsonify_checkpoint(raw):
    if not raw:
        return None
    return [(dict(params), float(score)) for params, score in raw]
