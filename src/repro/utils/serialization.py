"""Persistence for trained models and frameworks.

Production deployments train once and serve many inference calls, often in
a different process (the paper's use cases 1-3 all separate setup from
serving). Everything needed at inference time — model structure, feature
configuration, the Bayesian-optimization checkpoint for later refinement —
round-trips through a single ``.npz`` archive, with no pickle involved
(tree ensembles are flat arrays already; kNN is its training matrix).

Every ``model_kind`` a framework can train ("forest", "gbt", "knn")
round-trips: :func:`save_model` / :func:`load_model` dispatch on the model
class and record the kind in the archive metadata, so a model server
(:class:`repro.serve.ModelRegistry`) can host any of them. Archives
written before the ``kind`` field default to ``"forest"`` on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.tree import DecisionTreeRegressor

_FORMAT_VERSION = 1


def _tree_arrays(tree: DecisionTreeRegressor, idx: int) -> dict[str, np.ndarray]:
    return {
        f"t{idx}_feature": tree.feature,
        f"t{idx}_threshold": tree.threshold,
        f"t{idx}_left": tree.left,
        f"t{idx}_right": tree.right,
        f"t{idx}_value": tree.value,
        f"t{idx}_n_samples": tree.n_samples,
        f"t{idx}_mse": tree.mse,
    }


def _tree_from_arrays(data, idx: int) -> DecisionTreeRegressor:
    tree = DecisionTreeRegressor()
    tree.feature = data[f"t{idx}_feature"]
    tree.threshold = data[f"t{idx}_threshold"]
    tree.left = data[f"t{idx}_left"]
    tree.right = data[f"t{idx}_right"]
    tree.value = data[f"t{idx}_value"]
    tree.n_samples = data[f"t{idx}_n_samples"]
    tree.mse = data[f"t{idx}_mse"]
    return tree


def _write_archive(path: Path, arrays: dict, meta: dict) -> Path:
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz if missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def save_model(path: str | Path, model, extra: dict | None = None) -> Path:
    """Serialize any fitted model kind (forest / gbt / knn) plus ``extra``."""
    path = Path(path)
    if not isinstance(
        model, (RandomForestRegressor, GradientBoostingRegressor, KNeighborsRegressor)
    ):
        raise TypeError(f"cannot serialize model of type {type(model).__name__}")
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "version": _FORMAT_VERSION,
        "params": model.get_params(),
        "extra": extra or {},
    }
    if isinstance(model, RandomForestRegressor):
        if not model.trees:
            raise ValueError("cannot save an unfitted forest")
        meta["kind"] = "forest"
        meta["n_trees"] = len(model.trees)
        for i, tree in enumerate(model.trees):
            arrays.update(_tree_arrays(tree, i))
    elif isinstance(model, GradientBoostingRegressor):
        if not model.trees:
            raise ValueError("cannot save an unfitted gbt model")
        meta["kind"] = "gbt"
        meta["n_trees"] = len(model.trees)
        meta["base_value"] = float(model.base_value)
        for i, tree in enumerate(model.trees):
            arrays.update(_tree_arrays(tree, i))
    elif isinstance(model, KNeighborsRegressor):
        if model._X is None:
            raise ValueError("cannot save an unfitted knn model")
        meta["kind"] = "knn"
        arrays["knn_X"] = model._X
        arrays["knn_y"] = model._y
        arrays["knn_mu"] = model._mu
        arrays["knn_sigma"] = model._sigma
    return _write_archive(path, arrays, meta)


def load_model(path: str | Path) -> tuple[object, dict]:
    """Inverse of :func:`save_model`; returns ``(model, extra)``."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format version {meta.get('version')!r}")
        kind = meta.get("kind", "forest")
        if kind == "forest":
            model = RandomForestRegressor(**meta["params"])
            model.trees = [_tree_from_arrays(data, i) for i in range(meta["n_trees"])]
        elif kind == "gbt":
            model = GradientBoostingRegressor(**meta["params"])
            model.trees = [_tree_from_arrays(data, i) for i in range(meta["n_trees"])]
            model.base_value = float(meta["base_value"])
        elif kind == "knn":
            model = KNeighborsRegressor(**meta["params"])
            model._X = data["knn_X"]
            model._y = data["knn_y"]
            model._mu = data["knn_mu"]
            model._sigma = data["knn_sigma"]
        else:
            raise ValueError(f"unknown serialized model kind {kind!r}")
    return model, meta["extra"]


def save_forest(path: str | Path, forest: RandomForestRegressor, extra: dict | None = None) -> Path:
    """Serialize a fitted forest (back-compat wrapper over :func:`save_model`)."""
    if not isinstance(forest, RandomForestRegressor):
        raise TypeError("save_forest expects a RandomForestRegressor")
    return save_model(path, forest, extra=extra)


def load_forest(path: str | Path) -> tuple[RandomForestRegressor, dict]:
    """Inverse of :func:`save_forest`; returns ``(forest, extra)``."""
    model, extra = load_model(path)
    if not isinstance(model, RandomForestRegressor):
        raise ValueError(f"archive holds a {type(model).__name__}, not a forest")
    return model, extra


def save_framework(path: str | Path, framework) -> Path:
    """Persist a fitted framework's inference state.

    Saves the trained model (any ``model_kind``), the trained error-bound
    range, the compressor name, the framework class name, and (for CAROL)
    the BO checkpoint so that a reloaded framework can both predict and
    :meth:`refine`.
    """
    model = framework.model
    if model.forest is None:
        raise ValueError("framework is not fitted")
    extra = {
        "framework": framework.name,
        "compressor": framework.compressor_name,
        "model_kind": framework.model_kind,
        "feature_names": model.feature_names,
        "eb_range": list(model._eb_range),
        "checkpoint": _jsonify_checkpoint(model.checkpoint),
    }
    return save_model(path, model.forest, extra=extra)


def load_framework(path: str | Path):
    """Reconstruct a framework saved by :func:`save_framework`."""
    from repro.core.carol import CarolFramework
    from repro.core.fxrz import FxrzFramework
    from repro.core.training import TrainingInfo

    model, extra = load_model(path)
    cls = {"carol": CarolFramework, "fxrz": FxrzFramework}[extra["framework"]]
    model_kind = extra.get("model_kind", "forest")
    fw = cls(compressor=extra["compressor"], model_kind=model_kind)
    fw.model.forest = model
    fw.model.feature_names = list(extra["feature_names"])
    fw.model._eb_range = tuple(extra["eb_range"])
    checkpoint = _dejsonify_checkpoint(extra.get("checkpoint"))
    fw.model.info = TrainingInfo(
        method="loaded",
        best_params=model.get_params(),
        best_score=float("nan"),
        elapsed=0.0,
        n_evaluations=0,
        checkpoint=checkpoint,
        model_kind=model_kind,
    )
    return fw


def _jsonify_checkpoint(checkpoint):
    if checkpoint is None:
        return None
    return [[params, float(score)] for params, score in checkpoint]


def _dejsonify_checkpoint(raw):
    if not raw:
        return None
    return [(dict(params), float(score)) for params, score in raw]
