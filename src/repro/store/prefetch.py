"""Catalog-driven read-ahead: predicting the next chunks from the
per-key request stream.

A :class:`~repro.store.catalog.StoreCatalog` sees every read for every
key, which makes it the natural place to notice *access patterns*: a
client scanning a store front to back, or striding through it plane by
plane, telegraphs exactly which chunks it will ask for next. The
:class:`Prefetcher` watches that stream and, once a pattern has held for
``min_run`` consecutive requests, predicts up to ``depth`` flat chunk
ids ahead of it. The catalog then decodes those chunks into the shared
LRU *after* serving the current request, so the next request finds its
chunks already decompressed.

Two properties keep this safe to reason about:

- **prediction is a pure function of the request history.** Same
  per-key stream of requests → same hints, independent of cache size,
  worker count, timing, or what other keys are doing
  (:meth:`Prefetcher.predict` touches nothing but its own per-key
  deque). Acting on a hint *is* allowed to consult the cache (a chunk
  already resident is not re-issued), but the hint sequence itself never
  changes — which is what makes prefetch behavior testable.
- **prefetch is advisory, never load-bearing.** A prefetched chunk the
  LRU evicts before use is counted ``wasted`` and simply re-decoded on
  demand; a prefetch that raises is swallowed (the *next request* will
  surface a genuinely corrupt chunk through the normal read path, with
  the normal error). Streaming reads hold their own references to
  in-flight tile data, so prefetch-driven eviction churn can never alter
  the bytes a stream yields.

The catalog accounts outcomes in :class:`PrefetchStats` (and the
``store.read.prefetch_{issued,hits,wasted}`` obs counters): ``issued``
hints decoded into the cache, ``hits`` issued chunks a later request
actually consumed, ``wasted`` issued chunks evicted unused.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class PrefetchStats:
    """Immutable prefetch-outcome snapshot: hints acted on (``issued``),
    issued chunks a later request consumed (``hits``), issued chunks
    evicted before any request touched them (``wasted``). Issued chunks
    still resident and unclaimed are in none of the buckets yet."""

    issued: int = 0
    hits: int = 0
    wasted: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.issued if self.issued else 0.0

    def as_dict(self) -> dict:
        return {
            "issued": self.issued,
            "hits": self.hits,
            "wasted": self.wasted,
            "hit_rate": self.hit_rate,
        }


class Prefetcher:
    """Sequential-run and stride detection over per-key request streams.

    Each request is summarized by the span of flat chunk ids it touched.
    When the spans' *leading edges* have advanced by one constant,
    nonzero stride for ``min_run`` consecutive requests, future requests
    are predicted at successive strides — the hints are the predicted
    spans' chunk ids (minus any id in the current request), walked
    nearest-first until ``depth`` ids are collected or the grid ends. A
    sequential scan is the stride-``span`` special case, so one detector
    covers both patterns
    named by the catalog's request mix; anything irregular predicts
    nothing rather than guessing.

    :meth:`predict` both records the request and returns the hints; it
    is deterministic in the per-key call sequence alone (see the module
    docstring), and internally locked so concurrent catalog reads keep
    per-key histories consistent.
    """

    #: Most recent request spans remembered per key — enough to confirm
    #: any ``min_run`` up to the window, tiny regardless of stream length.
    HISTORY = 8

    def __init__(self, *, depth: int = 2, min_run: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if min_run < 2:
            raise ValueError("min_run must be >= 2 (one delta proves nothing)")
        self.depth = int(depth)
        self.min_run = int(min_run)
        self._lock = threading.Lock()
        self._history: dict[str, deque[tuple[int, int]]] = {}

    def predict(self, key: str, chunk_ids, n_chunks: int) -> list[int]:
        """Record one request for ``key`` and return the predicted next
        flat chunk ids (possibly empty). ``chunk_ids`` are the flat ids
        the request touched; ``n_chunks`` clips hints to the store."""
        ids = sorted({int(c) for c in chunk_ids})
        with self._lock:
            if not ids:
                return []
            lo, hi = ids[0], ids[-1]
            history = self._history.setdefault(key, deque(maxlen=self.HISTORY))
            history.append((lo, hi))
            if len(history) <= self.min_run:
                return []
            deltas = [
                history[i + 1][0] - history[i][0] for i in range(len(history) - 1)
            ][-self.min_run :]
            stride = deltas[-1]
            if stride == 0 or any(d != stride for d in deltas):
                return []
            current = set(ids)
            hints: list[int] = []
            step = 1
            while len(hints) < self.depth:
                window = range(lo + step * stride, hi + step * stride + 1)
                if stride < 0:
                    window = reversed(window)  # nearest-first going backwards
                in_range = False
                for c in window:
                    if 0 <= c < int(n_chunks):
                        in_range = True
                        if c not in current and c not in hints:
                            hints.append(c)
                            if len(hints) >= self.depth:
                                break
                if not in_range:
                    break  # walked off the grid: nothing further exists
                step += 1
            return hints

    def forget(self, key: str) -> None:
        """Drop ``key``'s history (a re-registered key starts cold)."""
        with self._lock:
            self._history.pop(key, None)
