"""Random-access reads from a ``.rps`` container.

:class:`StoreReader` parses the manifest once at open and then serves
chunk and subvolume reads by seeking straight to the requested payloads:
a read decompresses *only* the chunks intersecting the request (counted
in ``store.read.chunks_decompressed``), verifies each payload against
its recorded blake2b checksum, and raises
:class:`~repro.store.format.CorruptChunkError` naming the offending
chunk — every other chunk stays readable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.compressors.base import CompressionResult
from repro.compressors.registry import get_compressor
from repro.obs import count, timed_span
from repro.store.chunking import ChunkGrid
from repro.store.format import CorruptChunkError, StoreFormatError, chunk_checksum, read_manifest


class StoreReader:
    """Read side of the store: manifest introspection + random access.

    ``verify=False`` skips checksum verification (trusted local media);
    the default verifies every payload it decompresses.
    """

    def __init__(self, path, *, verify: bool = True) -> None:
        self.path = Path(path)
        self.verify = bool(verify)
        self._fh = open(self.path, "rb")
        try:
            self.manifest = read_manifest(self._fh, self.path)
        except StoreFormatError:
            self._fh.close()
            raise
        self.shape = tuple(int(s) for s in self.manifest["shape"])
        self.dtype = np.dtype(self.manifest["dtype"])
        self.chunk_shape = tuple(int(c) for c in self.manifest["chunk_shape"])
        self.compressor = self.manifest["compressor"]
        self.grid = ChunkGrid(self.shape, self.chunk_shape)
        self._codec = get_compressor(self.compressor)
        self._entries = {tuple(e["coords"]): e for e in self.manifest["chunks"]}
        if len(self._entries) != self.grid.n_chunks:
            raise StoreFormatError(
                f"{self.path.name}: manifest has {len(self._entries)} chunks; "
                f"grid needs {self.grid.n_chunks}"
            )

    # -- introspection -----------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return self.grid.n_chunks

    @property
    def target_ratio(self) -> float:
        return float(self.manifest["target_ratio"])

    @property
    def achieved_ratio(self) -> float:
        stored = int(self.manifest["stored_bytes"])
        return int(self.manifest["original_bytes"]) / stored if stored else 0.0

    def chunk_entry(self, coords: tuple[int, ...]) -> dict:
        """The manifest entry for one chunk (coords as grid coordinates)."""
        key = tuple(int(c) for c in coords)
        if key not in self._entries:
            raise KeyError(f"no chunk {key} in {self.path.name} (grid {self.grid.grid_shape})")
        return self._entries[key]

    def info(self) -> dict:
        """Summary dict behind ``python -m repro store-info``."""
        ebs = [e["error_bound"] for e in self.manifest["chunks"]]
        ratios = [e["achieved_ratio"] for e in self.manifest["chunks"]]
        return {
            "path": str(self.path),
            "shape": self.shape,
            "dtype": str(self.dtype),
            "compressor": self.compressor,
            "chunk_shape": self.chunk_shape,
            "grid_shape": self.grid.grid_shape,
            "n_chunks": self.n_chunks,
            "original_bytes": int(self.manifest["original_bytes"]),
            "stored_bytes": int(self.manifest["stored_bytes"]),
            "target_ratio": self.target_ratio,
            "achieved_ratio": self.achieved_ratio,
            "closed_loop": bool(self.manifest.get("closed_loop", False)),
            "error_bound_min": min(ebs) if ebs else 0.0,
            "error_bound_max": max(ebs) if ebs else 0.0,
            "chunk_ratio_min": min(ratios) if ratios else 0.0,
            "chunk_ratio_max": max(ratios) if ratios else 0.0,
        }

    # -- chunk access ------------------------------------------------------------

    def _read_payload(self, entry: dict, *, force_verify: bool = False) -> bytes:
        self._fh.seek(int(entry["offset"]))
        payload = self._fh.read(int(entry["nbytes"]))
        coords = tuple(entry["coords"])
        if len(payload) != int(entry["nbytes"]):
            raise CorruptChunkError(
                coords, self.path, f"payload truncated to {len(payload)} bytes"
            )
        if (self.verify or force_verify) and chunk_checksum(payload) != entry["checksum"]:
            raise CorruptChunkError(coords, self.path, "checksum mismatch")
        return payload

    def read_chunk(self, coords: tuple[int, ...]) -> np.ndarray:
        """Decompress one chunk; returns its array in the stored dtype."""
        entry = self.chunk_entry(coords)
        payload = self._read_payload(entry)
        meta = dict(entry["meta"])
        meta["shape"] = tuple(meta["shape"])
        if not self.verify:
            # verify=False opts out of integrity work at *both* levels:
            # the store's blake2b and the codec's own payload check.
            meta.pop("payload_check", None)
        result = CompressionResult(
            compressor=self.compressor,
            payload=payload,
            metadata=meta,
            original_bytes=int(entry["raw_bytes"]),
            error_bound=float(entry["error_bound"]),
        )
        out = self._codec.decompress(result)
        count("store.read.chunks_decompressed")
        count("store.read.bytes_decompressed", int(entry["nbytes"]))
        return out

    # -- subvolume reads ---------------------------------------------------------

    def read(self, region=None) -> np.ndarray:
        """Read the whole field (``region=None``) or an axis-aligned subvolume.

        ``region`` follows numpy basic slicing without steps: a tuple of
        slices/ints (ints keep their axis as length one). Only intersecting
        chunks are decompressed.
        """
        sel = self.grid.normalize_region(region)
        out_shape = tuple(s.stop - s.start for s in sel)
        out = np.empty(out_shape, dtype=self.dtype)
        chunks = self.grid.chunks_intersecting(sel)
        with timed_span(
            "store.read", path=str(self.path), n_chunks=len(chunks), shape=out_shape
        ):
            count("store.read.requests")
            for chunk in chunks:
                data = self.read_chunk(chunk.coords)
                out_sl, chunk_sl = [], []
                for r, c in zip(sel, chunk.slices):
                    start = max(r.start, c.start)
                    stop = min(r.stop, c.stop)
                    out_sl.append(slice(start - r.start, stop - r.start))
                    chunk_sl.append(slice(start - c.start, stop - c.start))
                out[tuple(out_sl)] = data[tuple(chunk_sl)]
        return out

    def __getitem__(self, region) -> np.ndarray:
        return self.read(region)

    def verify_all(self) -> int:
        """Checksum every chunk payload (even with ``verify=False``);
        returns the count verified."""
        for entry in self._entries.values():
            self._read_payload(entry, force_verify=True)
        return len(self._entries)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "StoreReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoreReader({self.path.name}, shape={self.shape}, "
            f"chunks={self.grid.grid_shape}, compressor={self.compressor})"
        )
