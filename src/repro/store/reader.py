"""Random-access reads from a ``.rps`` container, as three separable stages.

:class:`StoreReader` parses the manifest once at open and then serves
chunk and subvolume reads through a staged pipeline:

1. **fetch + verify** (:meth:`StoreReader.fetch_payload`) — seek to the
   chunk's payload, read exactly its recorded byte count, and check it
   against the manifest's blake2b checksum, raising
   :class:`~repro.store.format.CorruptChunkError` naming the offending
   chunk — every other chunk stays readable;
2. **decode** (:func:`decode_chunk`) — invert the payload through the
   recorded compressor. A pure module-level function of the manifest
   entry and the payload bytes, so it pickles to worker processes and a
   :class:`~repro.serve.pool.WorkerPool` can fan a read's decodes out;
3. **assemble** (:func:`assemble_region`) — scatter each chunk's
   intersection into the caller's output array.

The stages are separable so a :class:`~repro.store.catalog.StoreCatalog`
can inject a shared decompressed-chunk cache (``chunk_cache``) and a
decode pool (``pool``) without duplicating any reader logic: a cached
chunk skips stages 1 *and* 2 — no re-read, no re-verify, no decode —
and because decode is deterministic and assembly order is fixed
(flat chunk-id order), the bytes a read returns are identical for every
worker count and cache size. A read decompresses *only* the chunks
intersecting the request (counted in ``store.read.chunks_decompressed``;
cache hits count in ``store.read.chunks_cached`` — both counted in
exactly one place, :meth:`StoreReader._count_decoded` and
:meth:`StoreReader._cache_get`, whichever path served the chunk).

:meth:`StoreReader.read` materializes the whole region;
:meth:`StoreReader.read_iter` streams it as bounded-memory tiles
(:class:`TileStream`) instead — same stages, same bytes, with fetch and
decode of later tiles overlapping consumption of earlier ones.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.compressors.base import CompressionResult
from repro.compressors.registry import get_compressor
from repro.obs import count, set_gauge_max, timed_span
from repro.store.chunking import ChunkGrid
from repro.store.format import CorruptChunkError, StoreFormatError, chunk_checksum, read_manifest


def decode_chunk(
    compressor: str, entry: dict, payload: bytes, verify: bool = True
) -> np.ndarray:
    """Stage 2: decode one chunk's payload through its recorded codec.

    Pure function of ``(compressor, manifest entry, payload)`` — no file
    handles, no reader state — and every argument pickles, so this is
    also the task a decode pool runs. ``verify=False`` strips the
    codec-level ``payload_check`` (the store-level checksum was already
    skipped at fetch time), opting out of integrity work at both levels.
    """
    meta = dict(entry["meta"])
    meta["shape"] = tuple(meta["shape"])
    if not verify:
        meta.pop("payload_check", None)
    result = CompressionResult(
        compressor=compressor,
        payload=payload,
        metadata=meta,
        original_bytes=int(entry["raw_bytes"]),
        error_bound=float(entry["error_bound"]),
    )
    return get_compressor(compressor).decompress(result)


def assemble_region(out: np.ndarray, sel, chunk, data: np.ndarray) -> None:
    """Stage 3: scatter one chunk's intersection with ``sel`` into ``out``.

    ``sel`` is the normalized region (per-axis slices in field
    coordinates); ``chunk`` carries its own field-coordinate slices. The
    chunk array is only read, never written — safe for cached arrays.
    """
    out_sl, chunk_sl = [], []
    for r, c in zip(sel, chunk.slices):
        start = max(r.start, c.start)
        stop = min(r.stop, c.stop)
        out_sl.append(slice(start - r.start, stop - r.start))
        chunk_sl.append(slice(start - c.start, stop - c.start))
    out[tuple(out_sl)] = data[tuple(chunk_sl)]


class StoreReader:
    """Read side of the store: manifest introspection + random access.

    ``verify=False`` skips checksum verification (trusted local media);
    the default verifies every payload it decompresses.

    ``chunk_cache`` (an :class:`repro.serve.cache.LRUCache`, typically
    cost-bounded in bytes) caches decompressed chunk arrays under
    ``(cache_scope, coords)`` keys; arrays entering the cache are frozen
    read-only, since hits hand back the shared object. ``pool`` (a
    :class:`repro.serve.pool.WorkerPool`) fans a multi-chunk read's
    decode stage out across worker processes. Both default to off, which
    is the classic serial reader unchanged.
    """

    def __init__(
        self,
        path,
        *,
        verify: bool = True,
        chunk_cache=None,
        cache_scope: str | None = None,
        pool=None,
    ) -> None:
        self.path = Path(path)
        self.verify = bool(verify)
        self.chunk_cache = chunk_cache
        self.cache_scope = str(cache_scope) if cache_scope is not None else str(self.path)
        self.pool = pool
        self._io_lock = threading.Lock()
        self._fh = open(self.path, "rb")
        try:
            self.manifest = read_manifest(self._fh, self.path)
        except StoreFormatError:
            self._fh.close()
            raise
        self.shape = tuple(int(s) for s in self.manifest["shape"])
        self.dtype = np.dtype(self.manifest["dtype"])
        self.chunk_shape = tuple(int(c) for c in self.manifest["chunk_shape"])
        self.compressor = self.manifest["compressor"]
        self.grid = ChunkGrid(self.shape, self.chunk_shape)
        self._codec = get_compressor(self.compressor)
        self._entries = {tuple(e["coords"]): e for e in self.manifest["chunks"]}
        if len(self._entries) != self.grid.n_chunks:
            raise StoreFormatError(
                f"{self.path.name}: manifest has {len(self._entries)} chunks; "
                f"grid needs {self.grid.n_chunks}"
            )

    # -- introspection -----------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return self.grid.n_chunks

    @property
    def target_ratio(self) -> float:
        return float(self.manifest["target_ratio"])

    @property
    def achieved_ratio(self) -> float:
        stored = int(self.manifest["stored_bytes"])
        return int(self.manifest["original_bytes"]) / stored if stored else 0.0

    def chunk_entry(self, coords: tuple[int, ...]) -> dict:
        """The manifest entry for one chunk (coords as grid coordinates)."""
        key = tuple(int(c) for c in coords)
        if key not in self._entries:
            raise KeyError(f"no chunk {key} in {self.path.name} (grid {self.grid.grid_shape})")
        return self._entries[key]

    def info(self) -> dict:
        """Summary dict behind ``python -m repro store-info``."""
        ebs = [e["error_bound"] for e in self.manifest["chunks"]]
        ratios = [e["achieved_ratio"] for e in self.manifest["chunks"]]
        return {
            "path": str(self.path),
            "shape": self.shape,
            "dtype": str(self.dtype),
            "compressor": self.compressor,
            "chunk_shape": self.chunk_shape,
            "grid_shape": self.grid.grid_shape,
            "n_chunks": self.n_chunks,
            "original_bytes": int(self.manifest["original_bytes"]),
            "stored_bytes": int(self.manifest["stored_bytes"]),
            "target_ratio": self.target_ratio,
            "achieved_ratio": self.achieved_ratio,
            "closed_loop": bool(self.manifest.get("closed_loop", False)),
            "error_bound_min": min(ebs) if ebs else 0.0,
            "error_bound_max": max(ebs) if ebs else 0.0,
            "chunk_ratio_min": min(ratios) if ratios else 0.0,
            "chunk_ratio_max": max(ratios) if ratios else 0.0,
        }

    # -- stage 1: fetch + verify -------------------------------------------------

    def fetch_payload(self, entry: dict, *, force_verify: bool = False) -> bytes:
        """Read one chunk's payload bytes and verify them against the
        manifest checksum. Serialized on an internal lock, so concurrent
        subvolume reads can share one reader."""
        with self._io_lock:
            self._fh.seek(int(entry["offset"]))
            payload = self._fh.read(int(entry["nbytes"]))
        coords = tuple(entry["coords"])
        if len(payload) != int(entry["nbytes"]):
            raise CorruptChunkError(
                coords, self.path, f"payload truncated to {len(payload)} bytes"
            )
        if (self.verify or force_verify) and chunk_checksum(payload) != entry["checksum"]:
            raise CorruptChunkError(coords, self.path, "checksum mismatch")
        return payload

    # kept as the historical internal name; fetch_payload is the stage API
    _read_payload = fetch_payload

    # -- chunk access ------------------------------------------------------------

    def _cache_key(self, coords: tuple[int, ...]):
        return (self.cache_scope, coords)

    def _cache_get(self, coords: tuple[int, ...]) -> np.ndarray | None:
        """Stage-0 cache lookup. The *single* place a cache hit is
        counted (``store.read.chunks_cached``), so every read path —
        ``read_chunk``, ``read``'s gather, the streaming pipeline —
        accounts hits identically whether the cache is reader-private or
        catalog-shared."""
        if self.chunk_cache is None:
            return None
        cached = self.chunk_cache.get(self._cache_key(coords))
        if cached is not None:
            count("store.read.chunks_cached")
        return cached

    def _cache_put(self, coords: tuple[int, ...], data: np.ndarray) -> bool:
        # Hits hand back the shared object, so freeze anything the cache
        # stores — before the put, so no other thread can see it
        # writeable. A chunk the cache would decline (cache disabled, or
        # chunk bigger than the whole budget) is left untouched: freezing
        # can be irreversible (pool-decoded arrays are views over pickle
        # bytes), and an uncached chunk must come back exactly as the
        # plain reader would return it. admits() cannot go stale —
        # the cache's bounds are fixed at construction.
        if self.chunk_cache is None or not self.chunk_cache.admits(data):
            return False
        data.setflags(write=False)
        return self.chunk_cache.put(self._cache_key(coords), data)

    def _count_decoded(self, entry: dict) -> None:
        """The single place a decode is counted, mirroring
        :meth:`_cache_get` for the miss path."""
        count("store.read.chunks_decompressed")
        count("store.read.bytes_decompressed", int(entry["nbytes"]))

    def _decode_one(self, entry: dict) -> np.ndarray:
        """Stages 1+2 for one chunk, with metrics."""
        payload = self.fetch_payload(entry)
        out = decode_chunk(self.compressor, entry, payload, self.verify)
        self._count_decoded(entry)
        return out

    def read_chunk(self, coords: tuple[int, ...]) -> np.ndarray:
        """Decompress one chunk; returns its array in the stored dtype.

        With a chunk cache attached, a hit skips payload fetch, checksum
        verification, and decode entirely. Any array the cache admits is
        frozen read-only (hits hand back the shared object, and the
        first miss returns that same object); chunks the cache declines
        — cache disabled, or chunk bigger than the whole budget — stay
        writeable, as in the plain uncached reader.
        """
        key = tuple(int(c) for c in coords)
        entry = self.chunk_entry(key)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        out = self._decode_one(entry)
        self._cache_put(key, out)
        return out

    def _chunk_arrays(self, chunks) -> list[np.ndarray]:
        """Decoded arrays for a list of chunks, in the given order.

        Cache lookups first; the misses run fetch+verify serially (one
        file handle) and decode either inline or fanned across ``pool``.
        The result is order-deterministic either way, so reads stay
        byte-identical for every worker count and cache size.
        """
        arrays: list[np.ndarray | None] = [None] * len(chunks)
        missing: list[int] = []
        for i, chunk in enumerate(chunks):
            cached = self._cache_get(chunk.coords)
            if cached is not None:
                arrays[i] = cached
                continue
            missing.append(i)
        if not missing:
            return arrays
        entries = [self.chunk_entry(chunks[i].coords) for i in missing]
        if self.pool is not None and len(missing) > 1:
            payloads = [self.fetch_payload(e) for e in entries]
            decoded = self.pool.map_ordered(
                decode_chunk,
                [
                    (self.compressor, entry, payload, self.verify)
                    for entry, payload in zip(entries, payloads)
                ],
            )
            for entry in entries:
                self._count_decoded(entry)
        else:
            decoded = [self._decode_one(entry) for entry in entries]
        for i, data in zip(missing, decoded):
            self._cache_put(chunks[i].coords, data)
            arrays[i] = data
        return arrays

    # -- subvolume reads ---------------------------------------------------------

    def read(self, region=None) -> np.ndarray:
        """Read the whole field (``region=None``) or an axis-aligned subvolume.

        ``region`` follows numpy basic slicing without steps: a tuple of
        slices/ints (ints keep their axis as length one). Only intersecting
        chunks are decompressed (or served from the chunk cache).
        """
        sel = self.grid.normalize_region(region)
        out_shape = tuple(s.stop - s.start for s in sel)
        out = np.empty(out_shape, dtype=self.dtype)
        chunks = self.grid.chunks_intersecting(sel)
        with timed_span(
            "store.read", path=str(self.path), n_chunks=len(chunks), shape=out_shape
        ):
            count("store.read.requests")
            for chunk, data in zip(chunks, self._chunk_arrays(chunks)):
                assemble_region(out, sel, chunk, data)
        return out

    def __getitem__(self, region) -> np.ndarray:
        return self.read(region)

    # -- streaming reads ---------------------------------------------------------

    def read_iter(
        self, region=None, *, tile=None, max_inflight: int = 2
    ) -> "TileStream":
        """Stream a region as ``(tile_region, ndarray)`` pieces instead of
        materializing it.

        Tiles arrive in deterministic order — ``tile=None`` yields one
        piece per intersecting chunk in flat chunk-id order (the storage
        order); an explicit ``tile`` shape grids the region into boxes
        enumerated in C order — and concatenating the pieces reproduces
        :meth:`read` byte-for-byte for every worker count, cache size,
        tile shape, and ``max_inflight``, because decode is a pure
        function and the tile plan is fixed up front.

        ``max_inflight`` is the backpressure bound: at most that many
        tiles are fetched/decoding ahead of the one the caller holds, so
        in-flight decoded bytes are hard-bounded by the tile working set
        (:attr:`StreamStats.budget_bytes`) no matter how large the
        region — the pipeline never queues unboundedly. With a decode
        ``pool`` attached, those look-ahead tiles decode concurrently
        while the caller consumes earlier ones; without one they decode
        lazily at yield time (same bytes, no overlap).

        A corrupt chunk raises
        :class:`~repro.store.format.CorruptChunkError` naming the chunk
        — but only when *its* tile is reached, after every earlier tile
        has been yielded intact; the reader stays usable afterward.
        """
        sel = self.grid.normalize_region(region)
        tiles = self.grid.tiles_for_region(sel, tile)
        plan = [(t, self.grid.chunks_intersecting(t)) for t in tiles]
        return TileStream(self, sel, plan, max_inflight)

    def verify_all(self) -> int:
        """Checksum every chunk payload (even with ``verify=False``);
        returns the count verified."""
        for entry in self._entries.values():
            self.fetch_payload(entry, force_verify=True)
        return len(self._entries)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "StoreReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoreReader({self.path.name}, shape={self.shape}, "
            f"chunks={self.grid.grid_shape}, compressor={self.compressor})"
        )


@dataclass(frozen=True)
class StreamStats:
    """Immutable snapshot of one streaming read's memory accounting.

    ``budget_bytes`` is the pipeline's hard in-flight bound:
    ``max_inflight`` tiles' worth of the most expensive tile in the plan
    (its decoded chunks plus its assembled output). ``peak_inflight_bytes``
    is what the stream actually held at its worst — always at most
    ``budget_bytes`` plus one tile being assembled, and typically far
    below the materialized region.
    """

    tiles_total: int
    tiles_yielded: int
    max_inflight: int
    max_tile_cost_bytes: int
    peak_inflight_bytes: int

    @property
    def budget_bytes(self) -> int:
        return self.max_inflight * self.max_tile_cost_bytes

    def as_dict(self) -> dict:
        return {
            "tiles_total": self.tiles_total,
            "tiles_yielded": self.tiles_yielded,
            "max_inflight": self.max_inflight,
            "max_tile_cost_bytes": self.max_tile_cost_bytes,
            "peak_inflight_bytes": self.peak_inflight_bytes,
            "budget_bytes": self.budget_bytes,
        }


class _TileSource:
    """One chunk feeding one pending tile: a cache hit (``array``), a
    pool decode in flight (``task``), or a fetched payload awaiting lazy
    in-process decode (``payload``)."""

    __slots__ = ("kind", "chunk", "entry", "value", "charge")

    def __init__(self, kind, chunk, entry, value, charge) -> None:
        self.kind = kind
        self.chunk = chunk
        self.entry = entry
        self.value = value
        self.charge = charge


class TileStream:
    """Iterator over a region's tiles with bounded look-ahead.

    Built by :meth:`StoreReader.read_iter`; yields
    ``(tile_region, ndarray)`` with ``tile_region`` a tuple of
    field-coordinate slices and the array a fresh (writeable,
    C-contiguous) copy of that box. The pipeline schedules up to
    ``max_inflight`` tiles ahead of the caller — fetching payloads,
    submitting decodes to the reader's pool when it has one — and blocks
    scheduling beyond that, so in-flight decoded bytes stay bounded by
    the tile working set (backpressure, not queueing). A fetch error is
    captured at schedule time and re-raised when its tile's turn comes,
    preserving yield order. :meth:`close` abandons look-ahead work;
    :attr:`stats` reports the plan and the observed memory peak.
    """

    def __init__(self, reader: StoreReader, sel, plan, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.reader = reader
        self.sel = sel
        self._plan = plan
        self.max_inflight = int(max_inflight)
        self._next = 0  # next plan index to schedule
        self._pending: deque = deque()  # scheduled, not yet yielded
        self._inflight_bytes = 0
        self._peak_inflight = 0
        self._yielded = 0
        self._closed = False
        self._callbacks: list = []
        itemsize = reader.dtype.itemsize
        self._max_tile_cost = max(
            (
                sum(c.n_elements for c in chunks) * itemsize
                + int(np.prod([s.stop - s.start for s in t])) * itemsize
                for t, chunks in plan
            ),
            default=0,
        )

    # -- accounting --------------------------------------------------------------

    @property
    def stats(self) -> StreamStats:
        return StreamStats(
            tiles_total=len(self._plan),
            tiles_yielded=self._yielded,
            max_inflight=self.max_inflight,
            max_tile_cost_bytes=self._max_tile_cost,
            peak_inflight_bytes=self._peak_inflight,
        )

    def _charge(self, nbytes: int) -> None:
        self._inflight_bytes += int(nbytes)
        if self._inflight_bytes > self._peak_inflight:
            self._peak_inflight = self._inflight_bytes
            set_gauge_max("store.read.stream_peak_bytes", self._peak_inflight)

    def _release(self, nbytes: int) -> None:
        self._inflight_bytes -= int(nbytes)

    # -- pipeline ----------------------------------------------------------------

    def _schedule_one(self) -> None:
        """Start the next planned tile: cache lookups, payload fetches,
        and (with a pool) decode submissions. Fetch errors are deferred
        to the tile's own yield slot so earlier tiles stream intact."""
        reader = self.reader
        tile_sel, chunks = self._plan[self._next]
        self._next += 1
        sources: list[_TileSource] = []
        error: Exception | None = None
        for chunk in chunks:
            cached = reader._cache_get(chunk.coords)
            if cached is not None:
                # shared with the cache: no new memory, charge nothing
                sources.append(_TileSource("array", chunk, None, cached, 0))
                continue
            entry = reader.chunk_entry(chunk.coords)
            try:
                payload = reader.fetch_payload(entry)
            except CorruptChunkError as exc:
                error = exc
                break
            charge = chunk.n_elements * reader.dtype.itemsize
            self._charge(charge)
            if reader.pool is not None:
                task = reader.pool.submit(
                    decode_chunk, reader.compressor, entry, payload, reader.verify
                )
                sources.append(_TileSource("task", chunk, entry, task, charge))
            else:
                sources.append(_TileSource("payload", chunk, entry, payload, charge))
        self._pending.append((tile_sel, sources, error))

    def _collect(self, tile_sel, sources, error):
        """Finish one scheduled tile: await/execute its decodes, cache
        the results, assemble the output box."""
        reader = self.reader
        if error is not None:
            for src in sources:
                self._drop_source(src)
            raise error
        shape = tuple(s.stop - s.start for s in tile_sel)
        out = np.empty(shape, dtype=reader.dtype)
        self._charge(out.nbytes)
        try:
            for src in sources:
                if src.kind == "array":
                    data = src.value
                elif src.kind == "task":
                    data = src.value.result()
                    reader._count_decoded(src.entry)
                    reader._cache_put(src.chunk.coords, data)
                else:
                    data = decode_chunk(
                        reader.compressor, src.entry, src.value, reader.verify
                    )
                    reader._count_decoded(src.entry)
                    reader._cache_put(src.chunk.coords, data)
                assemble_region(out, tile_sel, src.chunk, data)
                self._release(src.charge)
                src.charge = 0
        finally:
            self._release(out.nbytes)
        return tile_sel, out

    def _drop_source(self, src: _TileSource) -> None:
        if src.kind == "task":
            src.value.cancel()
        self._release(src.charge)
        src.charge = 0

    # -- iterator protocol -------------------------------------------------------

    def __iter__(self) -> "TileStream":
        return self

    def __next__(self):
        if self._closed:
            raise StopIteration
        while len(self._pending) < self.max_inflight and self._next < len(self._plan):
            self._schedule_one()
        if not self._pending:
            self._finish()
            raise StopIteration
        tile_sel, sources, error = self._pending.popleft()
        try:
            result = self._collect(tile_sel, sources, error)
        except BaseException:
            self.close()
            raise
        self._yielded += 1
        count("store.read.tiles_streamed")
        return result

    def _finish(self) -> None:
        self._closed = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb()

    def on_complete(self, callback) -> None:
        """Register a callback fired once, when the stream exhausts
        normally (not on error or early :meth:`close`) — the catalog's
        prefetcher hook."""
        if self._closed and not self._pending and self._next >= len(self._plan):
            callback()
            return
        self._callbacks.append(callback)

    def close(self) -> None:
        """Abandon the stream: cancel look-ahead decodes, drop pending
        tiles. The reader itself stays open and usable."""
        self._closed = True
        while self._pending:
            _, sources, _ = self._pending.popleft()
            for src in sources:
                self._drop_source(src)

    def __enter__(self) -> "TileStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
