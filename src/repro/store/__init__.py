"""repro.store — chunked, ratio-controlled compressed array store.

A single-file ``.rps`` container closes the loop from error-bound
prediction to bytes on disk: a deterministic chunk grid
(:mod:`~repro.store.chunking`), per-chunk compressed payloads with a
JSON manifest footer (:mod:`~repro.store.format`), a streaming writer
with closed-loop byte budgeting (:mod:`~repro.store.writer`), and a
checksum-verifying random-access reader (:mod:`~repro.store.reader`).

Typical use::

    from repro.api import Carol, Store, StoreOptions

    carol = Carol(compressor="szx"); carol.fit(train_fields)
    report = Store.pack("field.rps", field, carol, target_ratio=16.0)
    print(report.summary())             # achieved ratio vs target

    with Store("field.rps") as st:
        sub = st[4:12, :, 20:40]        # decompresses only intersecting chunks
        full = st.read()

``Store.pack`` accepts a :class:`~repro.data.fields.Field`, an ndarray,
or an ``np.memmap`` (see :func:`open_raw`) — memmapped inputs stream
through one wave of chunks at a time, so fields larger than RAM never
materialize.

Many stores are served together through a
:class:`~repro.store.catalog.StoreCatalog` (``Catalog`` on
:mod:`repro.api`): datasets addressed by key, manifests loaded lazily,
and a shared byte-budgeted LRU of decompressed chunks plus optional
worker-pool decode injected into every reader it opens::

    from repro.api import Catalog, CatalogOptions

    with Catalog("stores/", options=CatalogOptions(cache_bytes=1 << 28)) as cat:
        sub = cat.read("climate/temp", (slice(0, 8), slice(None), slice(None)))

Packing parallelizes without changing a single byte:
``StoreOptions(workers=N)`` fans each wave's feature extraction and
compression across a :class:`repro.serve.WorkerPool`, and because
budget re-targets happen only at wave boundaries (``wave_size`` chunks,
default 8 with workers, 1 without) the output file is byte-identical
for every worker count — ``wave_size=1`` is the classic serial loop
bit-for-bit.
"""

from repro.store.catalog import CatalogOptions, CatalogStats, StoreCatalog
from repro.store.chunking import Chunk, ChunkGrid, default_chunk_shape
from repro.store.format import CorruptChunkError, StoreFormatError
from repro.store.prefetch import Prefetcher, PrefetchStats
from repro.store.reader import StoreReader, StreamStats, TileStream
from repro.store.writer import (
    ChunkWriteRecord,
    PackReport,
    StoreOptions,
    StoreWriter,
    open_raw,
    pack,
)


class Store(StoreReader):
    """User-facing handle: ``Store(path)`` opens for reading,
    ``Store.pack(...)`` creates a container (see :func:`repro.store.pack`)."""

    pack = staticmethod(pack)


__all__ = [
    "Store",
    "StoreOptions",
    "StoreCatalog",
    "CatalogOptions",
    "CatalogStats",
    "StoreReader",
    "StoreWriter",
    "TileStream",
    "StreamStats",
    "Prefetcher",
    "PrefetchStats",
    "PackReport",
    "ChunkWriteRecord",
    "Chunk",
    "ChunkGrid",
    "default_chunk_shape",
    "CorruptChunkError",
    "StoreFormatError",
    "open_raw",
    "pack",
]
