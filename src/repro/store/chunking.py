"""Deterministic chunk grids over N-dimensional fields.

The store compresses a field chunk by chunk, SZ3-style: a fixed grid of
axis-aligned chunks, each carrying its own error bound, so the byte
budget can be steered per chunk while reads stay random-access. The grid
is a pure function of ``(shape, chunk_shape)`` — writer and reader
enumerate chunks in the same C order (last axis fastest) without any
stored index, and a subvolume request maps to the exact set of chunks it
intersects by integer arithmetic alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

#: Default per-chunk element target: big enough that per-chunk container
#: overhead (manifest entry + compressor header) stays negligible, small
#: enough that a chunk is always an in-RAM object even for memmapped inputs.
DEFAULT_CHUNK_ELEMENTS = 32768


def default_chunk_shape(shape: tuple[int, ...], target_elements: int = DEFAULT_CHUNK_ELEMENTS):
    """A chunk shape with roughly ``target_elements`` per chunk.

    Starts from the full field and repeatedly halves the largest axis until
    the chunk fits the target — deterministic, aspect-ratio-preserving, and
    never producing a zero-length axis.
    """
    if target_elements < 1:
        raise ValueError("target_elements must be >= 1")
    chunk = [int(s) for s in shape]
    if any(s < 1 for s in chunk):
        raise ValueError(f"shape must be positive, got {shape}")
    while int(np.prod(chunk)) > target_elements:
        axis = int(np.argmax(chunk))
        if chunk[axis] == 1:
            break
        chunk[axis] = -(-chunk[axis] // 2)
    return tuple(chunk)


@dataclass(frozen=True)
class Chunk:
    """One grid cell: its flat id, grid coordinates, and array slices."""

    index: int
    coords: tuple[int, ...]
    slices: tuple[slice, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(s.stop - s.start for s in self.slices)

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))


@dataclass(frozen=True)
class ChunkGrid:
    """Fixed chunk grid over an N-d field shape.

    Edge chunks are clipped to the field boundary (no padding), so the
    union of all chunk slices tiles the field exactly once.
    """

    shape: tuple[int, ...]
    chunk_shape: tuple[int, ...]

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        chunk = tuple(int(c) for c in self.chunk_shape)
        if len(shape) != len(chunk):
            raise ValueError(f"chunk_shape {chunk} does not match field rank {len(shape)}")
        if any(s < 1 for s in shape):
            raise ValueError(f"shape must be positive, got {shape}")
        if any(c < 1 for c in chunk):
            raise ValueError(f"chunk_shape must be positive, got {chunk}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "chunk_shape", tuple(min(c, s) for c, s in zip(chunk, shape)))

    @classmethod
    def for_shape(
        cls,
        shape: tuple[int, ...],
        chunk_shape: tuple[int, ...] | None = None,
        target_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> "ChunkGrid":
        """Grid with an explicit ``chunk_shape`` or a derived default."""
        if chunk_shape is None:
            chunk_shape = default_chunk_shape(tuple(shape), target_elements)
        return cls(tuple(shape), tuple(chunk_shape))

    @property
    def grid_shape(self) -> tuple[int, ...]:
        """Number of chunks along each axis."""
        return tuple(-(-s // c) for s, c in zip(self.shape, self.chunk_shape))

    @property
    def n_chunks(self) -> int:
        return int(np.prod(self.grid_shape))

    def chunk_at(self, coords: tuple[int, ...]) -> Chunk:
        """The chunk at grid coordinates ``coords``."""
        coords = tuple(int(c) for c in coords)
        grid = self.grid_shape
        if len(coords) != len(grid):
            raise ValueError(f"coords {coords} do not match grid rank {len(grid)}")
        for c, g in zip(coords, grid):
            if not 0 <= c < g:
                raise IndexError(f"chunk coords {coords} outside grid {grid}")
        slices = tuple(
            slice(c * cs, min((c + 1) * cs, s))
            for c, cs, s in zip(coords, self.chunk_shape, self.shape)
        )
        return Chunk(index=int(np.ravel_multi_index(coords, grid)), coords=coords, slices=slices)

    def chunk(self, index: int) -> Chunk:
        """The chunk with flat id ``index`` (C order over the grid)."""
        if not 0 <= index < self.n_chunks:
            raise IndexError(f"chunk index {index} outside [0, {self.n_chunks})")
        coords = tuple(int(c) for c in np.unravel_index(index, self.grid_shape))
        return self.chunk_at(coords)

    def __iter__(self):
        """All chunks in flat-id order (the storage order of the container)."""
        for coords in product(*(range(g) for g in self.grid_shape)):
            yield self.chunk_at(coords)

    def __len__(self) -> int:
        return self.n_chunks

    def normalize_region(self, region) -> tuple[slice, ...]:
        """Coerce a subvolume request into per-axis ``slice`` objects.

        Accepts a single slice/int, a tuple mixing slices and ints, or
        ``None``/``Ellipsis`` for the whole field. Integers select a
        length-one slab (kept as an axis, numpy-basic-indexing aside, so
        chunk intersection stays rank-preserving); steps are rejected.
        """
        if region is None or region is Ellipsis:
            region = ()
        if not isinstance(region, tuple):
            region = (region,)
        if Ellipsis in region:
            i = region.index(Ellipsis)
            fill = len(self.shape) - (len(region) - 1)
            region = region[:i] + (slice(None),) * fill + region[i + 1 :]
        if len(region) > len(self.shape):
            raise ValueError(f"region has {len(region)} axes; field has {len(self.shape)}")
        region = region + (slice(None),) * (len(self.shape) - len(region))
        out = []
        for axis, (r, s) in enumerate(zip(region, self.shape)):
            if isinstance(r, slice):
                if r.step not in (None, 1):
                    raise ValueError("strided store reads are not supported")
                start, stop, _ = r.indices(s)
            else:
                idx = int(r)
                if idx < 0:
                    idx += s
                if not 0 <= idx < s:
                    raise IndexError(f"index {r} out of bounds for axis {axis} of size {s}")
                start, stop = idx, idx + 1
            if stop < start:
                stop = start
            out.append(slice(start, stop))
        return tuple(out)

    def tiles_for_region(self, region, tile_shape=None) -> list[tuple[slice, ...]]:
        """Split a subvolume into tiles (field-coordinate slice tuples).

        The planning step of a streaming read: ``tile_shape=None`` makes
        each tile one chunk's intersection with the region, enumerated in
        flat chunk-id order — the storage order, so a full-region stream
        walks the file forward. An explicit ``tile_shape`` grids the
        region itself into boxes of that shape anchored at the region's
        start (edge tiles clipped), enumerated in C order. Either way the
        tile list is a pure function of ``(region, tile_shape)`` — the
        ordering-determinism half of the streaming contract — and tiles
        the region exactly once. An empty region has no tiles.
        """
        sel = self.normalize_region(region)
        if any(s.stop <= s.start for s in sel):
            return []
        if tile_shape is None:
            return [
                tuple(
                    slice(max(r.start, c.start), min(r.stop, c.stop))
                    for r, c in zip(sel, chunk.slices)
                )
                for chunk in self.chunks_intersecting(sel)
            ]
        tile = tuple(int(t) for t in tile_shape)
        if len(tile) != len(self.shape):
            raise ValueError(f"tile_shape {tile} does not match field rank {len(self.shape)}")
        if any(t < 1 for t in tile):
            raise ValueError(f"tile_shape must be positive, got {tile}")
        starts = [range(s.start, s.stop, t) for s, t in zip(sel, tile)]
        return [
            tuple(
                slice(start, min(start + t, s.stop))
                for start, t, s in zip(origin, tile, sel)
            )
            for origin in product(*starts)
        ]

    def chunks_intersecting(self, region) -> list[Chunk]:
        """Chunks overlapping a subvolume, in flat-id order.

        An empty region intersects nothing — the caller gets an empty read
        rather than a decompression of zero-width chunks.
        """
        sel = self.normalize_region(region)
        if any(s.stop <= s.start for s in sel):
            return []
        ranges = [
            range(s.start // c, -(-s.stop // c)) for s, c in zip(sel, self.chunk_shape)
        ]
        return [self.chunk_at(coords) for coords in product(*ranges)]
