"""Many ``.rps`` stores behind one façade: the sharded read service.

One :class:`~repro.store.reader.StoreReader` serves one container;
production is thousands of them. :class:`StoreCatalog` addresses a fleet
of stores by **dataset key** — populated by scanning a directory tree
for ``*.rps`` files (the key is the relative path minus the suffix) and/
or by explicit :meth:`~StoreCatalog.register` calls — and shares two
resources across every reader it opens:

- a **byte-budgeted LRU of decompressed chunks**
  (:class:`~repro.serve.cache.LRUCache` in cost mode, keyed by
  ``(dataset key + registration generation, chunk coords)``), so
  repeated subvolume reads across concurrent callers re-decode nothing
  and total cache memory stays under one budget no matter how many
  stores are open — and re-registering a key under a new path can never
  serve the old store's chunks (see :meth:`StoreCatalog.register`);
- an optional **decode pool** (:class:`~repro.serve.pool.WorkerPool`)
  that fans a read's chunk decodes out over worker processes.

Both are *injected into* the staged reader — the catalog holds no read
logic of its own, so catalog reads are byte-identical to plain
``StoreReader`` reads for every worker count and cache size. That holds
for streaming too: :meth:`StoreCatalog.read_iter` is the reader's
bounded-memory :class:`~repro.store.reader.TileStream` with the shared
resources injected. On top of the request stream the catalog can layer a
:class:`~repro.store.prefetch.Prefetcher`
(``CatalogOptions(prefetch_depth=...)``): sequential and strided scans
are detected per key and predicted next chunks are decoded into the
shared LRU after each request, so the next request (streamed or not)
hits cache instead of disk. When a decode pool is attached, those hint
decodes are *submitted* to idle worker slots instead of running inline:
the request that triggered them returns immediately and the decoded
chunks are harvested into the cache before the next request is served
(or whenever stats are read) — read-ahead overlaps caller think-time
without ever blocking a request on it.

Manifests load lazily: registration and scanning only record paths;
a store's file is opened (and its manifest parsed) the first time that
key is read. A corrupt chunk in one store raises
:class:`~repro.store.format.CorruptChunkError` for that read only —
every other store (and every other chunk) stays readable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields as dc_fields
from pathlib import Path

import numpy as np

from repro.obs import count
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.pool import PoolStats, WorkerPool
from repro.store.prefetch import Prefetcher, PrefetchStats
from repro.store.reader import StoreReader, TileStream

#: Default shared chunk-cache budget: 256 MiB of decompressed chunks.
DEFAULT_CACHE_BYTES = 256 << 20


@dataclass(frozen=True)
class CatalogStats:
    """Typed, immutable catalog accounting: fleet size, shared-cache
    traffic and cost, decode-pool task counts (``None`` without workers).

    The typed counterpart of the dict :meth:`StoreCatalog.stats` used to
    return; :meth:`as_dict` preserves that shape for serialization.
    """

    stores_registered: int
    stores_open: int
    cache: CacheStats
    cache_cost_bytes: float
    cache_budget_bytes: float
    pool: PoolStats | None = None
    prefetch: PrefetchStats | None = None

    def as_dict(self) -> dict:
        out = {
            "stores_registered": self.stores_registered,
            "stores_open": self.stores_open,
            "cache": self.cache.as_dict(),
            "cache_cost_bytes": self.cache_cost_bytes,
            "cache_budget_bytes": self.cache_budget_bytes,
        }
        if self.pool is not None:
            out["pool"] = self.pool.as_dict()
        if self.prefetch is not None:
            out["prefetch"] = self.prefetch.as_dict()
        return out


@dataclass(frozen=True, kw_only=True)
class CatalogOptions:
    """Frozen, hashable catalog configuration (the catalog counterpart of
    :class:`repro.api.FrameworkOptions`).

    ``cache_bytes`` budgets the shared decompressed-chunk LRU (0 disables
    caching; every read decodes). ``workers`` fans chunk decode out over
    a process pool (0 keeps decode in-process). ``verify=False`` skips
    checksum verification on payload fetch for trusted local media.
    ``prefetch_depth`` enables catalog-driven read-ahead: after a key's
    request stream shows ``prefetch_min_run`` consecutive requests at
    one stride (sequential scans included), up to ``prefetch_depth``
    predicted chunks are decoded into the shared cache ahead of the next
    request (0, the default, turns the prefetcher off entirely).
    """

    cache_bytes: int = DEFAULT_CACHE_BYTES
    workers: int = 0
    max_pending: int = 32
    timeout_seconds: float = 30.0
    verify: bool = True
    prefetch_depth: int = 0
    prefetch_min_run: int = 2

    def __post_init__(self) -> None:
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.prefetch_min_run < 2:
            raise ValueError("prefetch_min_run must be >= 2")

    @classmethod
    def from_catalog(cls, catalog: "StoreCatalog") -> "CatalogOptions":
        """Recover the options a live catalog was built with."""
        return catalog.options

    def to_kwargs(self) -> dict:
        """The constructor kwargs that rebuild these options
        (``CatalogOptions(**opts.to_kwargs())`` round-trips)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def build(self, root=None) -> "StoreCatalog":
        """Construct a :class:`StoreCatalog` from these options."""
        return StoreCatalog(root, options=self)


class StoreCatalog:
    """Addresses many ``.rps`` stores by dataset key, with a shared
    byte-budgeted chunk cache and optional parallel decode.

    ``root``, if given, is scanned immediately (see :meth:`scan`);
    more stores can be added any time via :meth:`register` or further
    scans. Keys are plain strings; scanning derives them from relative
    paths (``climate/temp.rps`` → ``climate/temp``).
    """

    def __init__(self, root=None, *, options: CatalogOptions | None = None) -> None:
        self.options = options or CatalogOptions()
        self._paths: dict[str, Path] = {}
        self._readers: dict[str, StoreReader] = {}
        # Per-key re-registration generation, folded into each reader's
        # cache scope so a re-pointed key can never hit the old store's
        # cached chunks (see register()).
        self._gens: dict[str, int] = {}
        self._lock = threading.Lock()
        self.chunk_cache = LRUCache(
            max_entries=None,
            name="store.chunk_cache",
            max_cost=float(self.options.cache_bytes),
        )
        # Read-ahead: advisory, decoupled from serving (see repro.store.prefetch).
        self.prefetcher: Prefetcher | None = None
        self._prefetch_lock = threading.Lock()
        self._prefetch_pending: set = set()  # issued cache keys not yet consumed
        # Hint decodes running on the pool, not yet admitted to the cache:
        # (key, reader, coords, cache_key, PoolTask) records, harvested
        # opportunistically (see _harvest_hints).
        self._prefetch_inflight: list = []
        self._prefetch_issued = 0
        self._prefetch_hits = 0
        self._prefetch_wasted = 0
        if self.options.prefetch_depth > 0:
            self.prefetcher = Prefetcher(
                depth=self.options.prefetch_depth,
                min_run=self.options.prefetch_min_run,
            )
        # Scan before spawning workers: a bad root raises here, and at
        # this point there is no pool to leak.
        self.pool: WorkerPool | None = None
        if root is not None:
            self.scan(root)
        if self.options.workers > 0:
            self.pool = WorkerPool(
                self.options.workers,
                max_pending=self.options.max_pending,
                timeout=self.options.timeout_seconds,
                name="catalog.pool",
            )

    # -- registration ------------------------------------------------------------

    def register(self, key: str, path) -> None:
        """Register one store under ``key``. Lazy: the file is not opened
        (nor required to exist yet) until the key is first read.

        Re-pointing an existing key to a different path retires its open
        reader and its cached chunks: the key's cache-scope generation
        is bumped (so even an in-flight read of the old store can never
        repopulate entries the new store would hit) and the old
        generation's entries are evicted eagerly to free budget. The
        displaced reader is *not* closed here — reads already in flight
        on it finish normally against the old store, and its file handle
        closes when the last reference is dropped.
        """
        key = str(key)
        with self._lock:
            old = self._paths.get(key)
            repointed = old is not None and Path(path) != old
            if repointed:
                old_scope = self._scope(key)
                self._gens[key] = self._gens.get(key, 0) + 1
                self._readers.pop(key, None)
            self._paths[key] = Path(path)
        if repointed:
            self.chunk_cache.evict_scope(old_scope)
            if self.prefetcher is not None:
                self.prefetcher.forget(key)
        count("catalog.registered")

    def _scope(self, key: str) -> str:
        """Cache scope for ``key``'s current generation. The generation
        is always the final ``#``-separated segment, so two scopes are
        equal only for the same (key, generation) pair — no collisions
        even for keys that themselves contain ``#``. Caller must hold
        ``self._lock``."""
        return f"{key}#{self._gens.get(key, 0)}"

    def scan(self, root) -> list[str]:
        """Scan ``root`` recursively for ``*.rps`` files and register each
        under its relative path without the suffix. Returns the keys
        found (sorted), whether or not they were already registered."""
        root = Path(root)
        if not root.is_dir():
            raise FileNotFoundError(f"catalog root is not a directory: {root}")
        found: list[str] = []
        for path in sorted(root.rglob("*.rps")):
            key = path.relative_to(root).with_suffix("").as_posix()
            self.register(key, path)
            found.append(key)
        return found

    # -- key access --------------------------------------------------------------

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._paths)

    def __contains__(self, key) -> bool:
        with self._lock:
            return str(key) in self._paths

    def __len__(self) -> int:
        with self._lock:
            return len(self._paths)

    def path(self, key: str) -> Path:
        """The registered path for ``key`` (whether or not it is open)."""
        with self._lock:
            try:
                return self._paths[str(key)]
            except KeyError:
                raise KeyError(
                    f"no store registered under {key!r} "
                    f"({len(self._paths)} keys registered)"
                ) from None

    def reader(self, key: str) -> StoreReader:
        """The (lazily opened) reader for ``key``, with the shared chunk
        cache and decode pool injected."""
        key = str(key)
        with self._lock:
            reader = self._readers.get(key)
            if reader is not None:
                return reader
            try:
                path = self._paths[key]
            except KeyError:
                raise KeyError(
                    f"no store registered under {key!r} "
                    f"({len(self._paths)} keys registered)"
                ) from None
            reader = StoreReader(
                path,
                verify=self.options.verify,
                chunk_cache=self.chunk_cache,
                cache_scope=self._scope(key),
                pool=self.pool,
            )
            self._readers[key] = reader
            count("catalog.opened")
            return reader

    __getitem__ = reader

    # -- reads -------------------------------------------------------------------

    def read(self, key: str, region=None) -> np.ndarray:
        """Read a subvolume (or the whole field, ``region=None``) from the
        store registered under ``key``. With a prefetcher configured, the
        request is recorded *after* it is served and any predicted
        next-request chunks are decoded into the shared cache."""
        key = str(key)
        reader = self.reader(key)
        if self.prefetcher is not None:
            self._settle_pending(reader, region)
        out = reader.read(region)
        if self.prefetcher is not None:
            self._after_request(key, reader, region)
        return out

    def read_iter(
        self, key: str, region=None, *, tile=None, max_inflight: int = 2
    ) -> TileStream:
        """Stream a subvolume as bounded-memory ``(tile_region, array)``
        pieces — :meth:`StoreReader.read_iter` with the catalog's shared
        cache and decode pool injected, plus prefetch observation: the
        request joins the key's stream when the stream *completes*, so
        read-ahead for the next request never competes with this one's
        decodes."""
        key = str(key)
        reader = self.reader(key)
        if self.prefetcher is not None:
            self._settle_pending(reader, region)
        stream = reader.read_iter(region, tile=tile, max_inflight=max_inflight)
        if self.prefetcher is not None:
            stream.on_complete(lambda: self._after_request(key, reader, region))
        return stream

    def read_chunk(self, key: str, coords: tuple[int, ...]) -> np.ndarray:
        """Decompress (or serve from cache) one chunk of one store."""
        return self.reader(key).read_chunk(coords)

    def info(self, key: str) -> dict:
        return self.reader(key).info()

    # -- prefetch ----------------------------------------------------------------

    def _settle_pending(self, reader: StoreReader, region) -> None:
        """Account prefetch outcomes *before* a request is served, while
        cache residency still reflects what the request will see: an
        issued chunk this request covers is a **hit** if still resident
        (the read about to happen consumes it from cache) and **wasted**
        if the LRU already dropped it; issued chunks outside the request
        stay pending unless evicted. Async hint decodes that have
        finished by now are admitted first, so the request sees every
        chunk prefetch managed to land."""
        self._harvest_hints()
        request = {
            reader._cache_key(chunk.coords)
            for chunk in reader.grid.chunks_intersecting(region)
        }
        with self._prefetch_lock:
            for cache_key in list(self._prefetch_pending):
                resident = cache_key in self.chunk_cache
                if cache_key in request and resident:
                    self._prefetch_pending.discard(cache_key)
                    self._prefetch_hits += 1
                    count("store.read.prefetch_hits")
                elif not resident:
                    self._prefetch_pending.discard(cache_key)
                    self._prefetch_wasted += 1
                    count("store.read.prefetch_wasted")

    def _after_request(self, key: str, reader: StoreReader, region) -> None:
        """Record a served request with the prefetcher and issue the
        hints it unlocks. Hint *prediction* is a pure function of the
        key's request history; hint *issuance* skips chunks the cache
        already holds (see :mod:`repro.store.prefetch`)."""
        chunks = reader.grid.chunks_intersecting(region)
        hints = self.prefetcher.predict(
            key, [c.index for c in chunks], reader.n_chunks
        )
        for chunk_id in hints:
            self._issue_hint(key, reader, chunk_id)

    def _issue_hint(self, key: str, reader: StoreReader, chunk_id: int) -> None:
        """Decode one predicted chunk into the shared cache. Best-effort:
        an unhelpful hint (cache disabled, chunk already resident, chunk
        too big to admit, or a fetch/decode failure) is simply skipped —
        prefetch must never fail or slow a request stream, and a corrupt
        chunk stays the *read* path's error to raise.

        With a decode pool attached, the payload is fetched inline (file
        I/O is serialized on the reader anyway) but the CPU-bound decode
        is submitted to an idle worker slot and harvested later
        (:meth:`_harvest_hints`) — read-ahead overlaps with whatever the
        caller does next instead of stretching its request."""
        from repro.store.reader import decode_chunk

        chunk = reader.grid.chunk(int(chunk_id))
        cache_key = reader._cache_key(chunk.coords)
        if self.chunk_cache.disabled or cache_key in self.chunk_cache:
            return
        try:
            entry = reader.chunk_entry(chunk.coords)
            payload = reader.fetch_payload(entry)
        except Exception:
            return
        if self.pool is not None:
            task = self.pool.submit(
                decode_chunk, reader.compressor, entry, payload, reader.verify
            )
            with self._prefetch_lock:
                self._prefetch_inflight.append(
                    (key, reader, chunk.coords, cache_key, task)
                )
            return
        try:
            data = decode_chunk(reader.compressor, entry, payload, reader.verify)
        except Exception:
            return
        self._admit_hint(key, reader, chunk.coords, cache_key, data)

    def _admit_hint(self, key: str, reader: StoreReader,
                    coords: tuple[int, ...], cache_key, data) -> None:
        """Admit one decoded hint chunk to the shared cache and count it
        as issued. A hint whose reader was retired (the key re-pointed
        while the decode ran) is dropped — its cache scope is already
        evicted and its bytes belong to the old store; counting only
        *admitted* hints keeps ``issued >= hits + wasted`` exact."""
        with self._lock:
            current = self._readers.get(key) is reader
        if not current or not reader._cache_put(coords, data):
            return
        with self._prefetch_lock:
            self._prefetch_pending.add(cache_key)
            self._prefetch_issued += 1
        count("store.read.prefetch_issued")

    def _harvest_hints(self) -> None:
        """Collect async hint decodes that have finished and admit their
        chunks. Non-blocking: tasks still running stay in flight (the
        read path never waits on read-ahead), and a decode that failed
        is dropped silently, same as the inline path."""
        with self._prefetch_lock:
            if not self._prefetch_inflight:
                return
            inflight, self._prefetch_inflight = self._prefetch_inflight, []
        ready, still = [], []
        for rec in inflight:
            (ready if rec[4].done() else still).append(rec)
        if still:
            with self._prefetch_lock:
                self._prefetch_inflight.extend(still)
        for key, reader, coords, cache_key, task in ready:
            try:
                data = task.result()
            except Exception:
                continue
            self._admit_hint(key, reader, coords, cache_key, data)

    def prefetch_stats(self) -> PrefetchStats:
        """A :class:`PrefetchStats` snapshot (all zeros when the
        prefetcher is off). Harvests finished async hints first, so the
        snapshot reflects every decode that has completed by now."""
        self._harvest_hints()
        with self._prefetch_lock:
            return PrefetchStats(
                issued=self._prefetch_issued,
                hits=self._prefetch_hits,
                wasted=self._prefetch_wasted,
            )

    # -- accounting --------------------------------------------------------------

    def stats(self) -> CatalogStats:
        """A :class:`CatalogStats` snapshot: fleet size, cache hit rate
        and cost, pool task counts (``stats().as_dict()`` recovers the
        pre-typed dict)."""
        with self._lock:
            registered = len(self._paths)
            opened = len(self._readers)
        return CatalogStats(
            stores_registered=registered,
            stores_open=opened,
            cache=self.chunk_cache.stats,
            cache_cost_bytes=self.chunk_cache.total_cost,
            cache_budget_bytes=float(self.options.cache_bytes),
            pool=None if self.pool is None else self.pool.stats,
            prefetch=None if self.prefetcher is None else self.prefetch_stats(),
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every open reader, drop the cache, shut the pool down.
        In-flight hint decodes are cancelled, not awaited — read-ahead
        for requests that will never come is not worth waiting on (a
        hint already running on a worker finishes with the pool's
        shutdown, its result discarded)."""
        with self._prefetch_lock:
            inflight, self._prefetch_inflight = self._prefetch_inflight, []
        for rec in inflight:
            rec[4].cancel()
        with self._lock:
            readers, self._readers = list(self._readers.values()), {}
        for reader in readers:
            reader.close()
        self.chunk_cache.clear()
        if self.pool is not None:
            self.pool.shutdown()

    def __enter__(self) -> "StoreCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoreCatalog({len(self)} stores, "
            f"cache_bytes={self.options.cache_bytes}, "
            f"workers={self.options.workers})"
        )
