"""The ``.rps`` single-file container format (repro store).

Layout, front to back::

    [12-byte magic  b"RPROSTORE\\x00\\x00\\x00"]
    [u16 LE format version]
    [chunk 0 payload][chunk 1 payload]...        # raw compressor bytes
    [JSON manifest, UTF-8]
    [u64 LE manifest offset][u32 LE manifest nbytes][8-byte tail magic b"RPSFOOT\\x00"]

Payloads are written append-only as chunks land (streaming writes never
seek backwards), and the manifest — everything a reader needs: field
shape/dtype, chunk grid, per-chunk ``offset``/``nbytes``/``error_bound``/
``achieved_ratio``/``checksum`` plus the compressor metadata to invert
each payload — arrives last, located via the fixed-size footer. A
truncated or half-written file therefore fails loudly at open (bad tail
magic) instead of yielding partial data.

Checksums are blake2b-128 over each chunk's payload bytes: corruption is
detected per chunk and reported naming the chunk, leaving every other
chunk readable.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

MAGIC = b"RPROSTORE\x00\x00\x00"
TAIL_MAGIC = b"RPSFOOT\x00"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<12sH")
_FOOTER = struct.Struct("<QI8s")

HEADER_BYTES = _HEADER.size
FOOTER_BYTES = _FOOTER.size


class StoreFormatError(ValueError):
    """The file is not a valid ``.rps`` container (wrong magic, version,
    truncation, or a manifest that does not parse)."""


class CorruptChunkError(StoreFormatError):
    """A chunk's payload bytes do not match their recorded checksum."""

    def __init__(self, coords: tuple[int, ...], path, detail: str) -> None:
        self.coords = tuple(coords)
        super().__init__(f"chunk {self.coords} of {Path(path).name} is corrupt: {detail}")


def chunk_checksum(payload: bytes) -> str:
    """blake2b-128 hex digest of one chunk's payload bytes."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def json_safe(value):
    """Convert compressor metadata to JSON-able values, reversibly.

    Tuples/arrays become lists (readers re-tuple ``shape`` themselves, the
    one key where it matters) and numpy scalars become Python numbers.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"chunk metadata value {value!r} is not JSON-serializable")


def write_header(fh) -> int:
    """Write the fixed header at the current position; returns bytes written."""
    fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
    return HEADER_BYTES


def write_manifest(fh, manifest: dict) -> int:
    """Append the manifest JSON plus the locating footer; returns bytes written."""
    offset = fh.tell()
    blob = json.dumps(manifest, sort_keys=True).encode("utf-8")
    fh.write(blob)
    fh.write(_FOOTER.pack(offset, len(blob), TAIL_MAGIC))
    return len(blob) + FOOTER_BYTES


def read_manifest(fh, path) -> dict:
    """Validate header + footer and return the parsed manifest."""
    fh.seek(0, 2)
    size = fh.tell()
    if size < HEADER_BYTES + FOOTER_BYTES:
        raise StoreFormatError(f"{Path(path).name}: too small to be a store file ({size} bytes)")
    fh.seek(0)
    magic, version = _HEADER.unpack(fh.read(HEADER_BYTES))
    if magic != MAGIC:
        raise StoreFormatError(f"{Path(path).name}: bad magic {magic!r}; not a repro store file")
    if version != FORMAT_VERSION:
        raise StoreFormatError(f"{Path(path).name}: unsupported store format version {version}")
    fh.seek(size - FOOTER_BYTES)
    offset, nbytes, tail = _FOOTER.unpack(fh.read(FOOTER_BYTES))
    if tail != TAIL_MAGIC:
        raise StoreFormatError(
            f"{Path(path).name}: missing footer magic — file is truncated or still being written"
        )
    if offset + nbytes + FOOTER_BYTES != size or offset < HEADER_BYTES:
        raise StoreFormatError(f"{Path(path).name}: footer points outside the file")
    fh.seek(offset)
    try:
        manifest = json.loads(fh.read(nbytes).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"{Path(path).name}: manifest does not parse: {exc}") from exc
    for key in ("shape", "dtype", "chunk_shape", "compressor", "chunks"):
        if key not in manifest:
            raise StoreFormatError(f"{Path(path).name}: manifest missing {key!r}")
    return manifest
