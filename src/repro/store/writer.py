"""Streaming store writer with a closed-loop byte budget and wave parallelism.

:class:`StoreWriter` turns "this field must fit N bytes" into a chunked
``.rps`` container: it walks a deterministic :class:`~repro.store.chunking.ChunkGrid`
over the input, predicts each chunk's error bound through a fitted
framework (or a :class:`repro.serve.PredictionService`, inheriting its
feature cache), compresses, and appends the payload — the input is only
ever touched one *wave* at a time, so fields loaded via ``np.memmap``
stream through without materializing.

The byte budget is *closed-loop*: after each wave lands, the remaining
budget is redistributed over the remaining raw bytes, so a chunk that
came in over target raises the ratio asked of later chunks (and vice
versa) instead of letting the error accumulate. Open-loop mode
(``closed_loop=False``) asks every chunk for the global target — the
per-chunk-prediction baseline the closed loop is measured against.

**Wave parallelism.** The pack loop is organized into deterministic
waves of ``wave_size`` chunks (flat chunk-id order). All chunks in a
wave share one re-target computed from the budget state at the wave
boundary; their feature extraction and compression fan out across a
:class:`repro.serve.WorkerPool` (``workers > 0``) and the payloads are
committed to the file strictly in chunk-id order. Because the re-target
sequence depends only on ``wave_size`` — never on ``workers`` — the
output file is **byte-identical for every worker count**, including the
in-process ``workers=0`` path. ``wave_size=1`` degenerates to the
original serial chunk-at-a-time loop bit-for-bit.

Every ``(features, error bound, achieved ratio, target)`` outcome can be
fed to a :class:`repro.core.feedback.FeedbackLoop` (``feedback=``): a
pack run is a batch of free ground-truth observations, so packing
improves the very model that budgets the next pack.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, fields as dc_fields
from pathlib import Path

import numpy as np

from repro.compressors.registry import get_compressor
from repro.control.policy import ControlOptions, ControlStats, Tier
from repro.core.framework import Prediction
from repro.obs import count, observe, set_gauge, timed_span
from repro.serve.service import _extract_task, worker_extract_spec
from repro.store.chunking import DEFAULT_CHUNK_ELEMENTS, ChunkGrid
from repro.store.format import chunk_checksum, json_safe, write_header, write_manifest
from repro.utils.validation import as_float_array

#: Wave width used when ``wave_size`` is unset and ``workers > 0``. A
#: constant (never derived from the worker count) so every worker count
#: re-targets at the same chunk boundaries and produces the same bytes.
DEFAULT_WAVE_SIZE = 8


@dataclass(frozen=True, kw_only=True)
class StoreOptions:
    """Frozen, hashable packing configuration (the store counterpart of
    :class:`repro.api.FrameworkOptions`).

    ``chunk_shape=None`` derives a grid of roughly ``chunk_elements``
    values per chunk. ``min_chunk_ratio``/``max_chunk_ratio`` clamp the
    per-chunk targets the closed loop may request, keeping one badly
    mispredicted chunk from driving the next target somewhere the model
    was never trained.

    ``workers`` fans each wave's feature extraction and compression out
    over a process pool (0 keeps everything in-process). ``wave_size``
    sets how many chunks share one closed-loop re-target; ``None`` means
    1 without workers (the classic serial loop) and
    :data:`DEFAULT_WAVE_SIZE` with them. The packed bytes depend on
    ``wave_size`` but **not** on ``workers``.

    ``control`` attaches the tier-escalation plane of
    :mod:`repro.control`: low-confidence chunks (or a drifting budget)
    escalate to a warm FRaZ search, and a consistently-confident model
    may relax whole waves to the surrogate heuristic. All control
    decisions are made at wave boundaries from committed state, and T2
    refinement runs in-process, so a controlled pack stays byte-identical
    for every worker count — ``control`` changes the bytes (vs ``None``),
    ``workers`` never does.
    """

    chunk_shape: tuple[int, ...] | None = None
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
    closed_loop: bool = True
    safety: float = 0.0
    min_chunk_ratio: float = 1.01
    max_chunk_ratio: float = 1e4
    workers: int = 0
    wave_size: int | None = None
    timeout_seconds: float = 120.0
    control: ControlOptions | None = None

    def __post_init__(self) -> None:
        if self.chunk_shape is not None:
            object.__setattr__(self, "chunk_shape", tuple(int(c) for c in self.chunk_shape))
        if self.chunk_elements < 1:
            raise ValueError("chunk_elements must be >= 1")
        if not 1.0 <= self.min_chunk_ratio <= self.max_chunk_ratio:
            raise ValueError("need 1 <= min_chunk_ratio <= max_chunk_ratio")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.wave_size is not None and self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")

    @classmethod
    def from_manifest(cls, manifest: dict) -> "StoreOptions":
        """Recover the packing options recorded in a store's manifest.

        Only the fields a manifest persists (grid, loop mode, safety,
        control policy) are recoverable; runtime knobs (``workers``,
        ``wave_size``, timeouts) come back as defaults — they never
        change the packed bytes.
        """
        control = manifest.get("control")
        return cls(
            chunk_shape=tuple(int(c) for c in manifest["chunk_shape"]),
            closed_loop=bool(manifest.get("closed_loop", True)),
            safety=float(manifest.get("safety", 0.0)),
            control=ControlOptions(**control) if control else None,
        )

    def to_kwargs(self) -> dict:
        """The constructor kwargs that rebuild these options
        (``StoreOptions(**opts.to_kwargs())`` round-trips)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    @property
    def resolved_wave_size(self) -> int:
        """The wave width actually used (resolves the ``None`` default)."""
        if self.wave_size is not None:
            return int(self.wave_size)
        return DEFAULT_WAVE_SIZE if self.workers > 0 else 1

    def grid_for(self, shape: tuple[int, ...]) -> ChunkGrid:
        return ChunkGrid.for_shape(shape, self.chunk_shape, self.chunk_elements)


@dataclass
class ChunkWriteRecord:
    """One packed chunk's outcome (mirrors its manifest entry)."""

    coords: tuple[int, ...]
    target_ratio: float
    error_bound: float
    achieved_ratio: float
    raw_bytes: int
    stored_bytes: int


@dataclass
class PackReport:
    """Whole-pack accounting returned by :meth:`StoreWriter.write`."""

    path: Path
    target_ratio: float
    closed_loop: bool
    original_bytes: int
    stored_bytes: int
    file_bytes: int
    chunks: list[ChunkWriteRecord] = dc_field(default_factory=list)
    wave_size: int = 1
    workers: int = 0
    pool_stats: dict = dc_field(default_factory=dict)
    control: ControlStats | None = None

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def n_waves(self) -> int:
        return -(-self.n_chunks // self.wave_size) if self.n_chunks else 0

    @property
    def achieved_ratio(self) -> float:
        """Original over stored bytes (chunk payloads + per-chunk headers;
        the manifest is fixed bookkeeping, not compression)."""
        return self.original_bytes / self.stored_bytes if self.stored_bytes else 0.0

    @property
    def budget_drift(self) -> float:
        """Relative deviation of the achieved ratio from the target."""
        return abs(self.achieved_ratio - self.target_ratio) / self.target_ratio

    def summary(self) -> str:
        text = (
            f"{self.path.name}: {self.n_chunks} chunks, "
            f"{self.original_bytes} -> {self.stored_bytes} bytes, "
            f"ratio {self.achieved_ratio:.2f} (target {self.target_ratio:.2f}, "
            f"drift {100.0 * self.budget_drift:.1f}%, "
            f"{'closed' if self.closed_loop else 'open'}-loop, "
            f"{self.n_waves} waves x {self.wave_size}, {self.workers} workers)"
        )
        if self.control is not None:
            c = self.control
            text += (
                f" [control: t0={c.t0} t1={c.t1} t2={c.t2}, "
                f"{c.compressions_spent} refine compressions]"
            )
        return text


def _as_source_array(source) -> np.ndarray:
    """A chunk-sliceable array view of the input, without copying it whole.

    Accepts a :class:`repro.data.fields.Field`, an ndarray (including
    ``np.memmap``), or anything array-like. Memmaps pass through untouched
    so slicing reads only the pages a chunk needs.
    """
    if hasattr(source, "data") and isinstance(source.data, np.ndarray):
        source = source.data  # a Field
    if isinstance(source, np.ndarray):
        if not np.issubdtype(source.dtype, np.floating):
            return as_float_array(source)
        return source
    return as_float_array(source)


def open_raw(path, shape: tuple[int, ...], dtype=np.float32) -> np.memmap:
    """Memory-map a headerless SDRBench-style raw file for packing.

    The returned memmap streams through :meth:`StoreWriter.write` one
    wave at a time — fields larger than RAM never fully materialize.
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path.name}: file has {actual} bytes but shape {tuple(shape)} with "
            f"dtype {dtype} needs {expected}"
        )
    return np.memmap(path, dtype=dtype, mode="r", shape=tuple(shape))


def _compress_task(codec_name: str, data: np.ndarray, error_bound: float):
    """Worker-side chunk compression (module-level for pickling).

    Deterministic: the payload depends only on ``(data, error_bound)``,
    so in-process and worker execution produce identical bytes.
    """
    return get_compressor(codec_name).compress(data, error_bound)


class StoreWriter:
    """Packs one field into one ``.rps`` container.

    ``predictor`` is either a fitted
    :class:`~repro.core.framework.RatioControlledFramework` or a
    :class:`repro.serve.PredictionService` wrapping one — the service
    route reuses its content-addressed feature cache, so re-packing an
    already-served field skips feature extraction per chunk.
    """

    def __init__(self, path, predictor, *, options: StoreOptions | None = None) -> None:
        self.path = Path(path)
        self.options = options or StoreOptions()
        if hasattr(predictor, "predict_error_bound"):
            self._framework = predictor
            self._service = None
        elif hasattr(predictor, "predict") and hasattr(predictor, "framework"):
            self._framework = predictor.framework
            self._service = predictor
        else:
            raise TypeError(
                "predictor must be a fitted framework or a PredictionService, "
                f"got {type(predictor).__name__}"
            )
        if self._framework.model.forest is None:
            raise ValueError("predictor's framework is not fitted")

    # -- prediction --------------------------------------------------------------

    def _predict_wave(self, arrays: list[np.ndarray], target: float, pool) -> list[Prediction]:
        """Error-bound predictions for one wave, in chunk order.

        Single-chunk waves follow the same batched code path — the
        batched entry points are bitwise-identical to their scalar
        counterparts, so ``wave_size=1`` reproduces the serial pack.
        """
        opts = self.options
        if self._service is not None:
            # The service batches, caches, and (optionally) fans out with
            # its own pool; results are bitwise-identical to service.predict.
            return list(
                self._service.predict_batch(
                    [(arr, target) for arr in arrays], safety=opts.safety
                )
            )
        framework = self._framework
        if pool is not None and len(arrays) > 1:
            spec = worker_extract_spec(framework)
            if spec is not None:
                kind, stride = spec
                rows = pool.map_ordered(
                    _extract_task, [(kind, stride, arr) for arr in arrays]
                )
                F = np.stack([np.asarray(r, dtype=np.float64) for r in rows])
            else:
                F = framework.extract_features_many(arrays)
        else:
            F = framework.extract_features_many(arrays)
        ratios = np.full(len(arrays), float(target))
        ebs = framework.model.predict_error_bound_batch(F, ratios, safety=opts.safety)
        return [
            Prediction(float(eb), float(target), F[i], 0.0, 0.0)
            for i, eb in enumerate(ebs)
        ]

    # -- packing -----------------------------------------------------------------

    def _wave_target(
        self, target_ratio: float, budget: float, spent: int, raw_remaining: int
    ) -> float:
        """The shared target for the next wave, from the budget state.

        Hardened against budget exhaustion mid-pack: the remaining budget
        is floored at one byte (never zero, so the division is safe) and
        the result is clamped into ``[min_chunk_ratio, max_chunk_ratio]``
        — an impossibly tight budget asks for the ceiling ratio instead
        of a nonsensical (or < 1) target.
        """
        opts = self.options
        if not opts.closed_loop:
            return target_ratio
        remaining_budget = max(budget - spent, 1.0)
        if raw_remaining <= 0:
            return opts.max_chunk_ratio
        target = raw_remaining / remaining_budget
        return min(max(target, opts.min_chunk_ratio), opts.max_chunk_ratio)

    @staticmethod
    def _pressure(target_ratio: float, spent: int, committed_raw: int) -> float:
        """Observed budget drift over the *committed* chunks: the relative
        deviation of their overall achieved ratio from the pack target.

        Computed only from bytes already landed in the file (wave-boundary
        state), so it is identical for every worker count. 0.0 before the
        first commit — no evidence of drift yet.
        """
        if spent <= 0 or committed_raw <= 0:
            return 0.0
        achieved = committed_raw / spent
        return abs(achieved - target_ratio) / target_ratio

    def write(self, source, target_ratio: float, *, feedback=None) -> PackReport:
        """Pack ``source`` to ``target_ratio``; returns a :class:`PackReport`.

        ``feedback``, if given, is a :class:`repro.core.feedback.FeedbackLoop`
        (or anything with its ``record`` signature): every chunk's measured
        outcome is recorded as a training observation, in chunk-id order.
        """
        target_ratio = float(target_ratio)
        if target_ratio <= 1.0:
            raise ValueError(f"target_ratio must be > 1, got {target_ratio}")
        arr = _as_source_array(source)
        opts = self.options
        grid = opts.grid_for(arr.shape)
        codec = self._framework._codec
        wave_size = opts.resolved_wave_size
        controller = None
        if opts.control is not None:
            controller = opts.control.build(
                self._service if self._service is not None else self._framework,
                feedback=feedback,
            )

        original_bytes = int(arr.nbytes)
        budget = original_bytes / target_ratio
        raw_remaining = original_bytes
        spent = 0
        entries: list[dict] = []
        records: list[ChunkWriteRecord] = []
        chunks = list(grid)

        pool = None
        if opts.workers > 0:
            from repro.serve.pool import WorkerPool

            pool = WorkerPool(
                opts.workers, timeout=opts.timeout_seconds, name="store.pool"
            )

        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with timed_span(
                "store.pack",
                path=str(self.path),
                n_chunks=grid.n_chunks,
                target_ratio=target_ratio,
                closed_loop=opts.closed_loop,
                workers=opts.workers,
                wave_size=wave_size,
            ):
                with open(self.path, "wb") as fh:
                    offset = write_header(fh)
                    for wave_index, start in enumerate(range(0, len(chunks), wave_size)):
                        wave = chunks[start : start + wave_size]
                        wave_target = self._wave_target(
                            target_ratio, budget, spent, raw_remaining
                        )
                        pressure = self._pressure(
                            target_ratio, spent, original_bytes - raw_remaining
                        )
                        if controller is not None:
                            # Aggregate drift can cancel (under- then over-
                            # shoot); the controller folds in the committed
                            # cheap-tier chunks' per-chunk ratio error, which
                            # cannot.
                            pressure = controller.observed_pressure(pressure)
                        with timed_span(
                            "store.pack.wave",
                            index=wave_index,
                            n_chunks=len(wave),
                            target_ratio=wave_target,
                        ):
                            # One wave in RAM at a time: a memmap source is
                            # read page-by-page here, never materialized whole.
                            arrays = [
                                np.ascontiguousarray(arr[c.slices]) for c in wave
                            ]
                            # Control decisions use only wave-boundary state
                            # (pressure, committed spreads, remaining risk) and
                            # escalated chunks refine in-process, so the bytes
                            # below are identical for every worker count.
                            escalated: dict[int, object] = {}
                            if (
                                controller is not None
                                and controller.wave_tier(pressure) is Tier.HEURISTIC
                            ):
                                preds = [
                                    controller.heuristic_prediction(a, wave_target)
                                    for a in arrays
                                ]
                            else:
                                preds = self._predict_wave(arrays, wave_target, pool)
                                if controller is not None:
                                    for i, (a, p) in enumerate(zip(arrays, preds)):
                                        controller.record_std(p.std)
                                        tier = controller.chunk_tier(p.std, pressure)
                                        if tier is not Tier.REFINE:
                                            continue
                                        fraz = controller.refine(
                                            a,
                                            wave_target,
                                            initial_eb=p.error_bound,
                                            features=p.features,
                                        )
                                        escalated[i] = fraz
                                        preds[i] = Prediction(
                                            error_bound=float(fraz.error_bound),
                                            target_ratio=float(wave_target),
                                            features=p.features,
                                            feature_seconds=p.feature_seconds,
                                            inference_seconds=p.inference_seconds,
                                            std=p.std,
                                        )
                            tasks = [
                                (codec.name, a, p.error_bound)
                                for i, (a, p) in enumerate(zip(arrays, preds))
                                if i not in escalated
                            ]
                            if pool is not None and len(tasks) > 1:
                                pooled = pool.map_ordered(_compress_task, tasks)
                            else:
                                pooled = [_compress_task(*t) for t in tasks]
                            # Weave refined payloads back into chunk order
                            # (escalated chunks were already compressed by
                            # the warm FRaZ search itself).
                            pooled_iter = iter(pooled)
                            results = [
                                escalated[i].result if i in escalated
                                else next(pooled_iter)
                                for i in range(len(arrays))
                            ]
                        count("store.pack.waves")
                        # Ordered commit: payloads land in chunk-id order no
                        # matter which worker finished first.
                        for wave_i, (chunk, chunk_arr, pred, result) in enumerate(
                            zip(wave, arrays, preds, results)
                        ):
                            payload = result.payload
                            chunk_raw = int(chunk_arr.nbytes)
                            fh.write(payload)
                            if controller is not None:
                                if wave_i in escalated:
                                    # The warm search's first probe ran at
                                    # the model's own eb — the window keeps
                                    # tracking the model, not FRaZ.
                                    _, probe_ratio = escalated[wave_i].history[0]
                                    controller.record_outcome(wave_target, probe_ratio)
                                else:
                                    controller.record_outcome(wave_target, result.ratio)
                            if (
                                feedback is not None
                                and pred.features.size
                                and wave_i not in escalated
                            ):
                                # Heuristic chunks have no features to learn
                                # from; escalated chunks were already logged
                                # probe-by-probe by controller.refine().
                                feedback.record(
                                    pred.features,
                                    pred.error_bound,
                                    result.ratio,
                                    wave_target,
                                )
                            spent += result.compressed_bytes
                            raw_remaining -= chunk_raw
                            count("store.chunks_written")
                            count("store.bytes_written", len(payload))
                            observe("store.chunk.achieved_ratio", result.ratio)
                            entries.append(
                                {
                                    "coords": list(chunk.coords),
                                    "offset": offset,
                                    "nbytes": len(payload),
                                    "error_bound": float(pred.error_bound),
                                    "target_ratio": float(wave_target),
                                    "achieved_ratio": float(result.ratio),
                                    "raw_bytes": chunk_raw,
                                    "checksum": chunk_checksum(payload),
                                    "meta": json_safe(result.metadata),
                                }
                            )
                            records.append(
                                ChunkWriteRecord(
                                    coords=chunk.coords,
                                    target_ratio=float(wave_target),
                                    error_bound=float(pred.error_bound),
                                    achieved_ratio=float(result.ratio),
                                    raw_bytes=chunk_raw,
                                    stored_bytes=result.compressed_bytes,
                                )
                            )
                            offset += len(payload)
                    manifest = {
                        "version": 1,
                        "compressor": codec.name,
                        "framework": self._framework.name,
                        "shape": list(arr.shape),
                        "dtype": str(arr.dtype),
                        "chunk_shape": list(grid.chunk_shape),
                        "grid_shape": list(grid.grid_shape),
                        "target_ratio": target_ratio,
                        "closed_loop": opts.closed_loop,
                        "safety": opts.safety,
                        "original_bytes": original_bytes,
                        "stored_bytes": spent,
                        "chunks": entries,
                    }
                    if opts.control is not None:
                        manifest["control"] = opts.control.to_kwargs()
                    manifest_bytes = write_manifest(fh, manifest)
        finally:
            pool_stats = {}
            if pool is not None:
                pool_stats = pool.stats.as_dict()
                pool.shutdown()
        control_stats = None
        if controller is not None:
            achieved = original_bytes / spent if spent else 0.0
            control_stats = controller.stats(
                budget_drift=abs(achieved - target_ratio) / target_ratio
            )
        report = PackReport(
            path=self.path,
            target_ratio=target_ratio,
            closed_loop=opts.closed_loop,
            original_bytes=original_bytes,
            stored_bytes=spent,
            file_bytes=offset + manifest_bytes,
            chunks=records,
            wave_size=wave_size,
            workers=opts.workers,
            pool_stats=pool_stats,
            control=control_stats,
        )
        observe("store.pack.budget_drift", report.budget_drift)
        set_gauge("store.pack.achieved_ratio", report.achieved_ratio)
        if pool_stats:
            # Worker utilization: share of tasks that actually completed on
            # the pool (fallbacks ran in-process, so they don't count).
            submitted = max(pool_stats.get("submitted", 0), 1)
            on_pool = pool_stats.get("completed", 0) - pool_stats.get("fallbacks", 0)
            set_gauge("store.pack.worker_utilization", max(on_pool, 0) / submitted)
            count("store.pack.worker_fallbacks", pool_stats.get("fallbacks", 0))
            count("store.pack.worker_timeouts", pool_stats.get("timeouts", 0))
        return report


def pack(
    path,
    source,
    predictor,
    target_ratio: float,
    *,
    options: StoreOptions | None = None,
    feedback=None,
) -> PackReport:
    """One-call pack: ``source`` (Field / array / memmap) into ``path``."""
    return StoreWriter(path, predictor, options=options).write(
        source, target_ratio, feedback=feedback
    )
