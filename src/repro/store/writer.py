"""Streaming store writer with a closed-loop byte budget.

:class:`StoreWriter` turns "this field must fit N bytes" into a chunked
``.rps`` container: it walks a deterministic :class:`~repro.store.chunking.ChunkGrid`
over the input, predicts each chunk's error bound through a fitted
framework (or a :class:`repro.serve.PredictionService`, inheriting its
feature cache), compresses, and appends the payload — the input is only
ever touched one chunk at a time, so fields loaded via ``np.memmap``
stream through without materializing.

The byte budget is *closed-loop*: after each chunk lands, the remaining
budget is redistributed over the remaining raw bytes, so a chunk that
came in over target raises the ratio asked of later chunks (and vice
versa) instead of letting the error accumulate. Open-loop mode
(``closed_loop=False``) asks every chunk for the global target — the
per-chunk-prediction baseline the closed loop is measured against.

Every ``(features, error bound, achieved ratio, target)`` outcome can be
fed to a :class:`repro.core.feedback.FeedbackLoop` (``feedback=``): a
pack run is a batch of free ground-truth observations, so packing
improves the very model that budgets the next pack.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from pathlib import Path

import numpy as np

from repro.obs import count, observe, set_gauge, timed_span
from repro.store.chunking import DEFAULT_CHUNK_ELEMENTS, ChunkGrid
from repro.store.format import chunk_checksum, json_safe, write_header, write_manifest
from repro.utils.validation import as_float_array


@dataclass(frozen=True)
class StoreOptions:
    """Frozen, hashable packing configuration (the store counterpart of
    :class:`repro.api.FrameworkOptions`).

    ``chunk_shape=None`` derives a grid of roughly ``chunk_elements``
    values per chunk. ``min_chunk_ratio``/``max_chunk_ratio`` clamp the
    per-chunk targets the closed loop may request, keeping one badly
    mispredicted chunk from driving the next target somewhere the model
    was never trained.
    """

    chunk_shape: tuple[int, ...] | None = None
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
    closed_loop: bool = True
    safety: float = 0.0
    min_chunk_ratio: float = 1.01
    max_chunk_ratio: float = 1e4

    def __post_init__(self) -> None:
        if self.chunk_shape is not None:
            object.__setattr__(self, "chunk_shape", tuple(int(c) for c in self.chunk_shape))
        if self.chunk_elements < 1:
            raise ValueError("chunk_elements must be >= 1")
        if not 1.0 <= self.min_chunk_ratio <= self.max_chunk_ratio:
            raise ValueError("need 1 <= min_chunk_ratio <= max_chunk_ratio")

    def grid_for(self, shape: tuple[int, ...]) -> ChunkGrid:
        return ChunkGrid.for_shape(shape, self.chunk_shape, self.chunk_elements)


@dataclass
class ChunkWriteRecord:
    """One packed chunk's outcome (mirrors its manifest entry)."""

    coords: tuple[int, ...]
    target_ratio: float
    error_bound: float
    achieved_ratio: float
    raw_bytes: int
    stored_bytes: int


@dataclass
class PackReport:
    """Whole-pack accounting returned by :meth:`StoreWriter.write`."""

    path: Path
    target_ratio: float
    closed_loop: bool
    original_bytes: int
    stored_bytes: int
    file_bytes: int
    chunks: list[ChunkWriteRecord] = dc_field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def achieved_ratio(self) -> float:
        """Original over stored bytes (chunk payloads + per-chunk headers;
        the manifest is fixed bookkeeping, not compression)."""
        return self.original_bytes / self.stored_bytes if self.stored_bytes else 0.0

    @property
    def budget_drift(self) -> float:
        """Relative deviation of the achieved ratio from the target."""
        return abs(self.achieved_ratio - self.target_ratio) / self.target_ratio

    def summary(self) -> str:
        return (
            f"{self.path.name}: {self.n_chunks} chunks, "
            f"{self.original_bytes} -> {self.stored_bytes} bytes, "
            f"ratio {self.achieved_ratio:.2f} (target {self.target_ratio:.2f}, "
            f"drift {100.0 * self.budget_drift:.1f}%, "
            f"{'closed' if self.closed_loop else 'open'}-loop)"
        )


def _as_source_array(source) -> np.ndarray:
    """A chunk-sliceable array view of the input, without copying it whole.

    Accepts a :class:`repro.data.fields.Field`, an ndarray (including
    ``np.memmap``), or anything array-like. Memmaps pass through untouched
    so slicing reads only the pages a chunk needs.
    """
    if hasattr(source, "data") and isinstance(source.data, np.ndarray):
        source = source.data  # a Field
    if isinstance(source, np.ndarray):
        if not np.issubdtype(source.dtype, np.floating):
            return as_float_array(source)
        return source
    return as_float_array(source)


def open_raw(path, shape: tuple[int, ...], dtype=np.float32) -> np.memmap:
    """Memory-map a headerless SDRBench-style raw file for packing.

    The returned memmap streams through :meth:`StoreWriter.write` one
    chunk at a time — fields larger than RAM never fully materialize.
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ValueError(
            f"{path.name}: file has {actual} bytes but shape {tuple(shape)} with "
            f"dtype {dtype} needs {expected}"
        )
    return np.memmap(path, dtype=dtype, mode="r", shape=tuple(shape))


class StoreWriter:
    """Packs one field into one ``.rps`` container.

    ``predictor`` is either a fitted
    :class:`~repro.core.framework.RatioControlledFramework` or a
    :class:`repro.serve.PredictionService` wrapping one — the service
    route reuses its content-addressed feature cache, so re-packing an
    already-served field skips feature extraction per chunk.
    """

    def __init__(self, path, predictor, *, options: StoreOptions | None = None) -> None:
        self.path = Path(path)
        self.options = options or StoreOptions()
        if hasattr(predictor, "predict_error_bound"):
            self._framework = predictor
            self._service = None
        elif hasattr(predictor, "predict") and hasattr(predictor, "framework"):
            self._framework = predictor.framework
            self._service = predictor
        else:
            raise TypeError(
                "predictor must be a fitted framework or a PredictionService, "
                f"got {type(predictor).__name__}"
            )
        if self._framework.model.forest is None:
            raise ValueError("predictor's framework is not fitted")

    # -- prediction --------------------------------------------------------------

    def _predict(self, chunk_arr: np.ndarray, target: float):
        if self._service is not None:
            return self._service.predict(chunk_arr, target, safety=self.options.safety)
        return self._framework.predict_error_bound(
            chunk_arr, target, safety=self.options.safety
        )

    # -- packing -----------------------------------------------------------------

    def write(self, source, target_ratio: float, *, feedback=None) -> PackReport:
        """Pack ``source`` to ``target_ratio``; returns a :class:`PackReport`.

        ``feedback``, if given, is a :class:`repro.core.feedback.FeedbackLoop`
        (or anything with its ``record`` signature): every chunk's measured
        outcome is recorded as a training observation.
        """
        target_ratio = float(target_ratio)
        if target_ratio <= 1.0:
            raise ValueError(f"target_ratio must be > 1, got {target_ratio}")
        arr = _as_source_array(source)
        opts = self.options
        grid = opts.grid_for(arr.shape)
        codec = self._framework._codec

        original_bytes = int(arr.nbytes)
        budget = original_bytes / target_ratio
        raw_remaining = original_bytes
        spent = 0
        entries: list[dict] = []
        records: list[ChunkWriteRecord] = []

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with timed_span(
            "store.pack",
            path=str(self.path),
            n_chunks=grid.n_chunks,
            target_ratio=target_ratio,
            closed_loop=opts.closed_loop,
        ):
            with open(self.path, "wb") as fh:
                offset = write_header(fh)
                for chunk in grid:
                    # One chunk in RAM at a time: a memmap source is read
                    # page-by-page here, never materialized whole.
                    chunk_arr = np.ascontiguousarray(arr[chunk.slices])
                    chunk_raw = int(chunk_arr.nbytes)
                    if opts.closed_loop:
                        remaining_budget = max(budget - spent, 1.0)
                        chunk_target = raw_remaining / remaining_budget
                        chunk_target = min(
                            max(chunk_target, opts.min_chunk_ratio), opts.max_chunk_ratio
                        )
                    else:
                        chunk_target = target_ratio
                    with timed_span(
                        "store.pack.chunk", coords=chunk.coords, target_ratio=chunk_target
                    ):
                        pred = self._predict(chunk_arr, chunk_target)
                        result = codec.compress(chunk_arr, pred.error_bound)
                    payload = result.payload
                    fh.write(payload)
                    if feedback is not None:
                        feedback.record(
                            pred.features, pred.error_bound, result.ratio, chunk_target
                        )
                    spent += result.compressed_bytes
                    raw_remaining -= chunk_raw
                    count("store.chunks_written")
                    count("store.bytes_written", len(payload))
                    observe("store.chunk.achieved_ratio", result.ratio)
                    entries.append(
                        {
                            "coords": list(chunk.coords),
                            "offset": offset,
                            "nbytes": len(payload),
                            "error_bound": float(pred.error_bound),
                            "target_ratio": float(chunk_target),
                            "achieved_ratio": float(result.ratio),
                            "raw_bytes": chunk_raw,
                            "checksum": chunk_checksum(payload),
                            "meta": json_safe(result.metadata),
                        }
                    )
                    records.append(
                        ChunkWriteRecord(
                            coords=chunk.coords,
                            target_ratio=float(chunk_target),
                            error_bound=float(pred.error_bound),
                            achieved_ratio=float(result.ratio),
                            raw_bytes=chunk_raw,
                            stored_bytes=result.compressed_bytes,
                        )
                    )
                    offset += len(payload)
                manifest = {
                    "version": 1,
                    "compressor": codec.name,
                    "framework": self._framework.name,
                    "shape": list(arr.shape),
                    "dtype": str(arr.dtype),
                    "chunk_shape": list(grid.chunk_shape),
                    "grid_shape": list(grid.grid_shape),
                    "target_ratio": target_ratio,
                    "closed_loop": opts.closed_loop,
                    "safety": opts.safety,
                    "original_bytes": original_bytes,
                    "stored_bytes": spent,
                    "chunks": entries,
                }
                manifest_bytes = write_manifest(fh, manifest)
        report = PackReport(
            path=self.path,
            target_ratio=target_ratio,
            closed_loop=opts.closed_loop,
            original_bytes=original_bytes,
            stored_bytes=spent,
            file_bytes=offset + manifest_bytes,
            chunks=records,
        )
        observe("store.pack.budget_drift", report.budget_drift)
        set_gauge("store.pack.achieved_ratio", report.achieved_ratio)
        return report


def pack(
    path,
    source,
    predictor,
    target_ratio: float,
    *,
    options: StoreOptions | None = None,
    feedback=None,
) -> PackReport:
    """One-call pack: ``source`` (Field / array / memmap) into ``path``."""
    return StoreWriter(path, predictor, options=options).write(
        source, target_ratio, feedback=feedback
    )
