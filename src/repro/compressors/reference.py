"""Reference (pre-fusion) whole-array compressor pipelines, kept as oracles.

Each class here is a verbatim copy of the whole-array implementation that
shipped before the fused tile-streamed pipelines in
:mod:`repro.compressors.sz3`, :mod:`repro.compressors.sperr` and
:mod:`repro.compressors.szx` replaced it. They exist for two reasons
(the same discipline as :mod:`repro.encoding.reference`):

- **byte-identity gates** — the fused pipelines promise *identical
  payloads and metadata*; property tests and ``python -m repro
  codec-bench`` diff every payload against these oracles and fail loudly
  on a single differing byte, which is what keeps ``.rps`` stores,
  golden blobs and every downstream determinism gate valid without
  regeneration;
- **benchmark baselines** — the whole-compressor rows of
  ``BENCH_codec.json`` record the fused pipelines' end-to-end speedup
  and working-set reduction over these implementations, so the perf
  trajectory is measured against a fixed, honest reference rather than
  a moving one.

Nothing on a hot path imports this module.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.compressors.speck import SpeckCoder
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.transforms.wavelet import cdf97_forward, cdf97_inverse, max_levels

# -- SZ3 (interpolation + Lorenzo) -------------------------------------------

_C0 = -1.0 / 16.0
_C1 = 9.0 / 16.0
_RADIUS = 32767  # quantization codes in [-RADIUS, RADIUS]
_OFFSET = 32768
_OUTLIER = 65536  # sentinel symbol -> value stored exactly
_ALPHABET = 65537
_SYMBOL_BITS = 17


def _anchor_level(shape: tuple[int, ...]) -> int:
    """Number of interpolation levels (anchor stride = 2^L)."""
    longest = max(shape)
    if longest < 3:
        return 1
    return int(min(6, np.floor(np.log2(longest - 1))))


def _interp_passes(shape: tuple[int, ...], levels: int):
    """Yield (axis, stride, half) pass descriptors in traversal order."""
    for level in range(levels, 0, -1):
        s = 1 << level
        h = s >> 1
        for axis in range(len(shape)):
            yield axis, s, h


def _pass_subgrid(recon: np.ndarray, axis: int, s: int, h: int) -> np.ndarray | None:
    """View of ``recon`` holding the lines this pass predicts along."""
    slicer = tuple(
        slice(None) if a == axis else slice(0, None, h if a < axis else s)
        for a in range(recon.ndim)
    )
    sub = np.moveaxis(recon[slicer], axis, 0)
    if sub.shape[0] <= h:
        return None
    return sub


def _predict(sub: np.ndarray, h: int, s: int) -> tuple[np.ndarray, np.ndarray]:
    """Spline prediction for mid positions ``h, h+s, ...`` along axis 0."""
    n = sub.shape[0]
    mids = np.arange(h, n, s)
    lm1 = sub[mids - h]
    r1 = mids + h
    has_r1 = r1 < n
    rp1 = sub[np.minimum(r1, n - 1)]
    l3 = mids - 3 * h
    has_l3 = l3 >= 0
    lm3 = sub[np.maximum(l3, 0)]
    r3 = mids + 3 * h
    has_r3 = r3 < n
    rp3 = sub[np.minimum(r3, n - 1)]

    bshape = (mids.size,) + (1,) * (sub.ndim - 1)
    full = (has_l3 & has_r1 & has_r3).reshape(bshape)
    linear_ok = has_r1.reshape(bshape)
    cubic = _C0 * lm3 + _C1 * lm1 + _C1 * rp1 + _C0 * rp3
    linear = 0.5 * (lm1 + rp1)
    pred = np.where(full, cubic, np.where(linear_ok, linear, lm1))
    return mids, pred


class ReferenceSZ3Compressor(LossyCompressor):
    """Frozen whole-array SZ3 pipeline (predict -> quantize -> encode as
    separate full-array passes with intermediate materialization)."""

    name = "sz3"

    def __init__(self, predictor: str = "interp", entropy: str = "huffman") -> None:
        if predictor not in ("interp", "lorenzo"):
            raise ValueError("predictor must be 'interp' or 'lorenzo'")
        if entropy not in ("huffman", "range"):
            raise ValueError("entropy must be 'huffman' or 'range'")
        self.predictor = predictor
        self.entropy = entropy

    def _encode_codes(self, symbols: np.ndarray, writer: BitWriter) -> bytes:
        """Entropy stage; model/codebook goes to ``writer``, returns bytes."""
        if self.entropy == "range":
            from repro.encoding.range_coder import range_encode

            payload, freq = range_encode(symbols, alphabet_size=_ALPHABET)
            present = np.flatnonzero(freq > 0)
            writer.write_elias_gamma(present.size + 1)
            writer.write_uint_array(present.astype(np.uint64), _SYMBOL_BITS)
            for c in freq[present]:
                writer.write_elias_gamma(int(c))
            return payload
        codec = HuffmanCodec.fit(symbols, alphabet_size=_ALPHABET)
        present = np.flatnonzero(codec.lengths > 0)
        writer.write_elias_gamma(present.size + 1)
        writer.write_uint_array(present.astype(np.uint64), _SYMBOL_BITS)
        writer.write_uint_array(codec.lengths[present].astype(np.uint64), 6)
        code_writer = BitWriter()
        codec.encode(symbols, code_writer)
        return lz77_compress(code_writer.getvalue())

    def _decode_codes(self, reader: BitReader, payload: bytes, count: int) -> np.ndarray:
        if self.entropy == "range":
            from repro.encoding.range_coder import range_decode

            n_present = reader.read_elias_gamma() - 1
            present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
            counts = np.array([reader.read_elias_gamma() for _ in range(n_present)],
                              dtype=np.int64)
            freq = np.zeros(_ALPHABET, dtype=np.int64)
            freq[present] = counts
            return range_decode(payload, freq, count)
        n_present = reader.read_elias_gamma() - 1
        present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
        plens = reader.read_uint_array(n_present, 6).astype(np.int64)
        lengths = np.zeros(_ALPHABET, dtype=np.int64)
        lengths[present] = plens
        codec = HuffmanCodec.from_lengths(lengths)
        return codec.decode(BitReader(lz77_decompress(payload)), count)

    def _compress_interp(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        shape = data.shape
        levels = _anchor_level(shape)
        stride = 1 << levels
        recon = np.zeros_like(data)
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        anchors = data[anchor_slicer].astype(np.float64)
        recon[anchor_slicer] = anchors

        codes: list[np.ndarray] = []
        outliers: list[np.ndarray] = []
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            orig = np.moveaxis(
                data[tuple(
                    slice(None) if a == axis else slice(0, None, h if a < axis else s)
                    for a in range(data.ndim)
                )],
                axis,
                0,
            )
            mids, pred = _predict(sub, h, s)
            vals = orig[mids]
            q = np.rint((vals - pred) / step)
            bad = np.abs(q) > _RADIUS
            q = np.clip(q, -_RADIUS, _RADIUS).astype(np.int64)
            rec = pred + q * step
            if bad.any():
                rec = np.where(bad, vals, rec)
                outliers.append(vals[bad].ravel())
            sub[mids] = rec
            sym = q + _OFFSET
            sym[bad] = _OUTLIER
            codes.append(sym.ravel())

        symbols = np.concatenate(codes) if codes else np.zeros(0, dtype=np.int64)
        writer = BitWriter()
        writer.write_uint_array(anchors.ravel().view(np.uint64), 64)
        out_vals = np.concatenate(outliers) if outliers else np.zeros(0, dtype=np.float64)
        writer.write_uint_array(out_vals.view(np.uint64), 64)
        if symbols.size:
            lz = self._encode_codes(symbols, writer)
        else:
            lz = b""
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        return payload, {
            "mode": "interp",
            "entropy": self.entropy,
            "levels": levels,
            "n_codes": int(symbols.size),
            "n_outliers": int(out_vals.size),
            "n_anchors": int(anchors.size),
        }

    def _decompress_interp(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        levels = int(metadata["levels"])
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])
        n_anchors = int(metadata["n_anchors"])

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        anchors = reader.read_uint_array(n_anchors, 64).view(np.float64)
        out_vals = reader.read_uint_array(n_out, 64).view(np.float64)
        symbols = (
            self._decode_codes(reader, lz, n_codes) if n_codes else np.zeros(0, dtype=np.int64)
        )

        recon = np.zeros(shape, dtype=np.float64)
        stride = 1 << levels
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        recon[anchor_slicer] = anchors.reshape(recon[anchor_slicer].shape)

        pos = 0
        out_pos = 0
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            mids, pred = _predict(sub, h, s)
            count = pred.size
            sym = symbols[pos : pos + count].reshape(pred.shape)
            pos += count
            bad = sym == _OUTLIER
            q = sym.astype(np.float64) - _OFFSET
            rec = pred + q * step
            n_bad = int(bad.sum())
            if n_bad:
                rec[bad] = out_vals[out_pos : out_pos + n_bad]
                out_pos += n_bad
            sub[mids] = rec
        return recon

    def _compress_lorenzo(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        qv = np.rint(data / step)
        bad = np.abs(qv) >= 2**52  # beyond exact float integer range
        if bad.any():
            raise ValueError("error bound too small relative to data magnitude")
        qv = qv.astype(np.int64)
        res = qv.copy()
        for axis in range(res.ndim):
            res = np.diff(res, axis=axis, prepend=0)
        clipped = np.clip(res, -_RADIUS, _RADIUS)
        outlier_mask = clipped != res
        sym = (clipped + _OFFSET).astype(np.int64).ravel()
        sym[outlier_mask.ravel()] = _OUTLIER
        out_res = res[outlier_mask].astype(np.int64)

        writer = BitWriter()
        # Outlier residuals stored as 64-bit two's complement.
        writer.write_uint_array(out_res.view(np.uint64), 64)
        lz = self._encode_codes(sym, writer)
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        return payload, {
            "mode": "lorenzo",
            "entropy": self.entropy,
            "n_codes": int(sym.size),
            "n_outliers": int(out_res.size),
        }

    def _decompress_lorenzo(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        out_res = reader.read_uint_array(n_out, 64).view(np.int64)
        symbols = self._decode_codes(reader, lz, n_codes)

        res = symbols.astype(np.int64) - _OFFSET
        bad = symbols == _OUTLIER
        res[bad] = out_res
        res = res.reshape(shape)
        for axis in range(res.ndim - 1, -1, -1):
            res = np.cumsum(res, axis=axis)
        return res.astype(np.float64) * step

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        if self.predictor == "interp":
            return self._compress_interp(data, error_bound)
        return self._compress_lorenzo(data, error_bound)

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        if metadata["mode"] == "interp":
            return self._decompress_interp(payload, metadata)
        return self._decompress_lorenzo(payload, metadata)


# -- SZx ----------------------------------------------------------------------

BLOCK = 128
_K_BITS = 6  # width field per non-constant block (widths 0..63)


class ReferenceSZXCompressor(LossyCompressor):
    """Frozen whole-array SZx pipeline (one quantize pass over all blocks,
    then one grouped bulk-packing pass)."""

    name = "szx"

    def __init__(self, block_size: int = BLOCK) -> None:
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        bs = self.block_size
        flat = data.ravel()
        n = flat.size
        nblocks = -(-n // bs)
        padded = np.empty(nblocks * bs, dtype=np.float64)
        padded[:n] = flat
        padded[n:] = flat[-1]  # edge padding stays inside block value range
        blocks = padded.reshape(nblocks, bs)

        bmin = blocks.min(axis=1)
        bmax = blocks.max(axis=1)
        const = (bmax - bmin) <= 2.0 * error_bound
        means = 0.5 * (bmin + bmax)
        nc = ~const
        if nc.any():
            step = quantization_step(error_bound)
            q = np.rint((blocks[nc] - bmin[nc, None]) / step).astype(np.uint64)
            qmax = q.max(axis=1)
            w = np.zeros(qmax.size, dtype=np.int64)
            nz = qmax > 0
            # bit_length of the per-block max quantization code
            w[nz] = np.floor(np.log2(qmax[nz].astype(np.float64))).astype(np.int64) + 1
            # guard against log2 rounding at exact powers of two
            too_small = (np.uint64(1) << w.astype(np.uint64)) <= qmax
            w[too_small] += 1

        writer = BitWriter()
        writer.write_bit_array(const)
        # Constant blocks: the midpoint as raw float64 bits.
        if const.any():
            writer.write_uint_array(means[const].view(np.uint64), 64)
        if nc.any():
            writer.write_uint_array(bmin[nc].view(np.uint64), 64)
            writer.write_uint_array(w.astype(np.uint64), _K_BITS)
            # Group payload by width for bulk packing.
            for width in np.unique(w):
                if width == 0:
                    continue
                sel = w == width
                writer.write_uint_array(q[sel].ravel(), int(width))
        payload = writer.getvalue()
        return payload, {"n": n, "nblocks": nblocks, "block_size": bs}

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        n = int(metadata["n"])
        nblocks = int(metadata["nblocks"])
        bs = int(metadata.get("block_size", self.block_size))
        eb = float(metadata["error_bound"])
        reader = BitReader(payload)

        const = reader.read_bit_array(nblocks)
        out = np.empty((nblocks, bs), dtype=np.float64)
        n_const = int(const.sum())
        if n_const:
            means = reader.read_uint_array(n_const, 64).view(np.float64)
            out[const] = means[:, None]
        n_nc = nblocks - n_const
        if n_nc:
            bmin = reader.read_uint_array(n_nc, 64).view(np.float64)
            w = reader.read_uint_array(n_nc, _K_BITS).astype(np.int64)
            q = np.zeros((n_nc, bs), dtype=np.float64)
            for width in np.unique(w):
                if width == 0:
                    continue
                sel = w == width
                vals = reader.read_uint_array(int(sel.sum()) * bs, int(width))
                q[sel] = vals.reshape(-1, bs).astype(np.float64)
            out[~const] = bmin[:, None] + q * quantization_step(eb)
        shape = tuple(metadata["shape"])
        return out.reshape(-1)[:n].reshape(shape)


# -- SPERR --------------------------------------------------------------------

_CORR_BITS = 8  # signed correction codes in [-127, 127]
_CORR_MAX = 127


class ReferenceSPERRCompressor(LossyCompressor):
    """Frozen SPERR pipeline (whole-array transform/quantize/encode passes;
    chunked mode recurses into the single-chunk pipeline per chunk)."""

    name = "sperr"

    def __init__(self, quant_factor: float = 0.5, chunk_edge: int | None = None) -> None:
        if not 0.0 < quant_factor <= 1.0:
            raise ValueError("quant_factor must be in (0, 1]")
        if chunk_edge is not None and chunk_edge < 8:
            raise ValueError("chunk_edge must be >= 8")
        self.quant_factor = float(quant_factor)
        self.chunk_edge = chunk_edge

    def _quantize(self, coefs: np.ndarray, qstep: float) -> tuple[np.ndarray, np.ndarray]:
        mag = np.floor(np.abs(coefs) / qstep).astype(np.int64)
        return mag, coefs < 0

    def _dequantize(self, mag: np.ndarray, neg: np.ndarray, qstep: float) -> np.ndarray:
        vals = np.where(mag > 0, (mag.astype(np.float64) + 0.5) * qstep, 0.0)
        return np.where(neg, -vals, vals)

    def _chunk_slices(self, shape: tuple[int, ...]):
        """Slicers of the independent chunks covering ``shape``."""
        edge = self.chunk_edge
        axes = []
        for s in shape:
            starts = list(range(0, s, edge))
            axes.append([slice(a, min(a + edge, s)) for a in starts])
        import itertools

        return [tuple(c) for c in itertools.product(*axes)]

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        if self.chunk_edge is not None and any(
            s > self.chunk_edge for s in data.shape
        ):
            return self._compress_chunked(data, error_bound)
        return self._compress_single(data, error_bound)

    def _compress_chunked(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        slicers = self._chunk_slices(data.shape)
        parts = []
        chunk_meta = []
        for sl in slicers:
            payload, meta = self._compress_single(
                np.ascontiguousarray(data[sl]), error_bound
            )
            parts.append(payload)
            chunk_meta.append(
                {
                    "levels": meta["levels"],
                    "p_top": meta["p_top"],
                    "qstep": meta["qstep"],
                    "nbytes": len(payload),
                }
            )
        return b"".join(parts), {
            "mode": "chunked",
            "chunk_edge": self.chunk_edge,
            "chunks": chunk_meta,
            # container-level keys expected downstream
            "levels": 0,
            "p_top": -1,
            "qstep": self.quant_factor * error_bound,
        }

    def _decompress_chunked(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        out = np.empty(shape, dtype=np.float64)
        slicers = self._chunk_slices(shape)
        chunk_meta = metadata["chunks"]
        if len(slicers) != len(chunk_meta):
            raise ValueError("corrupt chunked stream: chunk count mismatch")
        offset = 0
        for sl, meta in zip(slicers, chunk_meta):
            nbytes = int(meta["nbytes"])
            part = payload[offset : offset + nbytes]
            offset += nbytes
            chunk_shape = tuple(s.stop - s.start for s in sl)
            sub_meta = {
                "shape": chunk_shape,
                "error_bound": eb,
                "levels": meta["levels"],
                "p_top": meta["p_top"],
                "qstep": meta["qstep"],
            }
            out[sl] = self._decompress_single(part, sub_meta)
        return out

    def _compress_single(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        shape = data.shape
        levels = max_levels(shape)
        qstep = self.quant_factor * error_bound
        coefs = cdf97_forward(data, levels)
        mag, neg = self._quantize(coefs, qstep)

        speck_writer = BitWriter()
        p_top = SpeckCoder().encode(mag, neg, speck_writer)
        lz = lz77_compress(speck_writer.getvalue())

        # Outlier pass: reconstruct exactly as the decoder will and correct
        # every point still violating the bound.
        recon = cdf97_inverse(self._dequantize(mag, neg, qstep), levels)
        err = data - recon
        viol = np.abs(err) > error_bound
        idxs = np.flatnonzero(viol.ravel())
        corr = np.rint(err.ravel()[idxs] / error_bound).astype(np.int64)
        exact_mask = np.abs(corr) > _CORR_MAX
        exact_vals = data.ravel()[idxs[exact_mask]]

        head = BitWriter()
        nbits_idx = max(int(data.size - 1).bit_length(), 1)
        head.write_elias_gamma(int(idxs.size) + 1)
        head.write_uint_array(idxs.astype(np.uint64), nbits_idx)
        clipped = (corr + _CORR_MAX + 1).clip(0, 2 * _CORR_MAX + 1)
        head.write_uint_array(clipped.astype(np.uint64), _CORR_BITS)
        head.write_bit_array(exact_mask)
        head.write_uint_array(exact_vals.view(np.uint64), 64)
        head_bytes = head.getvalue()
        payload = len(head_bytes).to_bytes(8, "little") + head_bytes + lz
        return payload, {"levels": levels, "p_top": p_top, "qstep": qstep}

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        if metadata.get("mode") == "chunked":
            return self._decompress_chunked(payload, metadata)
        return self._decompress_single(payload, metadata)

    def _decompress_single(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        levels = int(metadata["levels"])
        p_top = int(metadata["p_top"])
        qstep = float(metadata["qstep"])
        size = int(np.prod(shape))

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]

        nbits_idx = max(int(size - 1).bit_length(), 1)
        n_out = reader.read_elias_gamma() - 1
        idxs = reader.read_uint_array(n_out, nbits_idx).astype(np.int64)
        corr = reader.read_uint_array(n_out, _CORR_BITS).astype(np.int64) - (_CORR_MAX + 1)
        exact_mask = reader.read_bit_array(n_out)
        exact_vals = reader.read_uint_array(int(exact_mask.sum()), 64).view(np.float64)

        mag, neg = SpeckCoder().decode(BitReader(lz77_decompress(lz)), shape, p_top)
        coefs = self._dequantize(mag.reshape(shape), neg.reshape(shape), qstep)
        recon = cdf97_inverse(coefs, levels)

        flat = recon.ravel()
        if n_out:
            flat[idxs] += corr * eb
            flat[idxs[exact_mask]] = exact_vals
        return flat.reshape(shape)
