"""SPERR: wavelet + SPECK + outlier correction + lossless pass.

Architecture per Li, Lindstrom & Clyne (IPDPS'23):

1. multilevel CDF 9/7 wavelet transform of the whole array;
2. coefficients quantized to integer magnitudes with step ``eb / 2`` and
   coded by the SPECK set-partitioning coder (:mod:`repro.compressors.speck`);
3. *outlier correction*: the encoder reconstructs what the decoder will see,
   finds points whose error still exceeds the bound (wavelet synthesis can
   amplify per-coefficient error), and stores exact corrections in a sparse
   (index, correction-code) list — this is what guarantees the pointwise
   bound;
4. the SPECK stream goes through the LZ77 lossless backend (zstd's role).

The pipeline is one fused tile loop: each independent chunk (the whole
array when ``chunk_edge`` is None or covers it) streams through
transform → quantize → SPECK → outlier-correct while its coefficients are
hot, its payload is appended, and the intermediates are dropped before the
next chunk starts — the working set is one chunk, not the whole field.
Per-stage wall time aggregates across tiles into single
``compressor.stage.*`` spans (:class:`repro.obs.StageClock`). Both modes
are byte-identical to the frozen whole-array oracle
(:class:`repro.compressors.reference.ReferenceSPERRCompressor`).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor
from repro.compressors.speck import SpeckCoder
from repro.encoding.bitstream import BitReader, BitWriter, pack_uint_array
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.obs import StageClock
from repro.transforms.wavelet import cdf97_forward, cdf97_inverse, max_levels

_CORR_BITS = 8  # signed correction codes in [-127, 127]
_CORR_MAX = 127


class SPERRCompressor(LossyCompressor):
    """Wavelet-based high-ratio compressor with guaranteed error bound."""

    name = "sperr"

    def __init__(self, quant_factor: float = 0.5, chunk_edge: int | None = None) -> None:
        # qstep = quant_factor * eb; smaller factor = fewer outliers but more
        # coded planes. 0.5 mirrors SPERR's default headroom.
        if not 0.0 < quant_factor <= 1.0:
            raise ValueError("quant_factor must be in (0, 1]")
        # Real SPERR splits large arrays into independent chunks of up to
        # 128 per dimension (Table 1's "large chunk" window); ``chunk_edge``
        # enables that mode. None compresses the whole array as one chunk.
        if chunk_edge is not None and chunk_edge < 8:
            raise ValueError("chunk_edge must be >= 8")
        self.quant_factor = float(quant_factor)
        self.chunk_edge = chunk_edge

    def _quantize(self, coefs: np.ndarray, qstep: float) -> tuple[np.ndarray, np.ndarray]:
        mag = np.floor(np.abs(coefs) / qstep).astype(np.int64)
        return mag, coefs < 0

    def _dequantize(self, mag: np.ndarray, neg: np.ndarray, qstep: float) -> np.ndarray:
        vals = np.where(mag > 0, (mag.astype(np.float64) + 0.5) * qstep, 0.0)
        return np.where(neg, -vals, vals)

    # -- chunked container --------------------------------------------------

    def _chunk_slices(self, shape: tuple[int, ...]):
        """Slicers of the independent chunks covering ``shape``."""
        edge = self.chunk_edge
        axes = []
        for s in shape:
            starts = list(range(0, s, edge))
            axes.append([slice(a, min(a + edge, s)) for a in starts])
        import itertools

        return [tuple(c) for c in itertools.product(*axes)]

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        clock = StageClock("compressor.stage", codec=self.name)
        if self.chunk_edge is None or all(s <= self.chunk_edge for s in data.shape):
            payload, meta = self._compress_tile(data, error_bound, clock)
            clock.emit(tiles=1)
            return payload, meta
        parts = []
        chunk_meta = []
        slicers = self._chunk_slices(data.shape)
        for sl in slicers:
            payload, meta = self._compress_tile(
                np.ascontiguousarray(data[sl]), error_bound, clock
            )
            parts.append(payload)
            chunk_meta.append(
                {
                    "levels": meta["levels"],
                    "p_top": meta["p_top"],
                    "qstep": meta["qstep"],
                    "nbytes": len(payload),
                }
            )
        clock.emit(tiles=len(slicers))
        return b"".join(parts), {
            "mode": "chunked",
            "chunk_edge": self.chunk_edge,
            "chunks": chunk_meta,
            # container-level keys expected downstream
            "levels": 0,
            "p_top": -1,
            "qstep": self.quant_factor * error_bound,
        }

    def _compress_tile(self, data: np.ndarray, error_bound: float,
                       clock: StageClock) -> tuple[bytes, dict]:
        shape = data.shape
        levels = max_levels(shape)
        qstep = self.quant_factor * error_bound
        with clock("predict"):
            coefs = cdf97_forward(data, levels)
        with clock("quantize"):
            mag, neg = self._quantize(coefs, qstep)

        with clock("encode"):
            speck_writer = BitWriter()
            p_top = SpeckCoder().encode(mag, neg, speck_writer)
            lz = lz77_compress(speck_writer.getvalue())

        # Outlier pass: reconstruct exactly as the decoder will and correct
        # every point still violating the bound.
        with clock("outlier"):
            recon = cdf97_inverse(self._dequantize(mag, neg, qstep), levels)
            err = data - recon
            viol = np.abs(err) > error_bound
            idxs = np.flatnonzero(viol.ravel())
            corr = np.rint(err.ravel()[idxs] / error_bound).astype(np.int64)
            exact_mask = np.abs(corr) > _CORR_MAX
            exact_vals = data.ravel()[idxs[exact_mask]]

        with clock("encode"):
            head = BitWriter()
            nbits_idx = max(int(data.size - 1).bit_length(), 1)
            head.write_elias_gamma(int(idxs.size) + 1)
            head.write_packed(pack_uint_array(idxs.astype(np.uint64), nbits_idx))
            clipped = (corr + _CORR_MAX + 1).clip(0, 2 * _CORR_MAX + 1)
            head.write_packed(pack_uint_array(clipped.astype(np.uint64), _CORR_BITS))
            head.write_bit_array(exact_mask)
            head.write_packed(pack_uint_array(exact_vals.view(np.uint64), 64))
            head_bytes = head.getvalue()
        payload = len(head_bytes).to_bytes(8, "little") + head_bytes + lz
        return payload, {"levels": levels, "p_top": p_top, "qstep": qstep}

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        clock = StageClock("compressor.stage", codec=self.name)
        if metadata.get("mode") == "chunked":
            shape = tuple(metadata["shape"])
            eb = float(metadata["error_bound"])
            out = np.empty(shape, dtype=np.float64)
            slicers = self._chunk_slices(shape)
            chunk_meta = metadata["chunks"]
            if len(slicers) != len(chunk_meta):
                raise ValueError("corrupt chunked stream: chunk count mismatch")
            offset = 0
            for sl, meta in zip(slicers, chunk_meta):
                nbytes = int(meta["nbytes"])
                part = payload[offset : offset + nbytes]
                offset += nbytes
                chunk_shape = tuple(s.stop - s.start for s in sl)
                sub_meta = {
                    "shape": chunk_shape,
                    "error_bound": eb,
                    "levels": meta["levels"],
                    "p_top": meta["p_top"],
                    "qstep": meta["qstep"],
                }
                out[sl] = self._decompress_tile(part, sub_meta, clock)
            clock.emit(tiles=len(slicers))
            return out
        out = self._decompress_tile(payload, metadata, clock)
        clock.emit(tiles=1)
        return out

    def _decompress_tile(self, payload: bytes, metadata: dict,
                         clock: StageClock) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        levels = int(metadata["levels"])
        p_top = int(metadata["p_top"])
        qstep = float(metadata["qstep"])
        size = int(np.prod(shape))

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]

        nbits_idx = max(int(size - 1).bit_length(), 1)
        n_out = reader.read_elias_gamma() - 1
        idxs = reader.read_uint_array(n_out, nbits_idx).astype(np.int64)
        corr = reader.read_uint_array(n_out, _CORR_BITS).astype(np.int64) - (_CORR_MAX + 1)
        exact_mask = reader.read_bit_array(n_out)
        exact_vals = reader.read_uint_array(int(exact_mask.sum()), 64).view(np.float64)

        with clock("decode"):
            mag, neg = SpeckCoder().decode(BitReader(lz77_decompress(lz)), shape, p_top)
        coefs = self._dequantize(mag.reshape(shape), neg.reshape(shape), qstep)
        with clock("predict"):
            recon = cdf97_inverse(coefs, levels)

        flat = recon.ravel()
        if n_out:
            flat[idxs] += corr * eb
            flat[idxs[exact_mask]] = exact_vals
        return flat.reshape(shape)
