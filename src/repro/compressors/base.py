"""Common interface for error-bounded lossy compressors."""

from __future__ import annotations

import abc
import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import count, enabled, observe, span
from repro.utils.validation import as_float_array, check_error_bound, require_finite


def payload_checksum(payload: bytes) -> str:
    """blake2b-64 hex digest of a compressed payload.

    Stamped into every stream's metadata at compress time and verified
    before decoding, so a truncated or bit-flipped payload raises a clean
    ``ValueError`` instead of hanging in (or crashing out of) a decoder,
    or silently reconstructing wrong data.
    """
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def quantization_step(error_bound: float) -> float:
    """Quantization step for an absolute error bound.

    Nominally ``2*eb`` (round-to-nearest then halves the step), shrunk by a
    1e-9 relative margin so the worst-case half-step rounding error stays
    *strictly* within the bound despite floating-point arithmetic. Encoder
    and decoder must both use this helper so reconstructions agree.
    """
    return 2.0 * error_bound * (1.0 - 1e-9)


@dataclass
class CompressionResult:
    """Outcome of one compression call.

    ``payload`` is the actual encoded byte stream — ``compressed_bytes`` is
    its length plus the small self-describing header, so ratios are honest
    end-to-end numbers, not coefficient counts.
    """

    compressor: str
    payload: bytes
    metadata: dict = field(repr=False)
    original_bytes: int = 0
    error_bound: float = 0.0
    elapsed: float = 0.0

    _HEADER_BYTES = 32  # shape/dtype/eb bookkeeping, charged to every stream

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload) + self._HEADER_BYTES

    @property
    def ratio(self) -> float:
        return self.original_bytes / self.compressed_bytes

    def __repr__(self) -> str:  # keep payload out of reprs
        return (
            f"CompressionResult({self.compressor}, eb={self.error_bound:g}, "
            f"{self.original_bytes}B -> {self.compressed_bytes}B, "
            f"ratio={self.ratio:.2f})"
        )


class LossyCompressor(abc.ABC):
    """Error-bounded lossy compressor.

    Guarantee: ``|decompress(compress(x, eb)) - x| <= eb`` pointwise, and the
    compression ratio is non-decreasing in ``eb`` (the monotonicity FXRZ and
    CAROL both rely on).
    """

    name: str = "abstract"

    def compress(self, data: np.ndarray, error_bound: float) -> CompressionResult:
        """Compress ``data`` under absolute pointwise ``error_bound``."""
        arr = as_float_array(data)
        require_finite(arr)
        eb = check_error_bound(error_bound)
        with span("compressor.compress", codec=self.name, error_bound=eb) as sp:
            start = time.perf_counter()
            payload, metadata = self._compress(arr.astype(np.float64, copy=False), eb)
            elapsed = time.perf_counter() - start
            sp.set(bytes_in=arr.nbytes, bytes_out=len(payload))
        if enabled():
            count("compressor.compress.calls")
            count("compressor.compress.bytes_in", arr.nbytes)
            count("compressor.compress.bytes_out", len(payload))
            observe("compressor.compress.seconds", elapsed)
        metadata = dict(metadata)
        metadata.setdefault("shape", arr.shape)
        metadata.setdefault("error_bound", eb)
        metadata.setdefault("dtype", str(arr.dtype))
        metadata.setdefault("payload_check", payload_checksum(payload))
        return CompressionResult(
            compressor=self.name,
            payload=payload,
            metadata=metadata,
            original_bytes=arr.nbytes,
            error_bound=eb,
            elapsed=elapsed,
        )

    def decompress(self, result: CompressionResult) -> np.ndarray:
        """Reconstruct the array from a :class:`CompressionResult`."""
        if result.compressor != self.name:
            raise ValueError(
                f"{self.name} cannot decode a {result.compressor!r} stream"
            )
        expected = result.metadata.get("payload_check")
        if expected is not None and payload_checksum(result.payload) != expected:
            raise ValueError(
                f"{self.name}: payload failed its integrity check "
                f"({len(result.payload)} bytes; stream truncated or corrupted)"
            )
        with span("compressor.decompress", codec=self.name,
                  bytes_in=result.compressed_bytes):
            out = self._decompress(result.payload, result.metadata)
        if enabled():
            count("compressor.decompress.calls")
            count("compressor.decompress.bytes_in", result.compressed_bytes)
        return out.astype(result.metadata.get("dtype", "float64"), copy=False)

    def compression_ratio(self, data: np.ndarray, error_bound: float) -> float:
        """Convenience: ratio only (the quantity f(e) in the paper)."""
        return self.compress(data, error_bound).ratio

    def roundtrip(
        self, data: np.ndarray, error_bound: float
    ) -> tuple[np.ndarray, CompressionResult]:
        res = self.compress(data, error_bound)
        return self.decompress(res), res

    @abc.abstractmethod
    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        """Return ``(payload_bytes, metadata)``; data is float64, finite."""

    @abc.abstractmethod
    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        """Invert :meth:`_compress`."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
