"""SZ3: prediction-based compressor (interpolation + Lorenzo modes).

Architecture per Liang et al. (IEEE TBD'23). The default ``interp``
predictor is SZ3's multilevel spline interpolation:

1. *anchors* — every ``2^L``-th point per axis is stored exactly;
2. levels ``s = 2^L .. 2`` — for each level and each axis in turn, the
   points midway between known points are predicted with the 4-point cubic
   spline of Eq. (7) (linear/copy fallback at boundaries), the residual is
   quantized with step ``2*error_bound``, and the *reconstructed* value is
   written back so later predictions see exactly what the decompressor will;
3. the quantization codes go through canonical Huffman and then the LZ77
   lossless backend (zstd's role in real SZ3); codes outside the 16-bit
   window become outliers stored exactly.

The ``lorenzo`` predictor is the cuSZ-style decoupled variant: values are
pre-quantized to the ``2*eb`` grid, then the integer Lorenzo transform
(per-axis first differences) is applied losslessly — fully vectorizable
while preserving the error bound.

The pipeline is *fused and tile-streamed*: symbols are produced in bounded
tiles (``tile_symbols`` codes at a time — slabs along axis 0 for Lorenzo,
row groups along each pass's mid axis for interpolation) and handed
straight to the entropy stage, which consumes them incrementally
(per-tile ``HuffmanCodec.encode_packed`` into one bit stream, or
``RangeEncoder.update``). The static entropy models need the full symbol
histogram first, so compression streams the tiles twice: a *scan* phase
accumulates per-tile ``np.bincount`` histograms (and collects outliers),
then an *emit* phase regenerates the same tiles deterministically and
encodes them — the whole-array symbol vector, its concatenation, and the
per-symbol code expansion never exist at once. Interpolation's emit phase
exploits the traversal invariant that every point is written exactly once:
predictions are re-derived from the *final* reconstruction (stencil points
are never rewritten after they are produced), so no second writeback pass
is needed. Decode mirrors the tiling via resumable entropy decoders
(:meth:`HuffmanCodec.stream_decoder` / ``RangeDecoder.decode``). Payloads
are bit-for-bit identical to the frozen whole-array oracle
(:class:`repro.compressors.reference.ReferenceSZ3Compressor`).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.encoding.bitstream import BitReader, BitWriter, pack_uint_array
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.obs import StageClock

_C0 = -1.0 / 16.0
_C1 = 9.0 / 16.0
_RADIUS = 32767  # quantization codes in [-RADIUS, RADIUS]
_OFFSET = 32768
_OUTLIER = 65536  # sentinel symbol -> value stored exactly
_ALPHABET = 65537
_SYMBOL_BITS = 17

#: Quantization codes per streamed tile (2 MiB of int64 symbols).
TILE_SYMBOLS = 1 << 18


def _anchor_level(shape: tuple[int, ...]) -> int:
    """Number of interpolation levels (anchor stride = 2^L)."""
    longest = max(shape)
    if longest < 3:
        return 1
    return int(min(6, np.floor(np.log2(longest - 1))))


def _interp_passes(shape: tuple[int, ...], levels: int):
    """Yield (axis, stride, half) pass descriptors in traversal order."""
    for level in range(levels, 0, -1):
        s = 1 << level
        h = s >> 1
        for axis in range(len(shape)):
            yield axis, s, h


def _pass_subgrid(recon: np.ndarray, axis: int, s: int, h: int) -> np.ndarray | None:
    """View of ``recon`` holding the lines this pass predicts along.

    Axes before ``axis`` were refined earlier in this level (stride ``h``);
    axes after are still at stride ``s``; ``axis`` itself stays full and is
    moved to the front. Returns None when the pass is empty.
    """
    slicer = tuple(
        slice(None) if a == axis else slice(0, None, h if a < axis else s)
        for a in range(recon.ndim)
    )
    sub = np.moveaxis(recon[slicer], axis, 0)
    if sub.shape[0] <= h:
        return None
    return sub


def _predict_at(sub: np.ndarray, mids: np.ndarray, h: int) -> np.ndarray:
    """Spline prediction for the given mid positions along axis 0.

    All stencil points lie on the coarse grid, hence are already
    reconstructed. Purely elementwise per mid row, so predicting any
    subset of ``mids`` yields the same floats as the whole-pass call —
    the property tiled pipelines rely on for byte identity.
    """
    n = sub.shape[0]
    if mids.size and int(mids[0]) - 3 * h >= 0 and int(mids[-1]) + 3 * h < n:
        # Interior fast path: the full 4-point stencil is in range for
        # every mid, so this is exactly the ``full`` branch below —
        # bit-identical floats without the boundary selects.
        return (
            _C0 * sub[mids - 3 * h]
            + _C1 * sub[mids - h]
            + _C1 * sub[mids + h]
            + _C0 * sub[mids + 3 * h]
        )
    lm1 = sub[mids - h]
    r1 = mids + h
    has_r1 = r1 < n
    rp1 = sub[np.minimum(r1, n - 1)]
    l3 = mids - 3 * h
    has_l3 = l3 >= 0
    lm3 = sub[np.maximum(l3, 0)]
    r3 = mids + 3 * h
    has_r3 = r3 < n
    rp3 = sub[np.minimum(r3, n - 1)]

    bshape = (mids.size,) + (1,) * (sub.ndim - 1)
    full = (has_l3 & has_r1 & has_r3).reshape(bshape)
    linear_ok = has_r1.reshape(bshape)
    cubic = _C0 * lm3 + _C1 * lm1 + _C1 * rp1 + _C0 * rp3
    linear = 0.5 * (lm1 + rp1)
    return np.where(full, cubic, np.where(linear_ok, linear, lm1))


def _predict(sub: np.ndarray, h: int, s: int) -> tuple[np.ndarray, np.ndarray]:
    """Spline prediction for mid positions ``h, h+s, ...`` along axis 0.

    Returns ``(mids, pred)`` where ``pred`` has the mid positions' shape.
    """
    mids = np.arange(h, sub.shape[0], s)
    return mids, _predict_at(sub, mids, h)


class SZ3Compressor(LossyCompressor):
    """Interpolation/Lorenzo prediction compressor with entropy backend."""

    name = "sz3"

    def __init__(
        self,
        predictor: str = "interp",
        entropy: str = "huffman",
        tile_symbols: int = TILE_SYMBOLS,
    ) -> None:
        if predictor not in ("interp", "lorenzo"):
            raise ValueError("predictor must be 'interp' or 'lorenzo'")
        if entropy not in ("huffman", "range"):
            raise ValueError("entropy must be 'huffman' or 'range'")
        if tile_symbols < 1:
            raise ValueError("tile_symbols must be >= 1")
        self.predictor = predictor
        self.entropy = entropy
        self.tile_symbols = int(tile_symbols)

    # -- pluggable entropy backend -------------------------------------------
    #
    # "huffman": canonical Huffman + LZ77 (real SZ3's Huffman + zstd);
    # "range":  static range coder (the arithmetic/ANS stage of SZ
    #           variants) — already near entropy, so no LZ pass after it.
    #
    # Both models are static, built from the phase-1 histogram; the emit
    # phase then feeds symbol tiles to the incremental encoder legs.

    def _encode_stream(self, freq: np.ndarray, tiles, writer: BitWriter,
                       clock: StageClock) -> bytes:
        """Entropy stage over a tile iterator; model goes to ``writer``."""
        if self.entropy == "range":
            from repro.encoding.range_coder import RangeEncoder

            with clock("encode"):
                present = np.flatnonzero(freq > 0)
                writer.write_elias_gamma(present.size + 1)
                writer.write_packed(pack_uint_array(present.astype(np.uint64), _SYMBOL_BITS))
                for c in freq[present]:
                    writer.write_elias_gamma(int(c))
                enc = RangeEncoder(freq)
            for sym in tiles:
                with clock("encode"):
                    enc.update(sym)
            with clock("encode"):
                return enc.finish()
        with clock("encode"):
            codec = HuffmanCodec.from_frequencies(freq)
            present = np.flatnonzero(codec.lengths > 0)
            writer.write_elias_gamma(present.size + 1)
            writer.write_packed(pack_uint_array(present.astype(np.uint64), _SYMBOL_BITS))
            writer.write_packed(pack_uint_array(codec.lengths[present].astype(np.uint64), 6))
            code_writer = BitWriter()
        for sym in tiles:
            with clock("encode"):
                # encode appends per-symbol bool runs; compact() byte-packs
                # them immediately so pending bits stay tile-bounded.
                codec.encode(sym, code_writer)
                code_writer.compact()
        with clock("encode"):
            return lz77_compress(code_writer.getvalue())

    def _decode_stream(self, reader: BitReader, payload: bytes, clock: StageClock):
        """Read the entropy model; return an incremental ``take(count)``."""
        with clock("decode"):
            if self.entropy == "range":
                from repro.encoding.range_coder import RangeDecoder

                n_present = reader.read_elias_gamma() - 1
                present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
                counts = np.array([reader.read_elias_gamma() for _ in range(n_present)],
                                  dtype=np.int64)
                freq = np.zeros(_ALPHABET, dtype=np.int64)
                freq[present] = counts
                return RangeDecoder(freq, payload).decode
            n_present = reader.read_elias_gamma() - 1
            present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
            plens = reader.read_uint_array(n_present, 6).astype(np.int64)
            lengths = np.zeros(_ALPHABET, dtype=np.int64)
            lengths[present] = plens
            codec = HuffmanCodec.from_lengths(lengths)
            return codec.stream_decoder(BitReader(lz77_decompress(payload))).take

    # -- interpolation mode ------------------------------------------------

    def _tile_rows(self, rest: int) -> int:
        """Mid rows (or slab planes) per tile for a given row size."""
        return max(1, self.tile_symbols // max(rest, 1))

    def _interp_scan(self, data: np.ndarray, recon: np.ndarray, step: float,
                     levels: int, clock: StageClock, outliers: list):
        """Phase 1: build ``recon`` tile by tile, yielding symbol tiles."""
        for axis, s, h in _interp_passes(data.shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            orig = np.moveaxis(
                data[tuple(
                    slice(None) if a == axis else slice(0, None, h if a < axis else s)
                    for a in range(data.ndim)
                )],
                axis,
                0,
            )
            mids_all = np.arange(h, sub.shape[0], s)
            rows = self._tile_rows(int(np.prod(sub.shape[1:], dtype=np.int64)))
            for m0 in range(0, mids_all.size, rows):
                mids = mids_all[m0 : m0 + rows]
                with clock("predict"):
                    pred = _predict_at(sub, mids, h)
                with clock("quantize"):
                    vals = orig[mids]
                    q = np.rint((vals - pred) / step)
                    bad = np.abs(q) > _RADIUS
                    q = np.clip(q, -_RADIUS, _RADIUS).astype(np.int64)
                    rec = pred + q * step
                    if bad.any():
                        rec = np.where(bad, vals, rec)
                        outliers.append(vals[bad].ravel())
                    sub[mids] = rec
                    sym = q + _OFFSET
                    sym[bad] = _OUTLIER
                yield sym.ravel()

    def _interp_emit(self, data: np.ndarray, recon: np.ndarray, step: float,
                     levels: int, clock: StageClock):
        """Phase 2: regenerate the same symbol tiles from the final recon.

        Every grid point is reconstructed exactly once across the
        traversal, and each pass's spline stencil reads only points
        reconstructed in *earlier* passes — so the finished ``recon``
        still holds each stencil's pass-time values, and re-predicting
        from it reproduces phase 1's symbols without a second writeback.
        """
        for axis, s, h in _interp_passes(data.shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            orig = np.moveaxis(
                data[tuple(
                    slice(None) if a == axis else slice(0, None, h if a < axis else s)
                    for a in range(data.ndim)
                )],
                axis,
                0,
            )
            mids_all = np.arange(h, sub.shape[0], s)
            rows = self._tile_rows(int(np.prod(sub.shape[1:], dtype=np.int64)))
            for m0 in range(0, mids_all.size, rows):
                mids = mids_all[m0 : m0 + rows]
                with clock("predict"):
                    pred = _predict_at(sub, mids, h)
                with clock("quantize"):
                    vals = orig[mids]
                    q = np.rint((vals - pred) / step)
                    bad = np.abs(q) > _RADIUS
                    sym = np.clip(q, -_RADIUS, _RADIUS).astype(np.int64) + _OFFSET
                    sym[bad] = _OUTLIER
                yield sym.ravel()

    def _compress_interp(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        shape = data.shape
        levels = _anchor_level(shape)
        stride = 1 << levels
        clock = StageClock("compressor.stage", codec=self.name, entropy=self.entropy)
        recon = np.zeros_like(data)
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        anchors = data[anchor_slicer].astype(np.float64)
        recon[anchor_slicer] = anchors

        freq = np.zeros(_ALPHABET, dtype=np.int64)
        outliers: list[np.ndarray] = []
        n_codes = 0
        n_tiles = 0
        for sym in self._interp_scan(data, recon, step, levels, clock, outliers):
            n_tiles += 1
            n_codes += sym.size
            with clock("encode"):
                freq += np.bincount(sym, minlength=_ALPHABET)

        writer = BitWriter()
        writer.write_packed(pack_uint_array(anchors.ravel().view(np.uint64), 64))
        out_vals = np.concatenate(outliers) if outliers else np.zeros(0, dtype=np.float64)
        writer.write_packed(pack_uint_array(out_vals.view(np.uint64), 64))
        if n_codes:
            lz = self._encode_stream(
                freq, self._interp_emit(data, recon, step, levels, clock), writer, clock
            )
        else:
            lz = b""
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        clock.emit(tiles=n_tiles, n_symbols=n_codes)
        return payload, {
            "mode": "interp",
            "entropy": self.entropy,
            "levels": levels,
            "n_codes": n_codes,
            "n_outliers": int(out_vals.size),
            "n_anchors": int(anchors.size),
        }

    def _decompress_interp(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        levels = int(metadata["levels"])
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])
        n_anchors = int(metadata["n_anchors"])
        clock = StageClock("compressor.stage", codec=self.name, entropy=self.entropy)

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        anchors = reader.read_uint_array(n_anchors, 64).view(np.float64)
        out_vals = reader.read_uint_array(n_out, 64).view(np.float64)
        take = self._decode_stream(reader, lz, clock) if n_codes else None

        recon = np.zeros(shape, dtype=np.float64)
        stride = 1 << levels
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        recon[anchor_slicer] = anchors.reshape(recon[anchor_slicer].shape)

        out_pos = 0
        n_tiles = 0
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            mids_all = np.arange(h, sub.shape[0], s)
            rows = self._tile_rows(int(np.prod(sub.shape[1:], dtype=np.int64)))
            for m0 in range(0, mids_all.size, rows):
                mids = mids_all[m0 : m0 + rows]
                n_tiles += 1
                with clock("predict"):
                    pred = _predict_at(sub, mids, h)
                with clock("decode"):
                    sym = take(pred.size).reshape(pred.shape)
                    bad = sym == _OUTLIER
                    q = sym.astype(np.float64) - _OFFSET
                    rec = pred + q * step
                    n_bad = int(bad.sum())
                    if n_bad:
                        rec[bad] = out_vals[out_pos : out_pos + n_bad]
                        out_pos += n_bad
                    sub[mids] = rec
        clock.emit(tiles=n_tiles)
        return recon

    # -- Lorenzo mode (cuSZ-style decoupled) --------------------------------

    def _lorenzo_stream(self, data: np.ndarray, step: float, clock: StageClock,
                        out_list: list | None = None):
        """Yield symbol tiles for axis-0 slabs of the Lorenzo transform.

        The per-axis integer difference operators commute, so each slab
        applies the trailing-axis diffs locally and the axis-0 diff
        against the previous slab's pre-diff boundary plane — identical
        int64 results (wraparound included) to a whole-array transform.
        """
        shape = data.shape
        rows = self._tile_rows(int(np.prod(shape[1:], dtype=np.int64)))
        carry = np.zeros((1,) + shape[1:], dtype=np.int64)
        for r0 in range(0, shape[0], rows):
            r1 = min(r0 + rows, shape[0])
            with clock("quantize"):
                qv = np.rint(data[r0:r1] / step)
                bad = np.abs(qv) >= 2**52  # beyond exact float integer range
                if bad.any():
                    raise ValueError("error bound too small relative to data magnitude")
                qv = qv.astype(np.int64)
            with clock("predict"):
                d = qv
                for axis in range(1, d.ndim):
                    d = np.diff(d, axis=axis, prepend=0)
                boundary = d[-1:].copy()
                res = np.diff(d, axis=0, prepend=carry)
                carry = boundary
                clipped = np.clip(res, -_RADIUS, _RADIUS)
                outlier_mask = clipped != res
                sym = (clipped + _OFFSET).astype(np.int64).ravel()
                sym[outlier_mask.ravel()] = _OUTLIER
                if out_list is not None and outlier_mask.any():
                    out_list.append(res[outlier_mask].astype(np.int64))
            yield sym

    def _compress_lorenzo(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        clock = StageClock("compressor.stage", codec=self.name, entropy=self.entropy)
        freq = np.zeros(_ALPHABET, dtype=np.int64)
        out_list: list[np.ndarray] = []
        n_codes = 0
        n_tiles = 0
        for sym in self._lorenzo_stream(data, step, clock, out_list):
            n_tiles += 1
            n_codes += sym.size
            with clock("encode"):
                freq += np.bincount(sym, minlength=_ALPHABET)

        writer = BitWriter()
        # Outlier residuals stored as 64-bit two's complement.
        out_res = np.concatenate(out_list) if out_list else np.zeros(0, dtype=np.int64)
        writer.write_packed(pack_uint_array(out_res.view(np.uint64), 64))
        lz = self._encode_stream(
            freq, self._lorenzo_stream(data, step, clock), writer, clock
        )
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        clock.emit(tiles=n_tiles, n_symbols=n_codes)
        return payload, {
            "mode": "lorenzo",
            "entropy": self.entropy,
            "n_codes": n_codes,
            "n_outliers": int(out_res.size),
        }

    def _decompress_lorenzo(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])
        clock = StageClock("compressor.stage", codec=self.name, entropy=self.entropy)

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        out_res = reader.read_uint_array(n_out, 64).view(np.int64)
        take = self._decode_stream(reader, lz, clock)

        out = np.empty(shape, dtype=np.float64)
        rows = self._tile_rows(int(np.prod(shape[1:], dtype=np.int64)))
        carry = np.zeros((1,) + shape[1:], dtype=np.int64)
        out_pos = 0
        n_tiles = 0
        for r0 in range(0, shape[0], rows):
            r1 = min(r0 + rows, shape[0])
            n_tiles += 1
            with clock("decode"):
                count = (r1 - r0) * int(np.prod(shape[1:], dtype=np.int64))
                symbols = take(count)
                res = symbols.astype(np.int64) - _OFFSET
                bad = symbols == _OUTLIER
                n_bad = int(bad.sum())
                if n_bad:
                    res[bad] = out_res[out_pos : out_pos + n_bad]
                    out_pos += n_bad
                res = res.reshape((r1 - r0,) + shape[1:])
                for axis in range(res.ndim - 1, 0, -1):
                    res = np.cumsum(res, axis=axis)
                res = np.cumsum(res, axis=0) + carry
                carry = res[-1:].copy()
                out[r0:r1] = res.astype(np.float64) * step
        clock.emit(tiles=n_tiles)
        return out

    # -- dispatch -----------------------------------------------------------

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        if self.predictor == "interp":
            return self._compress_interp(data, error_bound)
        return self._compress_lorenzo(data, error_bound)

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        if metadata["mode"] == "interp":
            return self._decompress_interp(payload, metadata)
        return self._decompress_lorenzo(payload, metadata)
