"""SZ3: prediction-based compressor (interpolation + Lorenzo modes).

Architecture per Liang et al. (IEEE TBD'23). The default ``interp``
predictor is SZ3's multilevel spline interpolation:

1. *anchors* — every ``2^L``-th point per axis is stored exactly;
2. levels ``s = 2^L .. 2`` — for each level and each axis in turn, the
   points midway between known points are predicted with the 4-point cubic
   spline of Eq. (7) (linear/copy fallback at boundaries), the residual is
   quantized with step ``2*error_bound``, and the *reconstructed* value is
   written back so later predictions see exactly what the decompressor will;
3. the quantization codes go through canonical Huffman and then the LZ77
   lossless backend (zstd's role in real SZ3); codes outside the 16-bit
   window become outliers stored exactly.

The ``lorenzo`` predictor is the cuSZ-style decoupled variant: values are
pre-quantized to the ``2*eb`` grid, then the integer Lorenzo transform
(per-axis first differences) is applied losslessly — fully vectorizable
while preserving the error bound.

Every pass is a strided-view operation over a whole subgrid, so compression
cost is a few numpy kernels per (level, axis) pair.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.obs import span

_C0 = -1.0 / 16.0
_C1 = 9.0 / 16.0
_RADIUS = 32767  # quantization codes in [-RADIUS, RADIUS]
_OFFSET = 32768
_OUTLIER = 65536  # sentinel symbol -> value stored exactly
_ALPHABET = 65537
_SYMBOL_BITS = 17


def _anchor_level(shape: tuple[int, ...]) -> int:
    """Number of interpolation levels (anchor stride = 2^L)."""
    longest = max(shape)
    if longest < 3:
        return 1
    return int(min(6, np.floor(np.log2(longest - 1))))


def _interp_passes(shape: tuple[int, ...], levels: int):
    """Yield (axis, stride, half) pass descriptors in traversal order."""
    for level in range(levels, 0, -1):
        s = 1 << level
        h = s >> 1
        for axis in range(len(shape)):
            yield axis, s, h


def _pass_subgrid(recon: np.ndarray, axis: int, s: int, h: int) -> np.ndarray | None:
    """View of ``recon`` holding the lines this pass predicts along.

    Axes before ``axis`` were refined earlier in this level (stride ``h``);
    axes after are still at stride ``s``; ``axis`` itself stays full and is
    moved to the front. Returns None when the pass is empty.
    """
    slicer = tuple(
        slice(None) if a == axis else slice(0, None, h if a < axis else s)
        for a in range(recon.ndim)
    )
    sub = np.moveaxis(recon[slicer], axis, 0)
    if sub.shape[0] <= h:
        return None
    return sub


def _predict(sub: np.ndarray, h: int, s: int) -> tuple[np.ndarray, np.ndarray]:
    """Spline prediction for mid positions ``h, h+s, ...`` along axis 0.

    Returns ``(mids, pred)`` where ``pred`` has the mid positions' shape.
    All stencil points lie on the coarse (stride ``s``) grid, hence are
    already reconstructed.
    """
    n = sub.shape[0]
    mids = np.arange(h, n, s)
    lm1 = sub[mids - h]
    r1 = mids + h
    has_r1 = r1 < n
    rp1 = sub[np.minimum(r1, n - 1)]
    l3 = mids - 3 * h
    has_l3 = l3 >= 0
    lm3 = sub[np.maximum(l3, 0)]
    r3 = mids + 3 * h
    has_r3 = r3 < n
    rp3 = sub[np.minimum(r3, n - 1)]

    bshape = (mids.size,) + (1,) * (sub.ndim - 1)
    full = (has_l3 & has_r1 & has_r3).reshape(bshape)
    linear_ok = has_r1.reshape(bshape)
    cubic = _C0 * lm3 + _C1 * lm1 + _C1 * rp1 + _C0 * rp3
    linear = 0.5 * (lm1 + rp1)
    pred = np.where(full, cubic, np.where(linear_ok, linear, lm1))
    return mids, pred


class SZ3Compressor(LossyCompressor):
    """Interpolation/Lorenzo prediction compressor with entropy backend."""

    name = "sz3"

    def __init__(self, predictor: str = "interp", entropy: str = "huffman") -> None:
        if predictor not in ("interp", "lorenzo"):
            raise ValueError("predictor must be 'interp' or 'lorenzo'")
        if entropy not in ("huffman", "range"):
            raise ValueError("entropy must be 'huffman' or 'range'")
        self.predictor = predictor
        self.entropy = entropy

    # -- pluggable entropy backend -------------------------------------------
    #
    # "huffman": canonical Huffman + LZ77 (real SZ3's Huffman + zstd);
    # "range":  static range coder (the arithmetic/ANS stage of SZ
    #           variants) — already near entropy, so no LZ pass after it.

    def _encode_codes(self, symbols: np.ndarray, writer: BitWriter) -> bytes:
        """Entropy stage; model/codebook goes to ``writer``, returns bytes."""
        with span(
            "compressor.stage.encode", codec=self.name, entropy=self.entropy
        ) as sp:
            if self.entropy == "range":
                from repro.encoding.range_coder import range_encode

                payload, freq = range_encode(symbols, alphabet_size=_ALPHABET)
                present = np.flatnonzero(freq > 0)
                writer.write_elias_gamma(present.size + 1)
                writer.write_uint_array(present.astype(np.uint64), _SYMBOL_BITS)
                for c in freq[present]:
                    writer.write_elias_gamma(int(c))
                sp.set(n_symbols=int(symbols.size), bytes_out=len(payload))
                return payload
            codec = HuffmanCodec.fit(symbols, alphabet_size=_ALPHABET)
            present = np.flatnonzero(codec.lengths > 0)
            writer.write_elias_gamma(present.size + 1)
            writer.write_uint_array(present.astype(np.uint64), _SYMBOL_BITS)
            writer.write_uint_array(codec.lengths[present].astype(np.uint64), 6)
            code_writer = BitWriter()
            codec.encode(symbols, code_writer)
            payload = lz77_compress(code_writer.getvalue())
            sp.set(n_symbols=int(symbols.size), bytes_out=len(payload))
            return payload

    def _decode_codes(self, reader: BitReader, payload: bytes, count: int) -> np.ndarray:
        with span("compressor.stage.decode", codec=self.name, entropy=self.entropy):
            if self.entropy == "range":
                from repro.encoding.range_coder import range_decode

                n_present = reader.read_elias_gamma() - 1
                present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
                counts = np.array([reader.read_elias_gamma() for _ in range(n_present)],
                                  dtype=np.int64)
                freq = np.zeros(_ALPHABET, dtype=np.int64)
                freq[present] = counts
                return range_decode(payload, freq, count)
            n_present = reader.read_elias_gamma() - 1
            present = reader.read_uint_array(n_present, _SYMBOL_BITS).astype(np.int64)
            plens = reader.read_uint_array(n_present, 6).astype(np.int64)
            lengths = np.zeros(_ALPHABET, dtype=np.int64)
            lengths[present] = plens
            codec = HuffmanCodec.from_lengths(lengths)
            return codec.decode(BitReader(lz77_decompress(payload)), count)

    # -- interpolation mode ------------------------------------------------

    def _compress_interp(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        shape = data.shape
        levels = _anchor_level(shape)
        stride = 1 << levels
        recon = np.zeros_like(data)
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        anchors = data[anchor_slicer].astype(np.float64)
        recon[anchor_slicer] = anchors

        codes: list[np.ndarray] = []
        outliers: list[np.ndarray] = []
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            orig = np.moveaxis(
                data[tuple(
                    slice(None) if a == axis else slice(0, None, h if a < axis else s)
                    for a in range(data.ndim)
                )],
                axis,
                0,
            )
            with span("compressor.stage.predict", codec=self.name, axis=axis, stride=s):
                mids, pred = _predict(sub, h, s)
            with span("compressor.stage.quantize", codec=self.name, axis=axis, stride=s):
                vals = orig[mids]
                q = np.rint((vals - pred) / step)
                bad = np.abs(q) > _RADIUS
                q = np.clip(q, -_RADIUS, _RADIUS).astype(np.int64)
                rec = pred + q * step
                if bad.any():
                    rec = np.where(bad, vals, rec)
                    outliers.append(vals[bad].ravel())
                sub[mids] = rec
                sym = q + _OFFSET
                sym[bad] = _OUTLIER
                codes.append(sym.ravel())

        symbols = np.concatenate(codes) if codes else np.zeros(0, dtype=np.int64)
        writer = BitWriter()
        writer.write_uint_array(anchors.ravel().view(np.uint64), 64)
        out_vals = np.concatenate(outliers) if outliers else np.zeros(0, dtype=np.float64)
        writer.write_uint_array(out_vals.view(np.uint64), 64)
        if symbols.size:
            lz = self._encode_codes(symbols, writer)
        else:
            lz = b""
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        return payload, {
            "mode": "interp",
            "entropy": self.entropy,
            "levels": levels,
            "n_codes": int(symbols.size),
            "n_outliers": int(out_vals.size),
            "n_anchors": int(anchors.size),
        }

    def _decompress_interp(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        levels = int(metadata["levels"])
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])
        n_anchors = int(metadata["n_anchors"])

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        anchors = reader.read_uint_array(n_anchors, 64).view(np.float64)
        out_vals = reader.read_uint_array(n_out, 64).view(np.float64)
        symbols = (
            self._decode_codes(reader, lz, n_codes) if n_codes else np.zeros(0, dtype=np.int64)
        )

        recon = np.zeros(shape, dtype=np.float64)
        stride = 1 << levels
        anchor_slicer = tuple(slice(0, None, stride) for _ in shape)
        recon[anchor_slicer] = anchors.reshape(recon[anchor_slicer].shape)

        pos = 0
        out_pos = 0
        for axis, s, h in _interp_passes(shape, levels):
            sub = _pass_subgrid(recon, axis, s, h)
            if sub is None:
                continue
            with span("compressor.stage.predict", codec=self.name, axis=axis, stride=s):
                mids, pred = _predict(sub, h, s)
            count = pred.size
            sym = symbols[pos : pos + count].reshape(pred.shape)
            pos += count
            bad = sym == _OUTLIER
            q = sym.astype(np.float64) - _OFFSET
            rec = pred + q * step
            n_bad = int(bad.sum())
            if n_bad:
                rec[bad] = out_vals[out_pos : out_pos + n_bad]
                out_pos += n_bad
            sub[mids] = rec
        return recon

    # -- Lorenzo mode (cuSZ-style decoupled) --------------------------------

    def _compress_lorenzo(self, data: np.ndarray, eb: float) -> tuple[bytes, dict]:
        step = quantization_step(eb)
        with span("compressor.stage.quantize", codec=self.name, mode="lorenzo"):
            qv = np.rint(data / step)
            bad = np.abs(qv) >= 2**52  # beyond exact float integer range
            if bad.any():
                raise ValueError("error bound too small relative to data magnitude")
            qv = qv.astype(np.int64)
        with span("compressor.stage.predict", codec=self.name, mode="lorenzo"):
            res = qv.copy()
            for axis in range(res.ndim):
                res = np.diff(res, axis=axis, prepend=0)
            clipped = np.clip(res, -_RADIUS, _RADIUS)
            outlier_mask = clipped != res
            sym = (clipped + _OFFSET).astype(np.int64).ravel()
            sym[outlier_mask.ravel()] = _OUTLIER
            out_res = res[outlier_mask].astype(np.int64)

        writer = BitWriter()
        # Outlier residuals stored as 64-bit two's complement.
        writer.write_uint_array(out_res.view(np.uint64), 64)
        lz = self._encode_codes(sym, writer)
        head = writer.getvalue()
        payload = len(head).to_bytes(8, "little") + head + lz
        return payload, {
            "mode": "lorenzo",
            "entropy": self.entropy,
            "n_codes": int(sym.size),
            "n_outliers": int(out_res.size),
        }

    def _decompress_lorenzo(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        n_codes = int(metadata["n_codes"])
        n_out = int(metadata["n_outliers"])

        head_len = int.from_bytes(payload[:8], "little")
        reader = BitReader(payload[8 : 8 + head_len])
        lz = payload[8 + head_len :]
        out_res = reader.read_uint_array(n_out, 64).view(np.int64)
        symbols = self._decode_codes(reader, lz, n_codes)

        res = symbols.astype(np.int64) - _OFFSET
        bad = symbols == _OUTLIER
        res[bad] = out_res
        res = res.reshape(shape)
        for axis in range(res.ndim - 1, -1, -1):
            res = np.cumsum(res, axis=axis)
        return res.astype(np.float64) * step

    # -- dispatch -----------------------------------------------------------

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        if self.predictor == "interp":
            return self._compress_interp(data, error_bound)
        return self._compress_lorenzo(data, error_bound)

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        if metadata["mode"] == "interp":
            return self._decompress_interp(payload, metadata)
        return self._decompress_lorenzo(payload, metadata)
