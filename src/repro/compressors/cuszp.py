"""cuSZp-style compressor: pre-quantization + block delta + fixed-length packing.

cuSZp (Huang et al., SC'23) is the paper's reference for ultra-fast
delta-based GPU compression (Sections 1-2). Its pipeline, reproduced here:

1. *pre-quantization* — every value maps to an integer code on the
   ``2*error_bound`` grid (the whole error budget is spent in this one
   step, so the bound holds by construction);
2. *block-wise delta* — codes are cut into blocks of 32 and
   delta-encoded against the previous code within the block (first code
   kept absolute), shrinking magnitudes on smooth data;
3. *fixed-length encoding* — each block stores its deltas in
   sign-magnitude with the block's minimal uniform bit width; all-zero
   blocks collapse to a single flag bit.

Not part of the paper's evaluated four — included as the extensibility
exercise the paper highlights: a new compressor only needs execution data
(and optionally the generic sampled-full surrogate) to become
ratio-controllable. See ``examples/extend_new_compressor.py``.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.encoding.bitstream import BitReader, BitWriter

BLOCK = 32
_W_BITS = 6


class CuSZpCompressor(LossyCompressor):
    """Pre-quantization delta compressor (cuSZp architecture)."""

    name = "cuszp"

    def __init__(self, block_size: int = BLOCK) -> None:
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        bs = self.block_size
        step = quantization_step(error_bound)
        q = np.rint(data.ravel() / step)
        if (np.abs(q) >= 2**52).any():
            raise ValueError("error bound too small relative to data magnitude")
        q = q.astype(np.int64)
        n = q.size
        nblocks = -(-n // bs)
        padded = np.zeros(nblocks * bs, dtype=np.int64)
        padded[:n] = q
        padded[n:] = q[-1] if n else 0
        blocks = padded.reshape(nblocks, bs)

        # Delta within each block; column 0 keeps the absolute code.
        deltas = blocks.copy()
        deltas[:, 1:] = blocks[:, 1:] - blocks[:, :-1]
        first = deltas[:, 0]
        rest = deltas[:, 1:]

        mags = np.abs(rest).astype(np.uint64)
        zero_block = (mags == 0).all(axis=1)
        widths = np.zeros(nblocks, dtype=np.int64)
        nz = ~zero_block
        if nz.any():
            maxmag = mags[nz].max(axis=1)
            w = np.zeros(maxmag.size, dtype=np.int64)
            pos = maxmag > 0
            w[pos] = np.floor(np.log2(maxmag[pos].astype(np.float64))).astype(np.int64) + 1
            too_small = (np.uint64(1) << w.astype(np.uint64)) <= maxmag
            w[too_small] += 1
            widths[nz] = w

        writer = BitWriter()
        writer.write_bit_array(zero_block)
        # First code of every block: 64-bit two's complement (absolute).
        writer.write_uint_array(first.view(np.uint64), 64)
        if nz.any():
            writer.write_uint_array(widths[nz].astype(np.uint64), _W_BITS)
            # Sign-magnitude payload, grouped by width for bulk packing.
            signs = (rest < 0).astype(np.uint64)
            for width in np.unique(widths[nz]):
                sel = widths == width
                sel &= nz
                if not sel.any():
                    continue
                writer.write_bit_array(signs[sel].astype(bool).ravel())
                if width > 0:
                    writer.write_uint_array(mags[sel].ravel(), int(width))
        return writer.getvalue(), {"n": n, "nblocks": nblocks, "block_size": bs}

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        n = int(metadata["n"])
        nblocks = int(metadata["nblocks"])
        bs = int(metadata.get("block_size", self.block_size))
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        reader = BitReader(payload)

        zero_block = reader.read_bit_array(nblocks)
        first = reader.read_uint_array(nblocks, 64).view(np.int64)
        rest = np.zeros((nblocks, bs - 1), dtype=np.int64)
        nz = ~zero_block
        n_nz = int(nz.sum())
        if n_nz:
            widths = reader.read_uint_array(n_nz, _W_BITS).astype(np.int64)
            wfull = np.zeros(nblocks, dtype=np.int64)
            wfull[nz] = widths
            for width in np.unique(widths):
                sel = (wfull == width) & nz
                count = int(sel.sum())
                if count == 0:
                    continue
                signs = reader.read_bit_array(count * (bs - 1)).reshape(count, bs - 1)
                if width > 0:
                    mags = reader.read_uint_array(count * (bs - 1), int(width))
                    mags = mags.reshape(count, bs - 1).astype(np.int64)
                else:
                    mags = np.zeros((count, bs - 1), dtype=np.int64)
                rest[sel] = np.where(signs, -mags, mags)

        codes = np.concatenate((first[:, None], rest), axis=1)
        codes = np.cumsum(codes, axis=1)  # invert the in-block delta
        shape = tuple(metadata["shape"])
        return (codes.reshape(-1)[:n] * step).reshape(shape)
