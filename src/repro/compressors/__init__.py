"""Error-bounded lossy compressors (the paper's four reference codecs).

Each codec is a from-scratch NumPy implementation of the published
algorithm's architecture (see DESIGN.md for the fidelity argument):

- :class:`repro.compressors.szx.SZXCompressor` — block-wise delta/truncation
  (SZx, HPDC'22);
- :class:`repro.compressors.zfp.ZFPCompressor` — 4^d block transform +
  embedded bit-plane coding (ZFP, TVCG'14);
- :class:`repro.compressors.sz3.SZ3Compressor` — spline-interpolation /
  Lorenzo prediction + Huffman + LZ (SZ3, TBD'23);
- :class:`repro.compressors.sperr.SPERRCompressor` — CDF 9/7 wavelet +
  SPECK set partitioning + outlier correction + LZ (SPERR, IPDPS'23).

All satisfy the pointwise absolute error bound and are monotone:
compression ratio is non-decreasing in the error bound.
"""

from repro.compressors.base import CompressionResult, LossyCompressor
from repro.compressors.registry import available_compressors, get_compressor
from repro.compressors.sperr import SPERRCompressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZXCompressor
from repro.compressors.zfp import ZFPCompressor

__all__ = [
    "CompressionResult",
    "LossyCompressor",
    "SZXCompressor",
    "ZFPCompressor",
    "SZ3Compressor",
    "SPERRCompressor",
    "get_compressor",
    "available_compressors",
]
