"""ZFP: fixed-accuracy transform compressor on 4^d blocks.

Architecture per Lindstrom (TVCG'14): the array is padded to multiples of 4
and cut into 4^d blocks; each block is normalized by a common per-block
exponent, converted to fixed point, decorrelated with ZFP's transform, and
its coefficients (in total-degree order) are emitted by an embedded
bit-plane coder from the most significant plane down to the plane implied by
the error bound. This produces ZFP's signature *step-wise* compression
function: many error bounds map to the same number of retained planes.

The embedded coder here is a group-testing scheme: per plane, one "any new
significance" bit per block, a significance bitmap over still-insignificant
coefficients when set, sign bits for newly significant coefficients, and one
refinement bit per already-significant coefficient. Encoder and decoder both
process *all blocks per plane at once* with boolean matrices, so cost scales
with emitted bits, not with Python-level per-block loops.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import LossyCompressor
from repro.encoding.bitstream import BitReader, BitWriter
from repro.transforms.zfp_transform import (
    _INV,
    coefficient_order,
    zfp_block_forward,
    zfp_block_inverse,
)

_Q = 44  # fixed-point fraction bits
_EMAX_BITS = 13
_EMAX_BIAS = 2048
_ZERO_SENTINEL = 0  # emax field for all-zero blocks

# Inverse-transform amplification of coefficient truncation error, per dim.
_GAIN_1D = float(np.abs(_INV).sum(axis=1).max())


def _guard_bits(ndim: int) -> int:
    return int(math.ceil(ndim * math.log2(_GAIN_1D))) + 2


def _blockize(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad to multiples of 4 (edge mode) and return (nblocks, 4^d) blocks."""
    pad = [(0, (-s) % 4) for s in data.shape]
    padded = np.pad(data, pad, mode="edge")
    d = data.ndim
    grid = tuple(s // 4 for s in padded.shape)
    shape6 = []
    for g in grid:
        shape6.extend((g, 4))
    arr = padded.reshape(shape6)
    perm = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    arr = arr.transpose(perm).reshape(int(np.prod(grid)), 4**d)
    return arr.reshape((-1,) + (4,) * d), padded.shape


def _unblockize(
    blocks: np.ndarray, padded_shape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    d = len(shape)
    grid = tuple(s // 4 for s in padded_shape)
    arr = blocks.reshape(grid + (4,) * d)
    perm = []
    for i in range(d):
        perm.extend((i, d + i))
    arr = arr.transpose(perm).reshape(padded_shape)
    return arr[tuple(slice(0, s) for s in shape)]


def _plane_floor(error_bound: float, emax: np.ndarray, guard: int) -> np.ndarray:
    """Lowest encoded plane per block (identical on encode and decode)."""
    mant, exp = math.frexp(error_bound)
    fl = exp - 1  # floor(log2(eb)) for eb in [2^(e-1), 2^e)
    pmin = _Q - emax + fl - guard
    return np.clip(pmin, 0, 62).astype(np.int64)


class ZFPCompressor(LossyCompressor):
    """ZFP-style transform compressor.

    Default mode is *fixed accuracy* (error bounded). ZFP's GPU
    implementation instead offers *fixed rate* — a hard per-block bit
    budget, the paper's Section 2.2 example of naive ratio control — which
    :meth:`compress_fixed_rate` provides: same transform and embedded
    coder, but each block's stream truncates at ``bits_per_value * 4^d``
    bits, so the output size is exact and the pointwise error is whatever
    the budget allows (no guarantee).
    """

    name = "zfp"

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        d = data.ndim
        if d < 1 or d > 3:
            raise ValueError("ZFP supports 1-3 dimensional arrays")
        blocks, padded_shape = _blockize(data)
        nb = blocks.shape[0]
        C = 4**d
        flatb = blocks.reshape(nb, C)

        maxabs = np.abs(flatb).max(axis=1)
        emax = np.zeros(nb, dtype=np.int64)
        # Blocks of subnormal-tiny values are treated as zero blocks: their
        # normalization factor 2^-emax would overflow, and any practically
        # representable error bound already covers them.
        nz = maxabs > np.ldexp(1.0, -1000)
        if nz.any():
            _, exps = np.frexp(maxabs[nz])
            emax[nz] = exps
        # Normalize by the per-block exponent, transform, convert to fixed point.
        norm = np.ldexp(1.0, -emax).reshape((nb,) + (1,) * d)
        coefs = zfp_block_forward(blocks * norm)
        ints = np.rint(coefs.reshape(nb, C) * np.ldexp(1.0, _Q)).astype(np.int64)
        order = coefficient_order(d)
        ints = ints[:, order]
        absint = np.abs(ints)
        neg = ints < 0

        guard = _guard_bits(d)
        pmin = _plane_floor(error_bound, emax, guard)
        pmin[~nz] = 63  # zero blocks never participate
        # Highest set bit over all coefficients = first plane worth coding.
        global_max = int(absint.max()) if nb else 0
        p_top = global_max.bit_length() - 1  # -1 when all coefficients are 0

        writer = BitWriter()
        stored_emax = np.where(nz, emax + _EMAX_BIAS, _ZERO_SENTINEL)
        writer.write_uint_array(stored_emax.astype(np.uint64), _EMAX_BITS)

        sig = np.zeros((nb, C), dtype=bool)
        for p in range(p_top, -1, -1):
            active = pmin <= p
            if not active.any():
                break
            bits_p = ((absint >> p) & 1).astype(bool)
            newsig = bits_p & ~sig & active[:, None]
            anyb = newsig.any(axis=1)
            writer.write_bit_array(anyb[active])
            sel = active & anyb
            if sel.any():
                insig = ~sig[sel]
                writer.write_bit_array(newsig[sel][insig])
                writer.write_bit_array(neg[sel][newsig[sel]])
            ref = sig & active[:, None]
            if ref.any():
                writer.write_bit_array(bits_p[ref])
            sig |= newsig

        return writer.getvalue(), {
            "padded_shape": padded_shape,
            "p_top": p_top,
            "ndim": d,
        }

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        if metadata.get("mode") == "fixed_rate":
            return self._decompress_fixed_rate(payload, metadata)
        shape = tuple(metadata["shape"])
        padded_shape = tuple(metadata["padded_shape"])
        eb = float(metadata["error_bound"])
        p_top = int(metadata["p_top"])
        d = int(metadata["ndim"])
        C = 4**d
        nb = int(np.prod([s // 4 for s in padded_shape])) if padded_shape else 1

        reader = BitReader(payload)
        stored_emax = reader.read_uint_array(nb, _EMAX_BITS).astype(np.int64)
        nz = stored_emax != _ZERO_SENTINEL
        emax = np.where(nz, stored_emax - _EMAX_BIAS, 0)
        guard = _guard_bits(d)
        pmin = _plane_floor(eb, emax, guard)
        pmin[~nz] = 63

        sig = np.zeros((nb, C), dtype=bool)
        mag = np.zeros((nb, C), dtype=np.int64)
        neg = np.zeros((nb, C), dtype=bool)
        for p in range(p_top, -1, -1):
            active = pmin <= p
            if not active.any():
                break
            n_active = int(active.sum())
            anyb_active = reader.read_bit_array(n_active)
            anyb = np.zeros(nb, dtype=bool)
            anyb[active] = anyb_active
            sel = active & anyb
            newsig = np.zeros((nb, C), dtype=bool)
            if sel.any():
                insig = ~sig[sel]
                bitmap = reader.read_bit_array(int(insig.sum()))
                tmp = np.zeros((int(sel.sum()), C), dtype=bool)
                tmp[insig] = bitmap
                newsig[sel] = tmp
                nnew = int(tmp.sum())
                signs = reader.read_bit_array(nnew)
                neg[newsig] = signs
                mag[newsig] += np.int64(1) << p
            ref = sig & active[:, None]
            nref = int(ref.sum())
            if nref:
                refbits = reader.read_bit_array(nref)
                add = np.zeros(nref, dtype=np.int64)
                add[refbits] = np.int64(1) << p
                mag[ref] += add
            sig |= newsig

        ints = np.where(neg, -mag, mag)
        order = coefficient_order(d)
        inv_order = np.argsort(order)
        ints = ints[:, inv_order]
        coefs = ints.astype(np.float64) * np.ldexp(1.0, -_Q)
        blocks = zfp_block_inverse(coefs.reshape((nb,) + (4,) * d))
        blocks = blocks * np.ldexp(1.0, emax).reshape((nb,) + (1,) * d)
        return _unblockize(blocks, padded_shape, shape)

    # -- fixed-rate mode (paper Section 2.2's naive ratio control) ---------

    def compress_fixed_rate(self, data: np.ndarray, bits_per_value: float):
        """Compress with a hard per-block bit budget (no error bound).

        ``bits_per_value`` sets each 4^d block's budget to
        ``bits_per_value * 4^d`` bits; the embedded stream truncates there.
        Compressed size is thus known in advance — the trade-off is that
        reconstruction error is uncontrolled (the quality argument of the
        paper's Section 2.2).
        """
        import time as _time

        from repro.compressors.base import CompressionResult
        from repro.utils.validation import as_float_array, require_finite

        if bits_per_value <= 0:
            raise ValueError("bits_per_value must be > 0")
        arr = as_float_array(data)
        require_finite(arr)
        start = _time.perf_counter()
        payload, metadata = self._compress_fixed_rate(
            arr.astype(np.float64, copy=False), float(bits_per_value)
        )
        elapsed = _time.perf_counter() - start
        from repro.compressors.base import payload_checksum

        metadata.setdefault("shape", arr.shape)
        metadata.setdefault("error_bound", 0.0)  # no bound in this mode
        metadata.setdefault("dtype", str(arr.dtype))
        metadata.setdefault("payload_check", payload_checksum(payload))
        return CompressionResult(
            compressor=self.name,
            payload=payload,
            metadata=metadata,
            original_bytes=arr.nbytes,
            error_bound=0.0,
            elapsed=elapsed,
        )

    def _compress_fixed_rate(self, data: np.ndarray, rate: float) -> tuple[bytes, dict]:
        d = data.ndim
        if d < 1 or d > 3:
            raise ValueError("ZFP supports 1-3 dimensional arrays")
        blocks, padded_shape = _blockize(data)
        nb = blocks.shape[0]
        C = 4**d
        flatb = blocks.reshape(nb, C)

        maxabs = np.abs(flatb).max(axis=1)
        emax = np.zeros(nb, dtype=np.int64)
        nz = maxabs > np.ldexp(1.0, -1000)
        if nz.any():
            _, exps = np.frexp(maxabs[nz])
            emax[nz] = exps
        norm = np.ldexp(1.0, -emax).reshape((nb,) + (1,) * d)
        coefs = zfp_block_forward(blocks * norm)
        ints = np.rint(coefs.reshape(nb, C) * np.ldexp(1.0, _Q)).astype(np.int64)
        order = coefficient_order(d)
        ints = ints[:, order]
        absint = np.abs(ints)
        neg = ints < 0

        global_max = int(absint.max()) if nb else 0
        p_top = global_max.bit_length() - 1

        writer = BitWriter()
        stored_emax = np.where(nz, emax + _EMAX_BIAS, _ZERO_SENTINEL)
        writer.write_uint_array(stored_emax.astype(np.uint64), _EMAX_BITS)

        budget = np.full(nb, int(round(rate * C)), dtype=np.int64)
        budget[~nz] = 0  # zero blocks carry nothing
        sig = np.zeros((nb, C), dtype=bool)
        for p in range(p_top, -1, -1):
            active = budget >= 1
            if not active.any():
                break
            bits_p = ((absint >> p) & 1).astype(bool)
            newsig = bits_p & ~sig & active[:, None]
            n_insig = C - sig.sum(axis=1)
            n_new = newsig.sum(axis=1)
            # Only claim significance when the bitmap + signs still fit.
            afford = budget >= 1 + n_insig + n_new
            anyb = (n_new > 0) & afford
            writer.write_bit_array(anyb[active])
            budget[active] -= 1
            sel = active & anyb
            if sel.any():
                insig = ~sig[sel]
                writer.write_bit_array(newsig[sel][insig])
                writer.write_bit_array(neg[sel][newsig[sel]])
                budget[sel] -= n_insig[sel] + n_new[sel]
            else:
                newsig[:] = False
            newsig[~sel] = False
            # Refinement only for blocks whose remaining budget covers it.
            n_ref = sig.sum(axis=1)
            ref_ok = active & (n_ref > 0) & (budget >= n_ref)
            ref = sig & ref_ok[:, None]
            if ref.any():
                writer.write_bit_array(bits_p[ref])
                budget[ref_ok] -= n_ref[ref_ok]
            sig |= newsig

        return writer.getvalue(), {
            "padded_shape": padded_shape,
            "p_top": p_top,
            "ndim": d,
            "mode": "fixed_rate",
            "rate": rate,
        }

    def _decompress_fixed_rate(self, payload: bytes, metadata: dict) -> np.ndarray:
        shape = tuple(metadata["shape"])
        padded_shape = tuple(metadata["padded_shape"])
        p_top = int(metadata["p_top"])
        rate = float(metadata["rate"])
        d = int(metadata["ndim"])
        C = 4**d
        nb = int(np.prod([s // 4 for s in padded_shape])) if padded_shape else 1

        reader = BitReader(payload)
        stored_emax = reader.read_uint_array(nb, _EMAX_BITS).astype(np.int64)
        nz = stored_emax != _ZERO_SENTINEL
        emax = np.where(nz, stored_emax - _EMAX_BIAS, 0)

        budget = np.full(nb, int(round(rate * C)), dtype=np.int64)
        budget[~nz] = 0
        sig = np.zeros((nb, C), dtype=bool)
        mag = np.zeros((nb, C), dtype=np.int64)
        neg = np.zeros((nb, C), dtype=bool)
        for p in range(p_top, -1, -1):
            active = budget >= 1
            if not active.any():
                break
            anyb = np.zeros(nb, dtype=bool)
            anyb[active] = reader.read_bit_array(int(active.sum()))
            budget[active] -= 1
            sel = active & anyb
            newsig = np.zeros((nb, C), dtype=bool)
            if sel.any():
                insig = ~sig[sel]
                n_insig = C - sig.sum(axis=1)
                bitmap = reader.read_bit_array(int(insig.sum()))
                tmp = np.zeros((int(sel.sum()), C), dtype=bool)
                tmp[insig] = bitmap
                newsig[sel] = tmp
                n_new = newsig.sum(axis=1)
                signs = reader.read_bit_array(int(tmp.sum()))
                neg[newsig] = signs
                mag[newsig] += np.int64(1) << p
                budget[sel] -= n_insig[sel] + n_new[sel]
            n_ref = sig.sum(axis=1)
            ref_ok = active & (n_ref > 0) & (budget >= n_ref)
            ref = sig & ref_ok[:, None]
            nref = int(ref.sum())
            if nref:
                refbits = reader.read_bit_array(nref)
                add = np.zeros(nref, dtype=np.int64)
                add[refbits] = np.int64(1) << p
                mag[ref] += add
                budget[ref_ok] -= n_ref[ref_ok]
            sig |= newsig

        ints = np.where(neg, -mag, mag)
        order = coefficient_order(d)
        ints = ints[:, np.argsort(order)]
        coefs = ints.astype(np.float64) * np.ldexp(1.0, -_Q)
        blocks = zfp_block_inverse(coefs.reshape((nb,) + (4,) * d))
        blocks = blocks * np.ldexp(1.0, emax).reshape((nb,) + (1,) * d)
        return _unblockize(blocks, padded_shape, shape)
