"""SPECK-style set-partitioning embedded coder (SPERR's encoding stage).

Codes integer coefficient magnitudes bit-plane by bit-plane using
hierarchical significance testing on a max pyramid:

- the coefficient array is zero-padded to power-of-two extents;
- a pyramid of block maxima (2x per axis per level) answers "is any
  coefficient in this set >= 2^p" in O(1);
- per plane, the list of insignificant sets (LIS) is tested coarse-to-fine;
  significant sets split into their 2^d children, significant single
  coefficients emit a sign bit and join the list of significant points
  (LSP); previously significant points emit one refinement bit per plane.

Both encoder and decoder drive the identical traversal, so the stream needs
no structural metadata beyond the top plane. All per-level set operations
are vectorized over index arrays; Python-level iteration is only over
(plane, pyramid-level) pairs.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter


def padded_pow2_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(1 << max(int(np.ceil(np.log2(s))), 0) if s > 1 else 1 for s in shape)


def _pyramid_shapes(pshape: tuple[int, ...]) -> list[tuple[int, ...]]:
    """Shapes from level 0 (full grid) up to the single-root level."""
    shapes = [pshape]
    cur = pshape
    while any(s > 1 for s in cur):
        cur = tuple(max(s // 2, 1) for s in cur)
        shapes.append(cur)
    return shapes


def _build_pyramid(mag: np.ndarray) -> list[np.ndarray]:
    """Max pyramid; level k entry = max |coef| over its 2^d descendant block."""
    levels = [mag]
    cur = mag
    while any(s > 1 for s in cur.shape):
        slices = []
        for axis in range(cur.ndim):
            n = cur.shape[axis]
            if n > 1:
                moved = np.moveaxis(cur, axis, 0)
                cur = np.moveaxis(np.maximum(moved[0::2], moved[1::2]), 0, axis)
        levels.append(cur)
    return levels


def _children(
    indices: np.ndarray, shape_child: tuple[int, ...], shape_parent: tuple[int, ...]
) -> np.ndarray:
    """Flat child indices (level k-1) of flat parent indices (level k)."""
    coords = np.unravel_index(indices, shape_parent)
    child_coords = []
    for axis, c in enumerate(coords):
        if shape_child[axis] > shape_parent[axis]:
            child_coords.append(np.stack([2 * c, 2 * c + 1], axis=-1))
        else:
            child_coords.append(c[:, None])
    # Cartesian product across axes via broadcasting.
    d = len(shape_child)
    grids = np.meshgrid(*[np.arange(cc.shape[1]) for cc in child_coords], indexing="ij")
    out = []
    for axis in range(d):
        sel = child_coords[axis][:, grids[axis].ravel()]
        out.append(sel)
    flat = np.ravel_multi_index(tuple(out), shape_child)
    return flat.ravel()


class SpeckCoder:
    """Stateless encoder/decoder pair for SPECK bit-plane coding."""

    def encode(self, mag: np.ndarray, negative: np.ndarray, writer: BitWriter) -> int:
        """Encode integer magnitudes + signs; returns the top plane used."""
        pshape = padded_pow2_shape(mag.shape)
        padded = np.zeros(pshape, dtype=np.int64)
        padded[tuple(slice(0, s) for s in mag.shape)] = mag
        neg = np.zeros(pshape, dtype=bool)
        neg[tuple(slice(0, s) for s in mag.shape)] = negative

        pyramid = _build_pyramid(padded)
        shapes = [lvl.shape for lvl in pyramid]
        K = len(pyramid) - 1
        p_top = int(pyramid[K].max()).bit_length() - 1
        if p_top < 0:
            return -1

        flat_mag = padded.ravel()
        flat_neg = neg.ravel()
        flat_pyr = [lvl.ravel() for lvl in pyramid]

        lis: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(K + 1)]
        lis[K] = np.zeros(1, dtype=np.int64)
        lsp = np.zeros(0, dtype=np.int64)
        lsp_new = np.zeros(0, dtype=np.int64)

        for p in range(p_top, -1, -1):
            threshold = np.int64(1) << p
            lsp = np.concatenate((lsp, lsp_new))
            lsp_new = np.zeros(0, dtype=np.int64)
            for k in range(K, -1, -1):
                idxs = lis[k]
                if idxs.size == 0:
                    continue
                sig = flat_pyr[k][idxs] >= threshold
                writer.write_bit_array(sig)
                lis[k] = idxs[~sig]
                hot = idxs[sig]
                if hot.size == 0:
                    continue
                if k == 0:
                    writer.write_bit_array(flat_neg[hot])
                    lsp_new = np.concatenate((lsp_new, hot))
                else:
                    kids = _children(hot, shapes[k - 1], shapes[k])
                    lis[k - 1] = np.concatenate((lis[k - 1], kids))
            if lsp.size:
                writer.write_bit_array((flat_mag[lsp] >> p) & 1)
        return p_top

    def decode(
        self, reader: BitReader, shape: tuple[int, ...], p_top: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode magnitudes and signs for the unpadded ``shape``."""
        pshape = padded_pow2_shape(shape)
        shapes = _pyramid_shapes(pshape)
        K = len(shapes) - 1
        n = int(np.prod(pshape))
        mag = np.zeros(n, dtype=np.int64)
        neg = np.zeros(n, dtype=bool)
        if p_top < 0:
            out = mag.reshape(pshape)[tuple(slice(0, s) for s in shape)]
            outn = neg.reshape(pshape)[tuple(slice(0, s) for s in shape)]
            return out, outn

        lis: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(K + 1)]
        lis[K] = np.zeros(1, dtype=np.int64)
        lsp = np.zeros(0, dtype=np.int64)
        lsp_new = np.zeros(0, dtype=np.int64)

        for p in range(p_top, -1, -1):
            threshold = np.int64(1) << p
            lsp = np.concatenate((lsp, lsp_new))
            lsp_new = np.zeros(0, dtype=np.int64)
            for k in range(K, -1, -1):
                idxs = lis[k]
                if idxs.size == 0:
                    continue
                sig = reader.read_bit_array(idxs.size)
                lis[k] = idxs[~sig]
                hot = idxs[sig]
                if hot.size == 0:
                    continue
                if k == 0:
                    neg[hot] = reader.read_bit_array(hot.size)
                    mag[hot] = threshold
                    lsp_new = np.concatenate((lsp_new, hot))
                else:
                    kids = _children(hot, shapes[k - 1], shapes[k])
                    lis[k - 1] = np.concatenate((lis[k - 1], kids))
            if lsp.size:
                bits = reader.read_bit_array(lsp.size)
                mag[lsp[bits]] += threshold
        out = mag.reshape(pshape)[tuple(slice(0, s) for s in shape)]
        outn = neg.reshape(pshape)[tuple(slice(0, s) for s in shape)]
        return out, outn
