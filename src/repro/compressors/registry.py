"""Name-based registry for the reference compressors.

The frameworks, surrogates and benchmark harnesses all address compressors
by the paper's names ("szx", "zfp", "sz3", "sperr").
"""

from __future__ import annotations

from typing import Callable

from repro.compressors.base import LossyCompressor
from repro.compressors.cuszp import CuSZpCompressor
from repro.compressors.sperr import SPERRCompressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZXCompressor
from repro.compressors.zfp import ZFPCompressor

#: The four compressors the paper evaluates, in its order.
PAPER_COMPRESSORS = ("szx", "zfp", "sz3", "sperr")

_REGISTRY: dict[str, Callable[[], LossyCompressor]] = {
    "szx": SZXCompressor,
    "zfp": ZFPCompressor,
    "sz3": SZ3Compressor,
    "sperr": SPERRCompressor,
    "cuszp": CuSZpCompressor,  # paper-referenced extension (SC'23)
}


def available_compressors() -> list[str]:
    """Names of all registered compressors (paper four + extensions)."""
    return list(_REGISTRY)


def get_compressor(name: str, **kwargs) -> LossyCompressor:
    """Instantiate a compressor by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown compressor {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def register_compressor(name: str, factory: Callable[[], LossyCompressor]) -> None:
    """Extension hook: register a user-provided compressor.

    This is the extensibility property the paper credits FXRZ/CAROL with —
    supporting a new compressor only requires new execution data, not a new
    surrogate design.
    """
    _REGISTRY[name.lower()] = factory
