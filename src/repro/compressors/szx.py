"""SZx: ultra-fast block-wise delta/truncation compressor.

Faithful to the architecture of SZx (Yu et al., HPDC'22): the input is
flattened and cut into blocks of 128 values; each block is either

- a *constant block* — all values within ``error_bound`` of the block
  midpoint, stored as one float64; or
- a *non-constant block* — values quantized to the ``2*error_bound`` grid
  relative to the block minimum and bit-packed with the per-block minimal
  width, the fixed-point analogue of SZx's IEEE-754 insignificant-bit
  truncation + byte-level delta.

The pipeline is *fused and tile-streamed* (cuSZ+ style): blocks are
processed ``tile_blocks`` at a time, each tile going through
quantize → width-select → bit-pack in one pass while it is cache-hot,
with the packed bits appended to per-section :class:`BitWriter`\\ s
(constant flags, means, block minima, widths, one payload writer per bit
width). Stitching the sections afterwards reproduces — bit for bit — the
stream the frozen whole-array oracle
(:class:`repro.compressors.reference.ReferenceSZXCompressor`) writes, so
the working set stays at one tile plus the growing packed output instead
of whole-array quantization/symbol matrices. Decode mirrors this: the
per-width payload sections' bit offsets are computed from the width
table, and each tile gathers its blocks' values through per-width
section cursors (:meth:`BitReader.seek`), never materializing the full
``(nblocks, block)`` code matrix. The per-block width jumps with the
error bound, which is what makes SZx's compression function notoriously
eb-sensitive (paper Section 6.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.encoding.bitstream import BitReader, BitWriter, pack_uint_array
from repro.obs import StageClock

BLOCK = 128
_K_BITS = 6  # width field per non-constant block (widths 0..63)

#: Blocks per streamed tile (512 blocks of 128 float64 = 512 KiB).
TILE_BLOCKS = 512


class SZXCompressor(LossyCompressor):
    """Block-wise delta-based error-bounded compressor (SZx), fused."""

    name = "szx"

    def __init__(self, block_size: int = BLOCK, tile_blocks: int = TILE_BLOCKS) -> None:
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        if tile_blocks < 1:
            raise ValueError("tile_blocks must be >= 1")
        self.block_size = int(block_size)
        self.tile_blocks = int(tile_blocks)

    # -- encoding ---------------------------------------------------------

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        bs = self.block_size
        flat = data.ravel()
        n = flat.size
        nblocks = -(-n // bs)
        step = quantization_step(error_bound)
        clock = StageClock("compressor.stage", codec=self.name)

        # One writer per stream section; per-width payload writers are laid
        # out ascending at the end, exactly the grouped order the frozen
        # whole-array reference emits.
        const_w = BitWriter()
        means_w = BitWriter()
        bmin_w = BitWriter()
        width_w = BitWriter()
        group_w: dict[int, BitWriter] = {}

        n_tiles = 0
        for b0 in range(0, nblocks, self.tile_blocks):
            b1 = min(b0 + self.tile_blocks, nblocks)
            n_tiles += 1
            with clock("quantize"):
                lo, hi = b0 * bs, b1 * bs
                if hi <= n:
                    blocks = flat[lo:hi].reshape(b1 - b0, bs)
                else:
                    # Only the last tile pads; edge padding stays inside the
                    # final block's value range.
                    pad = np.empty(hi - lo, dtype=np.float64)
                    pad[: n - lo] = flat[lo:]
                    pad[n - lo :] = flat[-1]
                    blocks = pad.reshape(b1 - b0, bs)
                bmin = blocks.min(axis=1)
                bmax = blocks.max(axis=1)
                const = (bmax - bmin) <= 2.0 * error_bound
                means = 0.5 * (bmin + bmax)
                nc = ~const
                any_nc = bool(nc.any())
                if any_nc:
                    q = np.rint((blocks[nc] - bmin[nc, None]) / step).astype(np.uint64)
                    qmax = q.max(axis=1)
                    w = np.zeros(qmax.size, dtype=np.int64)
                    nz = qmax > 0
                    # bit_length of the per-block max quantization code
                    w[nz] = np.floor(np.log2(qmax[nz].astype(np.float64))).astype(np.int64) + 1
                    # guard against log2 rounding at exact powers of two
                    too_small = (np.uint64(1) << w.astype(np.uint64)) <= qmax
                    w[too_small] += 1
            with clock("encode"):
                const_w.write_bit_array(const)
                # Constant blocks: the midpoint as raw float64 bits.
                if const.any():
                    const_sel = means[const]
                    means_w.write_packed(pack_uint_array(const_sel.view(np.uint64), 64))
                if any_nc:
                    bmin_w.write_packed(pack_uint_array(bmin[nc].view(np.uint64), 64))
                    width_w.write_packed(pack_uint_array(w.astype(np.uint64), _K_BITS))
                    for width in np.unique(w):
                        if width == 0:
                            continue
                        width = int(width)
                        gw = group_w.get(width)
                        if gw is None:
                            gw = group_w[width] = BitWriter()
                        gw.write_packed(pack_uint_array(q[w == width].ravel(), width))

        with clock("encode"):
            writer = const_w
            writer.extend(means_w)
            writer.extend(bmin_w)
            writer.extend(width_w)
            for width in sorted(group_w):
                writer.extend(group_w[width])
            payload = writer.getvalue()
        clock.emit(tiles=n_tiles)
        return payload, {"n": n, "nblocks": nblocks, "block_size": bs}

    # -- decoding ---------------------------------------------------------

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        n = int(metadata["n"])
        nblocks = int(metadata["nblocks"])
        bs = int(metadata.get("block_size", self.block_size))
        eb = float(metadata["error_bound"])
        step = quantization_step(eb)
        reader = BitReader(payload)
        clock = StageClock("compressor.stage", codec=self.name)

        with clock("decode"):
            const = reader.read_bit_array(nblocks)
            n_const = int(const.sum())
            means = (
                reader.read_uint_array(n_const, 64).view(np.float64)
                if n_const
                else np.zeros(0, dtype=np.float64)
            )
            n_nc = nblocks - n_const
            if n_nc:
                bmin = reader.read_uint_array(n_nc, 64).view(np.float64)
                w = reader.read_uint_array(n_nc, _K_BITS).astype(np.int64)
            else:
                bmin = np.zeros(0, dtype=np.float64)
                w = np.zeros(0, dtype=np.int64)
            # Bit offset of each width group's payload section: groups are
            # laid out ascending, each holding all its blocks' codes.
            cursors: dict[int, int] = {}
            offset = reader.position
            for width in np.unique(w):
                if width == 0:
                    continue
                cursors[int(width)] = offset
                offset += int((w == width).sum()) * bs * int(width)

        out = np.empty(nblocks * bs, dtype=np.float64)
        mean_idx = 0
        nc_idx = 0
        n_tiles = 0
        for b0 in range(0, nblocks, self.tile_blocks):
            b1 = min(b0 + self.tile_blocks, nblocks)
            n_tiles += 1
            with clock("decode"):
                tconst = const[b0:b1]
                tile = np.empty((b1 - b0, bs), dtype=np.float64)
                k_const = int(tconst.sum())
                if k_const:
                    tile[tconst] = means[mean_idx : mean_idx + k_const, None]
                    mean_idx += k_const
                k_nc = (b1 - b0) - k_const
                if k_nc:
                    t_bmin = bmin[nc_idx : nc_idx + k_nc]
                    t_w = w[nc_idx : nc_idx + k_nc]
                    nc_idx += k_nc
                    q = np.zeros((k_nc, bs), dtype=np.float64)
                    for width in np.unique(t_w):
                        if width == 0:
                            continue
                        width = int(width)
                        sel = t_w == width
                        reader.seek(cursors[width])
                        vals = reader.read_uint_array(int(sel.sum()) * bs, width)
                        cursors[width] = reader.position
                        q[sel] = vals.reshape(-1, bs).astype(np.float64)
                    tile[~tconst] = t_bmin[:, None] + q * step
                out[b0 * bs : b1 * bs] = tile.ravel()
        clock.emit(tiles=n_tiles)
        shape = tuple(metadata["shape"])
        return out[:n].reshape(shape)
