"""SZx: ultra-fast block-wise delta/truncation compressor.

Faithful to the architecture of SZx (Yu et al., HPDC'22): the input is
flattened and cut into blocks of 128 values; each block is either

- a *constant block* — all values within ``error_bound`` of the block
  midpoint, stored as one float64; or
- a *non-constant block* — values quantized to the ``2*error_bound`` grid
  relative to the block minimum and bit-packed with the per-block minimal
  width, the fixed-point analogue of SZx's IEEE-754 insignificant-bit
  truncation + byte-level delta.

Everything is vectorized over blocks; non-constant payloads are written
grouped by bit width so both encode and decode use bulk bitstream calls.
The per-block width jumps with the error bound, which is what makes SZx's
compression function notoriously eb-sensitive (paper Section 6.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import LossyCompressor, quantization_step
from repro.encoding.bitstream import BitReader, BitWriter
from repro.obs import span

BLOCK = 128
_K_BITS = 6  # width field per non-constant block (widths 0..63)


class SZXCompressor(LossyCompressor):
    """Block-wise delta-based error-bounded compressor (SZx)."""

    name = "szx"

    def __init__(self, block_size: int = BLOCK) -> None:
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)

    # -- encoding ---------------------------------------------------------

    def _compress(self, data: np.ndarray, error_bound: float) -> tuple[bytes, dict]:
        bs = self.block_size
        flat = data.ravel()
        n = flat.size
        nblocks = -(-n // bs)
        padded = np.empty(nblocks * bs, dtype=np.float64)
        padded[:n] = flat
        padded[n:] = flat[-1]  # edge padding stays inside block value range
        blocks = padded.reshape(nblocks, bs)

        with span("compressor.stage.quantize", codec=self.name):
            bmin = blocks.min(axis=1)
            bmax = blocks.max(axis=1)
            const = (bmax - bmin) <= 2.0 * error_bound
            means = 0.5 * (bmin + bmax)
            nc = ~const
            widths = np.zeros(nblocks, dtype=np.int64)
            if nc.any():
                step = quantization_step(error_bound)
                q = np.rint((blocks[nc] - bmin[nc, None]) / step).astype(np.uint64)
                qmax = q.max(axis=1)
                w = np.zeros(qmax.size, dtype=np.int64)
                nz = qmax > 0
                # bit_length of the per-block max quantization code
                w[nz] = np.floor(np.log2(qmax[nz].astype(np.float64))).astype(np.int64) + 1
                # guard against log2 rounding at exact powers of two
                too_small = (np.uint64(1) << w.astype(np.uint64)) <= qmax
                w[too_small] += 1
                widths[nc] = w

        with span("compressor.stage.encode", codec=self.name):
            writer = BitWriter()
            writer.write_bit_array(const)
            # Constant blocks: the midpoint as raw float64 bits.
            if const.any():
                writer.write_uint_array(means[const].view(np.uint64), 64)
            if nc.any():
                writer.write_uint_array(bmin[nc].view(np.uint64), 64)
                writer.write_uint_array(w.astype(np.uint64), _K_BITS)
                # Group payload by width for bulk packing.
                for width in np.unique(w):
                    if width == 0:
                        continue
                    sel = w == width
                    writer.write_uint_array(q[sel].ravel(), int(width))
            payload = writer.getvalue()
        return payload, {"n": n, "nblocks": nblocks, "block_size": bs}

    # -- decoding ---------------------------------------------------------

    def _decompress(self, payload: bytes, metadata: dict) -> np.ndarray:
        n = int(metadata["n"])
        nblocks = int(metadata["nblocks"])
        bs = int(metadata.get("block_size", self.block_size))
        eb = float(metadata["error_bound"])
        reader = BitReader(payload)

        with span("compressor.stage.decode", codec=self.name):
            const = reader.read_bit_array(nblocks)
            out = np.empty((nblocks, bs), dtype=np.float64)
            n_const = int(const.sum())
            if n_const:
                means = reader.read_uint_array(n_const, 64).view(np.float64)
                out[const] = means[:, None]
            n_nc = nblocks - n_const
            if n_nc:
                bmin = reader.read_uint_array(n_nc, 64).view(np.float64)
                w = reader.read_uint_array(n_nc, _K_BITS).astype(np.int64)
                q = np.zeros((n_nc, bs), dtype=np.float64)
                for width in np.unique(w):
                    if width == 0:
                        continue
                    sel = w == width
                    vals = reader.read_uint_array(int(sel.sum()) * bs, int(width))
                    q[sel] = vals.reshape(-1, bs).astype(np.float64)
                out[~const] = bmin[:, None] + q * quantization_step(eb)
        shape = tuple(metadata["shape"])
        return out.reshape(-1)[:n].reshape(shape)
