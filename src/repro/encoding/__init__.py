"""Bit-level encoding substrate shared by all compressors.

Modules:

- :mod:`repro.encoding.bitstream` — MSB-first bit writer/reader with bulk
  (vectorized) paths used by the embedded coders.
- :mod:`repro.encoding.huffman` — canonical Huffman coding over integer
  symbol alphabets (SZ3's entropy stage).
- :mod:`repro.encoding.lz77` — greedy hash-chain LZ77 byte compressor, the
  stand-in for SZ3/SPERR's zstd lossless backend.
- :mod:`repro.encoding.rle` — zero run-length coding helpers.
"""

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCodec, huffman_encoded_bits, stream_entropy_bits
from repro.encoding.lz77 import lz77_compress, lz77_decompress
from repro.encoding.rle import (
    rle_bytes_decode,
    rle_bytes_encode,
    zero_rle_decode,
    zero_rle_encode,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCodec",
    "huffman_encoded_bits",
    "stream_entropy_bits",
    "lz77_compress",
    "lz77_decompress",
    "rle_bytes_encode",
    "rle_bytes_decode",
    "zero_rle_encode",
    "zero_rle_decode",
]
