"""Reference (pre-vectorization) encoding kernels, kept as oracles.

Each function here is a verbatim copy of the scalar implementation that
shipped before the vectorized kernels in :mod:`repro.encoding.lz77`,
:mod:`repro.encoding.huffman`, :mod:`repro.encoding.range_coder` and
:mod:`repro.encoding.rle` replaced it. They exist for two reasons:

- **byte-identity gates** — the vectorized encoders promise *identical
  output streams*; property tests and ``python -m repro codec-bench``
  diff every stream against these oracles and fail loudly on a single
  differing byte;
- **benchmark baselines** — ``BENCH_codec.json`` records the vectorized
  kernels' speedup over these implementations, so the perf trajectory is
  measured against a fixed, honest reference rather than a moving one.

Nothing on a hot path imports this module.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.lz77 import _match_length, _read_varint, _write_varint

_MIN_MATCH = 4
_WINDOW = 1 << 16


# -- LZ77 --------------------------------------------------------------------


def lz77_compress_reference(data: bytes) -> bytes:
    """Original greedy single-entry hash-table LZ77 compressor."""
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    n = raw.size
    out = bytearray()
    _write_varint(out, n)
    if n == 0:
        return bytes(out)

    if n >= _MIN_MATCH:
        keys = (
            raw[: n - 3].astype(np.uint32)
            | (raw[1 : n - 2].astype(np.uint32) << 8)
            | (raw[2 : n - 1].astype(np.uint32) << 16)
            | (raw[3:n].astype(np.uint32) << 24)
        )
    else:
        keys = np.zeros(0, dtype=np.uint32)

    table: dict[int, int] = {}
    pos = 0
    literal_start = 0
    data_bytes = bytes(data)
    while pos < n:
        match_len = 0
        match_dist = 0
        if pos + _MIN_MATCH <= n:
            key = int(keys[pos])
            cand = table.get(key)
            table[key] = pos
            if cand is not None and pos - cand <= _WINDOW:
                length = _match_length(raw, cand, pos, n - pos)
                if length >= _MIN_MATCH:
                    match_len = length
                    match_dist = pos - cand
        if match_len:
            _write_varint(out, pos - literal_start)
            _write_varint(out, match_len)
            _write_varint(out, match_dist)
            out.extend(data_bytes[literal_start:pos])
            end = min(pos + match_len, n - _MIN_MATCH + 1)
            for p in range(pos + 1, end, 8):
                table[int(keys[p])] = p
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    if literal_start < n or n == 0:
        _write_varint(out, n - literal_start)
        _write_varint(out, 0)
        _write_varint(out, 0)
        out.extend(data_bytes[literal_start:])
    return bytes(out)


# -- Huffman -----------------------------------------------------------------

_TABLE_BITS = 16
_MAX_CODE_LEN = 48


def huffman_encode_reference(codec, symbols: np.ndarray, writer: BitWriter) -> None:
    """Original bit-matrix Huffman encoder (mask-selected rows)."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size == 0:
        return
    if symbols.min() < 0 or symbols.max() >= codec.lengths.size:
        raise ValueError("symbol outside codebook alphabet")
    lens = codec.lengths[symbols]
    if (lens == 0).any():
        bad = symbols[lens == 0][0]
        raise ValueError(f"symbol {bad} not in codebook")
    vals = codec.codes[symbols]
    max_len = int(lens.max())
    shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
    aligned = vals << (max_len - lens).astype(np.uint64)
    bits = ((aligned[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool)
    mask = np.arange(max_len)[None, :] < lens[:, None]
    writer.write_bit_array(bits[mask])


def _slow_entries(codec) -> dict[int, dict[int, int]]:
    slow: dict[int, dict[int, int]] = {}
    for sym in np.flatnonzero(codec.lengths > _TABLE_BITS):
        length = int(codec.lengths[sym])
        slow.setdefault(length, {})[int(codec.codes[sym])] = int(sym)
    return slow


def huffman_decode_reference(codec, reader: BitReader, count: int) -> np.ndarray:
    """Original hybrid decoder: per-position window tables + scalar chase.

    One Python loop iteration per symbol, with the per-symbol dict fallback
    for codes longer than the 16-bit window.
    """
    lengths = codec.lengths
    present = np.flatnonzero(lengths > 0)
    if present.size == 0:
        if count:
            raise ValueError("cannot decode with an empty codebook")
        return np.zeros(0, dtype=np.int64)
    if count <= 64:
        return codec._decode_walk(reader, count)
    max_len = min(int(lengths[present].max()), _TABLE_BITS)

    sym_table, len_table = codec._tables(max_len)
    bits = reader._bits[reader._pos :]
    nbits = bits.size
    padded = np.concatenate((bits.astype(np.int64), np.zeros(max_len, dtype=np.int64)))
    vals = np.zeros(nbits + 1, dtype=np.int64)
    for j in range(max_len):
        vals += padded[j : j + nbits + 1] << (max_len - 1 - j)
    sym_at = sym_table[vals].tolist()
    adv_at = len_table[vals].tolist()
    slow = _slow_entries(codec)
    bit_list = bits.tolist() if slow else None

    out = [0] * count
    pos = 0
    try:
        for i in range(count):
            step = adv_at[pos]
            if step == 0:
                if not slow:
                    raise ValueError("invalid Huffman stream")
                code = vals[pos]
                length = max_len
                while True:
                    length += 1
                    if pos + length > nbits:
                        raise EOFError("bitstream exhausted during Huffman decode")
                    code = (int(code) << 1) | bit_list[pos + length - 1]
                    hit = slow.get(length)
                    if hit is not None and code in hit:
                        out[i] = hit[code]
                        pos += length
                        break
                    if length > _MAX_CODE_LEN:
                        raise ValueError("invalid Huffman stream")
            else:
                out[i] = sym_at[pos]
                pos += step
    except IndexError:
        raise EOFError("bitstream exhausted during Huffman decode") from None
    if pos > nbits:
        raise EOFError("bitstream exhausted during Huffman decode")
    reader._pos += pos
    return np.array(out, dtype=np.int64)


# -- range coder -------------------------------------------------------------

_TOP = 1 << 24
_BOT = 1 << 16
_MASK = (1 << 32) - 1


def range_encode_reference(encoder, symbols: np.ndarray) -> bytes:
    """Original per-symbol range encoder loop (numpy scalar indexing)."""
    freq = encoder.freq
    cum = encoder.cum
    total = encoder.total
    low, rng = encoder._low, encoder._range
    out = encoder._out
    for s in np.asarray(symbols, dtype=np.int64).ravel():
        f = int(freq[s])
        if f == 0:
            raise ValueError(f"symbol {s} has zero frequency")
        rng //= total
        low = (low + int(cum[s]) * rng) & _MASK
        rng *= f
        while (low ^ (low + rng)) < _TOP or (
            rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
        ):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK
            rng = (rng << 8) & _MASK
    for _ in range(4):
        out.append((low >> 24) & 0xFF)
        low = (low << 8) & _MASK
    return bytes(out)


def range_decode_reference(decoder, count: int) -> np.ndarray:
    """Original per-symbol range decoder (searchsorted per symbol)."""
    cum = decoder.cum
    total = decoder.total
    low, rng, code = decoder._low, decoder._range, decoder._code
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        rng //= total
        value = ((code - low) & _MASK) // rng
        if value >= total:
            raise ValueError("corrupt range-coded stream")
        s = int(np.searchsorted(cum, value, side="right")) - 1
        out[i] = s
        low = (low + int(cum[s]) * rng) & _MASK
        rng *= int(decoder.freq[s])
        while (low ^ (low + rng)) < _TOP or (
            rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
        ):
            code = ((code << 8) | decoder._next_byte()) & _MASK
            low = (low << 8) & _MASK
            rng = (rng << 8) & _MASK
    decoder._low, decoder._range, decoder._code = low, rng, code
    return out


# -- RLE byte stream ---------------------------------------------------------


def rle_bytes_encode_reference(symbols: np.ndarray, zero_symbol: int = 0) -> bytes:
    """Scalar varint serialization of a zero-RLE stream (one loop per int)."""
    from repro.encoding.rle import zero_rle_encode, zigzag_encode

    values, runs = zero_rle_encode(symbols, zero_symbol=zero_symbol)
    out = bytearray()
    _write_varint(out, values.size)
    for v in zigzag_encode(values):
        _write_varint(out, int(v))
    for r in runs:
        _write_varint(out, int(r))
    return bytes(out)


def rle_bytes_decode_reference(blob: bytes, zero_symbol: int = 0) -> np.ndarray:
    """Scalar inverse of :func:`rle_bytes_encode_reference`."""
    from repro.encoding.rle import zero_rle_decode, zigzag_decode

    n, pos = _read_varint(blob, 0)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    values = np.empty(n, dtype=np.uint64)
    for i in range(n):
        v, pos = _read_varint(blob, pos)
        values[i] = v
    runs = np.empty(n, dtype=np.int64)
    for i in range(n):
        r, pos = _read_varint(blob, pos)
        runs[i] = r
    return zero_rle_decode(zigzag_decode(values), runs, zero_symbol=zero_symbol)
