"""MSB-first bitstream writer/reader.

The embedded bit-plane coders (ZFP, SPERR) emit millions of individual bits;
a per-bit Python loop would dominate compression time. The writer therefore
buffers *numpy bool chunks* and only packs to bytes once, and both writer and
reader expose bulk array operations (``write_bit_array``,
``write_uint_array``, ``read_bit_array``) so hot paths stay vectorized.

The fused tile-streamed compressor pipelines add a second chunk kind: a
*packed* chunk is ``(uint8 array, bit count)`` — already byte-packed bits,
possibly ending mid-byte. Tiles produce packed chunks with
:func:`pack_uint_array` (an ``np.unpackbits`` byte-view pack, several times
faster than the bit-broadcast of :meth:`BitWriter.write_uint_array`) and
append them with :meth:`BitWriter.write_packed`; :meth:`BitWriter.compact`
folds everything written so far into one packed chunk, which is what bounds
a long-running writer's memory to roughly its *output* size (a bool chunk
costs 8x its packed form). :meth:`BitWriter.getvalue` shift-merges the
mixed chunk list in one vectorized pass per chunk, so per-tile appends
compose into exactly the stream a whole-array write would have produced.
"""

from __future__ import annotations

import numpy as np

_BOOL = np.bool_


class _Packed:
    """Byte-packed bit run: ``data`` holds ``nbits`` bits MSB-first, zero
    padding after the last bit (enforced by the constructor)."""

    __slots__ = ("data", "nbits")

    def __init__(self, data: np.ndarray, nbits: int) -> None:
        nbytes = (nbits + 7) // 8
        data = data[:nbytes]
        tail = nbits & 7
        if tail and nbytes:
            data = data.copy()
            data[-1] &= np.uint8((0xFF << (8 - tail)) & 0xFF)
        self.data = data
        self.nbits = nbits


def _container_dtype(nbits: int) -> tuple[str, int]:
    """Smallest big-endian uint dtype holding an ``nbits``-bit value."""
    if nbits <= 8:
        return ">u1", 8
    if nbits <= 16:
        return ">u2", 16
    if nbits <= 32:
        return ">u4", 32
    return ">u8", 64


def pack_uint_array(values: np.ndarray, nbits: int) -> _Packed:
    """Pack each value to a fixed ``nbits``-bit MSB-first field.

    The bit-for-bit equivalent of :meth:`BitWriter.write_uint_array`, built
    for the fused tile loops: values are viewed as big-endian bytes,
    ``np.unpackbits`` expands them, and the leading container padding is
    sliced off — byte traffic proportional to the container width instead
    of one bool (1 byte) per output *bit*.
    """
    values = np.asarray(values, dtype=np.uint64).ravel()
    if nbits <= 0 or values.size == 0:
        return _Packed(np.zeros(0, dtype=np.uint8), 0)
    if nbits > 64:
        raise ValueError("nbits must be <= 64")
    dtype, cbits = _container_dtype(nbits)
    bits = np.unpackbits(
        values.astype(dtype).view(np.uint8).reshape(values.size, cbits // 8), axis=1
    )
    field = bits[:, cbits - nbits :].ravel()
    return _Packed(np.packbits(field), values.size * nbits)


def window_values(bits: np.ndarray, width: int) -> np.ndarray:
    """``width``-bit MSB-first window value at every bit position.

    Returns an int64 array of length ``bits.size + 1``: entry ``p`` is the
    integer formed by bits ``p .. p+width-1``, with zeros past the end of
    the stream (the same zero padding a :class:`BitWriter` applies when
    packing to bytes). Computed without materializing a ``(n, width)``
    matrix: the bits are packed to bytes once, adjacent bytes are fused
    into 24-bit words, and every window is one gather plus one shift —
    the bulk extract primitive behind the table-driven Huffman decoder.
    """
    if not 0 < width <= 16:
        raise ValueError("window width must be in [1, 16]")
    arr = np.asarray(bits).astype(_BOOL, copy=False).ravel()
    nbits = arr.size
    packed = np.packbits(arr)
    # Bytes k, k+1, k+2 must exist for every k up to nbits // 8.
    buf = np.zeros(nbits // 8 + 3, dtype=np.uint32)
    buf[: packed.size] = packed
    fused = (buf[:-2] << np.uint32(16)) | (buf[1:-1] << np.uint32(8)) | buf[2:]
    p = np.arange(nbits + 1)
    down = (24 - width - (p & 7)).astype(np.uint32)
    return ((fused[p >> 3] >> down) & np.uint32((1 << width) - 1)).astype(np.int64)


class BitWriter:
    """Accumulates bits MSB-first and packs them into bytes on demand.

    Chunks are either numpy bool arrays (one element per bit, from the
    ``write_*`` methods) or :class:`_Packed` runs (already byte-packed,
    from :meth:`write_packed` / :meth:`compact`); :meth:`getvalue`
    shift-merges the mixed list into one stream.
    """

    def __init__(self) -> None:
        self._chunks: list = []
        self._nbits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    @property
    def byte_length(self) -> int:
        """Size in bytes of the packed stream (final byte zero-padded)."""
        return (self._nbits + 7) // 8

    def write_bit(self, bit: int) -> None:
        self._chunks.append(np.array([bool(bit)], dtype=_BOOL))
        self._nbits += 1

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the ``nbits`` least-significant bits of ``value``, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        if nbits == 0:
            return
        value = int(value)
        if value < 0:
            raise ValueError("write_bits takes non-negative values; encode sign separately")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = (np.uint64(value) >> shifts) & np.uint64(1)
        self._chunks.append(bits.astype(_BOOL))
        self._nbits += nbits

    def write_bit_array(self, bits: np.ndarray) -> None:
        """Append a 1-D array interpreted as bits (nonzero = 1)."""
        arr = np.asarray(bits).astype(_BOOL, copy=False).ravel()
        if arr.size:
            self._chunks.append(arr)
            self._nbits += arr.size

    def write_uint_array(self, values: np.ndarray, nbits: int) -> None:
        """Write each value with a fixed width of ``nbits`` bits, MSB first."""
        values = np.asarray(values, dtype=np.uint64).ravel()
        if nbits == 0 or values.size == 0:
            return
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = (values[:, None] >> shifts[None, :]) & np.uint64(1)
        self._chunks.append(bits.astype(_BOOL).ravel())
        self._nbits += values.size * nbits

    def write_varlen_uint_array(self, values: np.ndarray, lengths: np.ndarray) -> None:
        """Write ``values[i]`` with an individual width of ``lengths[i]`` bits.

        The bulk analogue of calling ``write_bits(values[i], lengths[i])`` in
        a loop, flattened into one numpy pass: each value and its end-bit
        position are broadcast across their output bits with ``np.repeat``,
        and output bit ``j`` of value ``i`` is the ``(end_i - 1 - j)``-th bit
        of the value — one shift, no per-bit index arithmetic — so
        variable-length streams (Huffman codes) append at array speed.
        Zero-length entries contribute nothing.
        """
        values = np.asarray(values, dtype=np.uint64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        if values.size != lengths.size:
            raise ValueError("values and lengths must have equal size")
        if (lengths < 0).any():
            raise ValueError("lengths must be non-negative")
        total = int(lengths.sum())
        if total == 0:
            return
        ends = np.cumsum(lengths)
        shifts = (np.repeat(ends, lengths) - 1 - np.arange(total)).astype(np.uint64)
        bits = (np.repeat(values, lengths) >> shifts) & np.uint64(1)
        self._chunks.append(bits.astype(_BOOL))
        self._nbits += total

    def write_unary(self, value: int) -> None:
        """``value`` zero bits followed by a terminating one bit."""
        value = int(value)
        if value < 0:
            raise ValueError("unary codes are defined for non-negative integers")
        bits = np.zeros(value + 1, dtype=_BOOL)
        bits[-1] = True
        self._chunks.append(bits)
        self._nbits += value + 1

    def write_elias_gamma(self, value: int) -> None:
        """Elias-gamma code for ``value >= 1`` (used for unbounded lengths)."""
        value = int(value)
        if value < 1:
            raise ValueError("Elias gamma is defined for integers >= 1")
        nbits = value.bit_length()
        self.write_unary(nbits - 1)
        if nbits > 1:
            self.write_bits(value - (1 << (nbits - 1)), nbits - 1)

    def write_packed(self, packed: _Packed) -> None:
        """Append a :class:`_Packed` run (see :func:`pack_uint_array`)."""
        if packed.nbits:
            self._chunks.append(packed)
            self._nbits += packed.nbits

    def extend(self, other: "BitWriter") -> None:
        """Append all bits from another writer (no byte alignment)."""
        self._chunks.extend(other._chunks)
        self._nbits += other._nbits

    def compact(self) -> None:
        """Fold everything written so far into one packed chunk.

        A bool chunk costs one byte per *bit*; compacting after each tile
        is what bounds a fused pipeline's writer memory to roughly the
        size of its eventual output stream.
        """
        if len(self._chunks) <= 1 and (
            not self._chunks or isinstance(self._chunks[0], _Packed)
        ):
            return
        self._chunks = [_Packed(self._merged(), self._nbits)]

    def _entries(self):
        """Yield the chunk list as ``(uint8 array, nbits)`` packed runs,
        packing each run of consecutive bool chunks in one pass."""
        run: list[np.ndarray] = []
        for chunk in self._chunks:
            if isinstance(chunk, _Packed):
                if run:
                    arr = run[0] if len(run) == 1 else np.concatenate(run)
                    run = []
                    yield np.packbits(arr), arr.size
                yield chunk.data, chunk.nbits
            else:
                run.append(chunk)
        if run:
            arr = run[0] if len(run) == 1 else np.concatenate(run)
            yield np.packbits(arr), arr.size

    def _merged(self) -> np.ndarray:
        """Shift-merge all chunks into one zero-padded uint8 array.

        Each packed run lands with two vectorized ORs: its bytes shifted
        down by the current bit offset, and the spilled low bits into the
        following byte — so per-tile packed appends cost O(bytes), not
        O(bits).
        """
        nbytes = (self._nbits + 7) // 8
        out = np.zeros(nbytes + 1, dtype=np.uint8)  # +1: shift spill scratch
        pos = 0
        for data, nbits in self._entries():
            if not nbits:
                continue
            nb = data.size
            k = pos & 7
            byte0 = pos >> 3
            if k == 0:
                out[byte0 : byte0 + nb] |= data
            else:
                out[byte0 : byte0 + nb] |= data >> k
                spill = ((data.astype(np.uint16) << (8 - k)) & 0xFF).astype(np.uint8)
                out[byte0 + 1 : byte0 + 1 + nb] |= spill
            pos += nbits
        return out[:nbytes]

    def bits(self) -> np.ndarray:
        """Return the raw bit array (bool), without byte padding."""
        if not self._chunks:
            return np.zeros(0, dtype=_BOOL)
        if len(self._chunks) > 1 or isinstance(self._chunks[0], _Packed):
            parts = [
                np.unpackbits(c.data, count=c.nbits).astype(_BOOL)
                if isinstance(c, _Packed)
                else c
                for c in self._chunks
            ]
            self._chunks = [parts[0] if len(parts) == 1 else np.concatenate(parts)]
        return self._chunks[0]

    def getvalue(self) -> bytes:
        """Pack the accumulated bits to bytes (MSB-first, zero padded)."""
        return self._merged().tobytes()


class BitReader:
    """Reads bits MSB-first from bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes | np.ndarray) -> None:
        if isinstance(data, (bytes, bytearray, memoryview)):
            raw = np.frombuffer(bytes(data), dtype=np.uint8)
            self._bits = np.unpackbits(raw).astype(_BOOL)
        else:
            self._bits = np.asarray(data).astype(_BOOL).ravel()
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._bits.size - self._pos

    def _take(self, n: int) -> np.ndarray:
        if n > self.remaining:
            raise EOFError(f"bitstream exhausted: requested {n}, remaining {self.remaining}")
        out = self._bits[self._pos : self._pos + n]
        self._pos += n
        return out

    def read_bit(self) -> int:
        return int(self._take(1)[0])

    def read_bits(self, nbits: int) -> int:
        if nbits == 0:
            return 0
        bits = self._take(nbits).astype(np.uint64)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return int((bits << shifts).sum())

    def read_bit_array(self, count: int) -> np.ndarray:
        return self._take(count).copy()

    def seek(self, pos: int) -> None:
        """Move the read cursor to absolute bit position ``pos``.

        Lets tiled decoders interleave reads from precomputed section
        offsets (e.g. SZx width-grouped payloads) without slicing new
        readers per section.
        """
        pos = int(pos)
        if not 0 <= pos <= self._bits.size:
            raise ValueError(
                f"seek position {pos} outside bitstream of {self._bits.size} bits"
            )
        self._pos = pos

    def window_values(self, width: int) -> np.ndarray:
        """Window value at every remaining position (see :func:`window_values`).

        Does not consume bits; index ``0`` corresponds to the current read
        position.
        """
        return window_values(self._bits[self._pos :], width)

    def read_uint_array(self, count: int, nbits: int) -> np.ndarray:
        if count == 0 or nbits == 0:
            return np.zeros(count, dtype=np.uint64)
        # Pack each row's bits to bytes and combine per-byte: ~8x less
        # memory traffic than broadcasting one uint64 per bit. Fields are
        # right-padded by packbits, so the shift floor drops the padding;
        # byte ranges are disjoint, so the sum is an exact bitwise OR.
        bits = self._take(count * nbits)
        nb = (nbits + 7) // 8
        packed = np.packbits(bits.reshape(count, nbits), axis=1)
        shifts = np.arange(nb - 1, -1, -1, dtype=np.uint64) * np.uint64(8)
        vals = (packed.astype(np.uint64) << shifts).sum(axis=1, dtype=np.uint64)
        return vals >> np.uint64(8 * nb - nbits)

    def read_unary(self) -> int:
        rest = self._bits[self._pos :]
        idx = np.argmax(rest)
        if rest.size == 0 or not rest[idx]:
            raise EOFError("unary code not terminated before end of stream")
        self._pos += int(idx) + 1
        return int(idx)

    def read_elias_gamma(self) -> int:
        nbits = self.read_unary() + 1
        if nbits == 1:
            return 1
        return (1 << (nbits - 1)) + self.read_bits(nbits - 1)
