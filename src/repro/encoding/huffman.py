"""Canonical Huffman coding over integer symbol alphabets.

This is SZ3's entropy stage. Encoding is vectorized: each symbol is mapped to
a (code, length) pair through table lookups and the variable-length codes are
materialized as one flat bit array in a single numpy pass. Decoding uses the
canonical-code property (codes of equal length are consecutive integers) to
decode with per-length table lookups rather than bit-by-bit tree walking.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter

_MAX_CODE_LEN = 48
_TABLE_BITS = 16  # fast-decode lookup window


def huffman_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Return optimal prefix-code lengths for each symbol.

    ``frequencies[i]`` is the count of symbol ``i``; zero-frequency symbols
    get length 0 (absent from the codebook). A single-symbol alphabet gets
    length 1 (a real stream still needs one bit per occurrence).
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    if freq.ndim != 1:
        raise ValueError("frequencies must be 1-D")
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    present = np.flatnonzero(freq > 0)
    lengths = np.zeros(freq.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Standard heap-based Huffman tree construction over the present symbols.
    # Entries are (freq, tiebreak, node_id); parents get fresh node ids.
    heap = [(int(freq[s]), int(i), int(i)) for i, s in enumerate(present)]
    heapq.heapify(heap)
    parent = np.full(2 * present.size - 1, -1, dtype=np.int64)
    next_id = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        parent[n1] = next_id
        parent[n2] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1

    # Depth of each leaf = code length.
    depth = np.zeros(next_id, dtype=np.int64)
    for node in range(next_id - 2, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[present] = depth[: present.size]
    if lengths.max() > _MAX_CODE_LEN:  # pragma: no cover - needs astronomic skew
        raise OverflowError("Huffman code length exceeds supported maximum")
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values from code lengths.

    Symbols are ordered by (length, symbol); codes of the same length are
    consecutive. Returns an array of code values (as uint64); symbols with
    length 0 get code 0 and must not be encoded.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def huffman_encoded_bits(frequencies: np.ndarray) -> int:
    """Exact encoded payload size in bits for a stream with these counts.

    Used by size estimators that want the Huffman cost without materializing
    the bitstream.
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    lengths = huffman_code_lengths(freq)
    return int((freq * lengths).sum())


@dataclass
class HuffmanCodec:
    """Canonical Huffman codec for symbols in ``[0, alphabet_size)``."""

    lengths: np.ndarray
    codes: np.ndarray
    # lazily built fast-decode tables (see _decode_table)
    _sym_table: np.ndarray | None = None
    _len_table: np.ndarray | None = None
    _slow: dict | None = None

    @classmethod
    def fit(cls, symbols: np.ndarray, alphabet_size: int | None = None) -> "HuffmanCodec":
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("symbols must be non-negative")
        default = symbols.max() + 1 if symbols.size else 1
        size = int(alphabet_size if alphabet_size is not None else default)
        freq = np.bincount(symbols, minlength=size)
        lengths = huffman_code_lengths(freq)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCodec":
        lengths = np.asarray(lengths, dtype=np.int64)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @property
    def alphabet_size(self) -> int:
        return int(self.lengths.size)

    def encoded_bits(self, symbols: np.ndarray) -> int:
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        return int(self.lengths[symbols].sum())

    def encode(self, symbols: np.ndarray, writer: BitWriter) -> None:
        """Append the code for each symbol to ``writer`` (vectorized)."""
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size == 0:
            return
        if symbols.min() < 0 or symbols.max() >= self.lengths.size:
            raise ValueError("symbol outside codebook alphabet")
        lens = self.lengths[symbols]
        if (lens == 0).any():
            bad = symbols[lens == 0][0]
            raise ValueError(f"symbol {bad} not in codebook")
        vals = self.codes[symbols]
        max_len = int(lens.max())
        # Bit matrix of shape (n, max_len) holding each code left-padded,
        # then select only the valid (length) prefix of each row.
        shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint64)
        aligned = vals << (max_len - lens).astype(np.uint64)
        bits = ((aligned[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool)
        mask = np.arange(max_len)[None, :] < lens[:, None]
        writer.write_bit_array(bits[mask])

    def decode(self, reader: BitReader, count: int) -> np.ndarray:
        """Decode ``count`` symbols.

        Bulk streams use a table-driven fast path: a 16-bit window value at
        every position is precomputed vectorized and one probe decodes a
        whole symbol; codes longer than the window (necessarily rare) take
        a per-symbol fallback inside the loop. Tiny streams use the
        canonical per-length walk directly.
        """
        lengths = self.lengths
        present = np.flatnonzero(lengths > 0)
        if present.size == 0:
            if count:
                raise ValueError("cannot decode with an empty codebook")
            return np.zeros(0, dtype=np.int64)
        max_len = int(lengths[present].max())
        if count > 64:
            # Hybrid fast path: codes longer than the window (rare by
            # construction — their stream probability is < 2^-_TABLE_BITS)
            # fall back to a per-symbol walk inside the chase loop.
            return self._decode_table(reader, count, min(max_len, _TABLE_BITS))
        return self._decode_walk(reader, count)

    def _decode_table(self, reader: BitReader, count: int, max_len: int) -> np.ndarray:
        """Prefix-table decode.

        Vectorized precomputation: the ``max_len``-bit window value at
        *every* bit position is one sliding-window matvec, and two table
        gathers turn those into per-position (symbol, advance) arrays. The
        remaining data-dependent chase ``pos += advance[pos]`` is a
        scalar-only Python loop — no numpy calls inside — so decode costs
        ~a hundred ns per symbol instead of per bit.
        """
        sym_table, len_table = self._tables(max_len)
        bits = reader._bits[reader._pos :]
        nbits = bits.size
        padded = np.concatenate(
            (bits.astype(np.int64), np.zeros(max_len, dtype=np.int64))
        )
        # Window value at every bit position, as max_len shifted adds —
        # avoids materializing an (nbits, max_len) matrix for the matvec.
        vals = np.zeros(nbits + 1, dtype=np.int64)
        for j in range(max_len):
            vals += padded[j : j + nbits + 1] << (max_len - 1 - j)
        sym_at = sym_table[vals].tolist()
        adv_at = len_table[vals].tolist()
        slow = self._slow_entries()  # (length -> {code: symbol}) for long codes
        bit_list = bits.tolist() if slow else None

        out = [0] * count
        pos = 0
        try:
            for i in range(count):
                step = adv_at[pos]
                if step == 0:
                    # long-code fallback: extend the window bit by bit
                    if not slow:
                        raise ValueError("invalid Huffman stream")
                    code = vals[pos]
                    length = max_len
                    while True:
                        length += 1
                        if pos + length > nbits:
                            raise EOFError(
                                "bitstream exhausted during Huffman decode"
                            )
                        code = (int(code) << 1) | bit_list[pos + length - 1]
                        hit = slow.get(length)
                        if hit is not None and code in hit:
                            out[i] = hit[code]
                            pos += length
                            break
                        if length > _MAX_CODE_LEN:
                            raise ValueError("invalid Huffman stream")
                else:
                    out[i] = sym_at[pos]
                    pos += step
        except IndexError:
            raise EOFError("bitstream exhausted during Huffman decode") from None
        if pos > nbits:
            raise EOFError("bitstream exhausted during Huffman decode")
        reader._pos += pos
        return np.array(out, dtype=np.int64)

    def _slow_entries(self) -> dict[int, dict[int, int]]:
        """Codes longer than the lookup window, keyed by length then code."""
        if self._slow is None:
            slow: dict[int, dict[int, int]] = {}
            for sym in np.flatnonzero(self.lengths > _TABLE_BITS):
                L = int(self.lengths[sym])
                slow.setdefault(L, {})[int(self.codes[sym])] = int(sym)
            self._slow = slow
        return self._slow

    def _tables(self, max_len: int) -> tuple[np.ndarray, np.ndarray]:
        if self._sym_table is None:
            size = 1 << max_len
            sym_table = np.zeros(size, dtype=np.int64)
            len_table = np.zeros(size, dtype=np.int16)
            for sym in np.flatnonzero(self.lengths > 0):
                L = int(self.lengths[sym])
                if L > max_len:
                    continue  # long code: sentinel 0 routes to the slow path
                base = int(self.codes[sym]) << (max_len - L)
                span = 1 << (max_len - L)
                sym_table[base : base + span] = sym
                len_table[base : base + span] = L
            self._sym_table, self._len_table = sym_table, len_table
        return self._sym_table, self._len_table

    def _decode_walk(self, reader: BitReader, count: int) -> np.ndarray:
        """Canonical per-length walk (handles arbitrarily long codes)."""
        lengths = self.lengths
        present = np.flatnonzero(lengths > 0)
        # first_code[L] = smallest code of length L; first_sym_index[L] = rank
        # (within the canonical order) of that code.
        order = np.lexsort((present, lengths[present]))
        sorted_syms = present[order]
        sorted_lens = lengths[sorted_syms]
        sorted_codes = self.codes[sorted_syms].astype(np.int64)
        max_len = int(sorted_lens.max())
        first_code = np.full(max_len + 2, np.iinfo(np.int64).max, dtype=np.int64)
        first_rank = np.zeros(max_len + 2, dtype=np.int64)
        for L in range(1, max_len + 1):
            idx = np.searchsorted(sorted_lens, L, side="left")
            if idx < sorted_lens.size and sorted_lens[idx] == L:
                first_code[L] = sorted_codes[idx]
                first_rank[L] = idx
        # Count of codes per length to know when a prefix is decodable.
        counts = np.bincount(sorted_lens, minlength=max_len + 1)

        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            code = 0
            for L in range(1, max_len + 1):
                code = (code << 1) | reader.read_bit()
                if counts[L] and code - first_code[L] < counts[L] and code >= first_code[L]:
                    out[i] = sorted_syms[first_rank[L] + (code - first_code[L])]
                    break
            else:
                raise ValueError("invalid Huffman stream")
        return out

    def serialize(self, writer: BitWriter) -> None:
        """Write the codebook (alphabet size + per-symbol lengths)."""
        writer.write_elias_gamma(self.alphabet_size + 1)
        writer.write_uint_array(self.lengths.astype(np.uint64), 6)

    @classmethod
    def deserialize(cls, reader: BitReader) -> "HuffmanCodec":
        size = reader.read_elias_gamma() - 1
        lengths = reader.read_uint_array(size, 6).astype(np.int64)
        return cls.from_lengths(lengths)
