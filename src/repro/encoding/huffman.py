"""Canonical Huffman coding over integer symbol alphabets.

This is SZ3's entropy stage. Encoding is vectorized: each symbol's
(code, length) pair comes from table lookups and the variable-length codes
land in the stream through one :meth:`BitWriter.write_varlen_uint_array`
call. Decoding is table-driven end to end: a multi-symbol prefix table maps
every window value to *how many* complete codes it holds and their total
bit advance, a scalar chase walks the stream one whole window per step, and
the symbols themselves are emitted afterwards in a handful of vectorized
gathers. Codes longer than the lookup window decode through the canonical
first-code arrays (codes of equal length are consecutive integers) instead
of a per-length dict walk. :meth:`HuffmanCodec._decode_walk` is the slow
reference oracle the fast paths are tested against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.encoding.bitstream import (
    BitReader,
    BitWriter,
    _Packed,
    _container_dtype,
    window_values,
)

_MAX_CODE_LEN = 48
_TABLE_BITS = 16  # fast-decode lookup window


def huffman_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Return optimal prefix-code lengths for each symbol.

    ``frequencies[i]`` is the count of symbol ``i``; zero-frequency symbols
    get length 0 (absent from the codebook). A single-symbol alphabet gets
    length 1 (a real stream still needs one bit per occurrence).
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    if freq.ndim != 1:
        raise ValueError("frequencies must be 1-D")
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    present = np.flatnonzero(freq > 0)
    lengths = np.zeros(freq.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Standard heap-based Huffman tree construction over the present symbols.
    # Entries are (freq, tiebreak, node_id); parents get fresh node ids.
    heap = [(int(freq[s]), int(i), int(i)) for i, s in enumerate(present)]
    heapq.heapify(heap)
    parent = np.full(2 * present.size - 1, -1, dtype=np.int64)
    next_id = present.size
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        parent[n1] = next_id
        parent[n2] = next_id
        heapq.heappush(heap, (f1 + f2, next_id, next_id))
        next_id += 1

    # Depth of each leaf = code length.
    depth = np.zeros(next_id, dtype=np.int64)
    for node in range(next_id - 2, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[present] = depth[: present.size]
    if lengths.max() > _MAX_CODE_LEN:  # pragma: no cover - needs astronomic skew
        raise OverflowError("Huffman code length exceeds supported maximum")
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values from code lengths.

    Symbols are ordered by (length, symbol); codes of the same length are
    consecutive. Returns an array of code values (as uint64); symbols with
    length 0 get code 0 and must not be encoded.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def huffman_encoded_bits(frequencies: np.ndarray) -> int:
    """Exact encoded payload size in bits for a stream with these counts.

    Used by size estimators that want the Huffman cost without materializing
    the bitstream.
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    lengths = huffman_code_lengths(freq)
    return int((freq * lengths).sum())


def stream_entropy_bits(symbols: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of an integer symbol stream.

    The entropy floor the Huffman cost approaches from above; surrogate
    size estimators use it as the encoded-size stand-in for streams they
    never materialize (SECRE skips the entropy stage entirely).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    if symbols.size == 0:
        return 0.0
    counts = np.bincount(symbols - symbols.min())
    p = counts[counts > 0] / symbols.size
    return float(-(p * np.log2(p)).sum())


@dataclass
class HuffmanCodec:
    """Canonical Huffman codec for symbols in ``[0, alphabet_size)``."""

    lengths: np.ndarray
    codes: np.ndarray
    # lazily built fast-decode tables (see _decode_table)
    _sym_table: np.ndarray | None = None
    _len_table: np.ndarray | None = None
    _ns_table: np.ndarray | None = None
    _adv_table: np.ndarray | None = None
    _canonical: tuple | None = None

    @classmethod
    def fit(cls, symbols: np.ndarray, alphabet_size: int | None = None) -> "HuffmanCodec":
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("symbols must be non-negative")
        default = symbols.max() + 1 if symbols.size else 1
        size = int(alphabet_size if alphabet_size is not None else default)
        return cls.from_frequencies(np.bincount(symbols, minlength=size))

    @classmethod
    def from_frequencies(cls, frequencies: np.ndarray) -> "HuffmanCodec":
        """Build the codec from a symbol histogram.

        ``fit`` composed with per-tile ``np.bincount`` accumulation yields
        exactly this call, so tiled pipelines that sum tile histograms get
        the same codebook (hence the same bytes) as a whole-array ``fit``.
        """
        lengths = huffman_code_lengths(np.asarray(frequencies, dtype=np.int64))
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCodec":
        lengths = np.asarray(lengths, dtype=np.int64)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @property
    def alphabet_size(self) -> int:
        return int(self.lengths.size)

    def encoded_bits(self, symbols: np.ndarray) -> int:
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        return int(self.lengths[symbols].sum())

    def encode(self, symbols: np.ndarray, writer: BitWriter) -> None:
        """Append the code for each symbol to ``writer`` (vectorized)."""
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size == 0:
            return
        if symbols.min() < 0 or symbols.max() >= self.lengths.size:
            raise ValueError("symbol outside codebook alphabet")
        lens = self.lengths[symbols]
        if (lens == 0).any():
            bad = symbols[lens == 0][0]
            raise ValueError(f"symbol {bad} not in codebook")
        writer.write_varlen_uint_array(self.codes[symbols], lens)

    def encode_packed(self, symbols: np.ndarray) -> _Packed:
        """Byte-packed codes for ``symbols`` — bit-identical to
        :meth:`encode`, built for fused tile loops.

        Each symbol's code is expanded from a right-aligned big-endian
        container via ``np.unpackbits`` and the live bits are selected
        with one boolean mask (advanced indexing preserves row order, so
        codes concatenate exactly as the per-symbol writer would emit
        them). Cost scales with the container width, not with one bool
        per output bit, which makes the entropy stage's packing several
        times cheaper per tile.
        """
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size == 0:
            return _Packed(np.zeros(0, dtype=np.uint8), 0)
        if symbols.min() < 0 or symbols.max() >= self.lengths.size:
            raise ValueError("symbol outside codebook alphabet")
        lens = self.lengths[symbols]
        if (lens == 0).any():
            bad = symbols[lens == 0][0]
            raise ValueError(f"symbol {bad} not in codebook")
        dtype, cbits = _container_dtype(int(lens.max()))
        code_bits = np.unpackbits(
            self.codes[symbols].astype(dtype).view(np.uint8).reshape(symbols.size, -1),
            axis=1,
        )
        live = np.arange(cbits) >= (cbits - lens)[:, None]
        return _Packed(np.packbits(code_bits[live]), int(lens.sum()))

    def stream_decoder(self, reader: BitReader) -> "HuffmanStreamDecoder":
        """A resumable decoder over ``reader``'s remaining bits.

        Tiled pipelines call :meth:`HuffmanStreamDecoder.take` once per
        tile; the window values are computed once for the whole stream,
        so T takes cost the same total work as one bulk decode.
        """
        return HuffmanStreamDecoder(self, reader)

    def decode(self, reader: BitReader, count: int) -> np.ndarray:
        """Decode ``count`` symbols.

        Bulk streams use the table-driven batch path (:meth:`_decode_table`):
        every probe of the multi-symbol prefix table advances one whole
        window, and the probed symbols are emitted vectorized afterwards.
        Codes longer than the window (necessarily rare — their stream
        probability is below ``2**-_TABLE_BITS``) resolve through the
        canonical first-code arrays. Tiny streams use the per-length
        reference walk directly.
        """
        lengths = self.lengths
        present = np.flatnonzero(lengths > 0)
        if present.size == 0:
            if count:
                raise ValueError("cannot decode with an empty codebook")
            return np.zeros(0, dtype=np.int64)
        max_len = int(lengths[present].max())
        if count > 64:
            return self._decode_table(reader, count, min(max_len, _TABLE_BITS))
        return self._decode_walk(reader, count)

    def _decode_table(self, reader: BitReader, count: int, max_len: int) -> np.ndarray:
        """Batch prefix-table decode (one-shot wrapper around the
        resumable :class:`HuffmanStreamDecoder`, which holds the actual
        chase/emission machinery)."""
        return HuffmanStreamDecoder(self, reader, max_len=max_len).take(count)

    def _multi_tables(self, max_len: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-window (symbol count, bit advance) for whole-window probes.

        Built vectorized over all ``2**max_len`` window values at once:
        each round decodes the next code of every still-active window via
        the single-symbol tables and shifts it out. A code only counts when
        it fits entirely inside the window — its table entry is then
        determined by real bits, never by the zeros shifted in — so a
        window's (count, advance) is exact for every stream position.
        Windows whose *first* code is longer than the window get the
        sentinel count 0.
        """
        if self._ns_table is None:
            _, len_table = self._tables(max_len)
            size = 1 << max_len
            mask = np.int64(size - 1)
            cur = np.arange(size, dtype=np.int64)
            ns = np.zeros(size, dtype=np.int64)
            used = np.zeros(size, dtype=np.int64)
            active = np.arange(size)
            while active.size:
                lens = len_table[cur[active]].astype(np.int64)
                ok = (lens > 0) & (used[active] + lens <= max_len)
                active = active[ok]
                if not active.size:
                    break
                lens = lens[ok]
                ns[active] += 1
                used[active] += lens
                cur[active] = (cur[active] << lens) & mask
            self._ns_table, self._adv_table = ns, used
        return self._ns_table, self._adv_table

    def _canonical_arrays(self) -> tuple:
        """(sorted_syms, first_code, first_rank, counts, max_len) tables.

        The canonical-code property — codes of equal length are consecutive
        integers — reduces "which symbol does this long code name?" to two
        array lookups and a range check per candidate length.
        """
        if self._canonical is None:
            lengths = self.lengths
            present = np.flatnonzero(lengths > 0)
            order = np.lexsort((present, lengths[present]))
            sorted_syms = present[order]
            sorted_lens = lengths[sorted_syms]
            sorted_codes = self.codes[sorted_syms].astype(np.int64)
            max_len = int(sorted_lens.max())
            first_code = np.full(max_len + 2, np.iinfo(np.int64).max, dtype=np.int64)
            first_rank = np.zeros(max_len + 2, dtype=np.int64)
            for length in range(1, max_len + 1):
                idx = np.searchsorted(sorted_lens, length, side="left")
                if idx < sorted_lens.size and sorted_lens[idx] == length:
                    first_code[length] = sorted_codes[idx]
                    first_rank[length] = idx
            counts = np.bincount(sorted_lens, minlength=max_len + 2)
            self._canonical = (sorted_syms, first_code, first_rank, counts, max_len)
        return self._canonical

    def _decode_long(
        self, bits: np.ndarray, nbits: int, pos: int, window: int, window_len: int
    ) -> tuple[int, int]:
        """Decode one code longer than the window; returns (symbol, length)."""
        sorted_syms, first_code, first_rank, counts, max_len = self._canonical_arrays()
        code = window
        length = window_len
        while True:
            length += 1
            if pos + length > nbits:
                raise EOFError("bitstream exhausted during Huffman decode")
            code = (code << 1) | int(bits[pos + length - 1])
            if (
                length <= max_len
                and counts[length]
                and first_code[length] <= code < first_code[length] + counts[length]
            ):
                return int(sorted_syms[first_rank[length] + (code - first_code[length])]), length
            if length > _MAX_CODE_LEN:
                raise ValueError("invalid Huffman stream")

    def _tables(self, max_len: int) -> tuple[np.ndarray, np.ndarray]:
        if self._sym_table is None:
            size = 1 << max_len
            sym_table = np.zeros(size, dtype=np.int64)
            len_table = np.zeros(size, dtype=np.int16)
            for sym in np.flatnonzero(self.lengths > 0):
                L = int(self.lengths[sym])
                if L > max_len:
                    continue  # long code: sentinel 0 routes to the slow path
                base = int(self.codes[sym]) << (max_len - L)
                span = 1 << (max_len - L)
                sym_table[base : base + span] = sym
                len_table[base : base + span] = L
            self._sym_table, self._len_table = sym_table, len_table
        return self._sym_table, self._len_table

    def _decode_walk(self, reader: BitReader, count: int) -> np.ndarray:
        """Canonical per-length walk (handles arbitrarily long codes)."""
        lengths = self.lengths
        present = np.flatnonzero(lengths > 0)
        # first_code[L] = smallest code of length L; first_sym_index[L] = rank
        # (within the canonical order) of that code.
        order = np.lexsort((present, lengths[present]))
        sorted_syms = present[order]
        sorted_lens = lengths[sorted_syms]
        sorted_codes = self.codes[sorted_syms].astype(np.int64)
        max_len = int(sorted_lens.max())
        first_code = np.full(max_len + 2, np.iinfo(np.int64).max, dtype=np.int64)
        first_rank = np.zeros(max_len + 2, dtype=np.int64)
        for L in range(1, max_len + 1):
            idx = np.searchsorted(sorted_lens, L, side="left")
            if idx < sorted_lens.size and sorted_lens[idx] == L:
                first_code[L] = sorted_codes[idx]
                first_rank[L] = idx
        # Count of codes per length to know when a prefix is decodable.
        counts = np.bincount(sorted_lens, minlength=max_len + 1)

        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            code = 0
            for L in range(1, max_len + 1):
                code = (code << 1) | reader.read_bit()
                if counts[L] and code - first_code[L] < counts[L] and code >= first_code[L]:
                    out[i] = sorted_syms[first_rank[L] + (code - first_code[L])]
                    break
            else:
                raise ValueError("invalid Huffman stream")
        return out

    def serialize(self, writer: BitWriter) -> None:
        """Write the codebook (alphabet size + per-symbol lengths)."""
        writer.write_elias_gamma(self.alphabet_size + 1)
        writer.write_uint_array(self.lengths.astype(np.uint64), 6)

    @classmethod
    def deserialize(cls, reader: BitReader) -> "HuffmanCodec":
        size = reader.read_elias_gamma() - 1
        lengths = reader.read_uint_array(size, 6).astype(np.int64)
        return cls.from_lengths(lengths)


class HuffmanStreamDecoder:
    """Resumable table-driven decoder over one reader's remaining bits.

    Phase 1 (scalar chase): the ``max_len``-bit window value at every bit
    position comes from one vectorized :func:`window_values` pass over the
    *whole* remaining stream, done once at construction; the multi-symbol
    tables then turn each probed window into (number of complete codes,
    total bit advance), so the data-dependent Python loop runs once per
    *window*, not once per symbol — and it only records probe positions,
    never touches symbols. Phase 2 (vectorized emission): for ``k = 0, 1,
    ...`` the ``k``-th symbol of every probe is gathered in one indexed
    lookup, so symbol extraction costs a few numpy passes regardless of
    stream length.

    :meth:`take` runs one chase+emission pass from the saved position and
    leaves the cursor (and the underlying reader) exactly after the last
    decoded code, so tiled decoders can pull symbols tile by tile — T
    takes cost the same total chase work as one bulk decode, with no
    full-stream symbol array ever materialized.
    """

    def __init__(
        self, codec: HuffmanCodec, reader: BitReader, max_len: int | None = None
    ) -> None:
        self._reader = reader
        lengths = codec.lengths
        present = np.flatnonzero(lengths > 0)
        self._empty = present.size == 0
        if self._empty:
            return
        if max_len is None:
            max_len = min(int(lengths[present].max()), _TABLE_BITS)
        self._sym_table, self._len_table = codec._tables(max_len)
        self._ns_tab, self._adv_tab = codec._multi_tables(max_len)
        self._ns_at = self._ns_tab.tolist()
        self._adv_at = self._adv_tab.tolist()
        self._codec = codec
        self._max_len = max_len
        self._bits = reader._bits[reader._pos :]
        self._nbits = self._bits.size
        self._vals = window_values(self._bits, max_len)
        self._has_long = bool((lengths > max_len).any())
        self._pos = 0  # bit cursor relative to the construction position

    def take(self, count: int) -> np.ndarray:
        """Decode the next ``count`` symbols and advance the cursor."""
        count = int(count)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if self._empty:
            raise ValueError("cannot decode with an empty codebook")
        bits, nbits, vals = self._bits, self._nbits, self._vals
        sym_table, len_table = self._sym_table, self._len_table
        ns_at, adv_at = self._ns_at, self._adv_at
        max_len, has_long = self._max_len, self._has_long

        probes: list[int] = []  # bit position of each probe
        long_marks: list[int] = []  # len(probes) when each long code was hit
        long_sym: list[int] = []
        final_emit = 0  # symbols the final partial probe actually emits
        total = 0
        start = self._pos
        pos = start
        window_at = vals.item
        while total < count:
            if pos > nbits:
                raise EOFError("bitstream exhausted during Huffman decode")
            window = window_at(pos)
            ns = ns_at[window]
            if ns == 0:
                # First code in the window is longer than the window (or the
                # stream is invalid) — resolve it canonically.
                if not has_long:
                    raise ValueError("invalid Huffman stream")
                sym, length = self._codec._decode_long(bits, nbits, pos, window, max_len)
                long_marks.append(len(probes))
                long_sym.append(sym)
                total += 1
                pos += length
            elif total + ns >= count:
                # Final probe: step symbol by symbol for the exact end bit.
                probes.append(pos)
                final_emit = count - total
                while True:
                    pos += int(len_table.item(window))
                    total += 1
                    if total == count:
                        break
                    if pos > nbits:
                        raise EOFError("bitstream exhausted during Huffman decode")
                    window = window_at(pos)
            else:
                probes.append(pos)
                total += ns
                pos += adv_at[window]
        if pos > nbits:
            raise EOFError("bitstream exhausted during Huffman decode")
        self._pos = pos
        self._reader._pos += pos - start

        # Per-probe emit counts and output bases are reconstructed here
        # instead of being appended inside the chase loop: the table lookup
        # that produced each probe's ``ns`` is replayed as one gather, and
        # long-coded symbols (recorded as "after probe m") shift the bases
        # of every later probe.
        out = np.empty(count, dtype=np.int64)
        ends = np.zeros(0, dtype=np.int64)
        if probes:
            probe_pos = np.array(probes, dtype=np.int64)
            emit = self._ns_tab[vals[probe_pos]]
            if final_emit:
                emit[-1] = final_emit
            ends = np.cumsum(emit)
            base = ends - emit
            if long_marks:
                marks = np.array(long_marks, dtype=np.int64)
                base += np.searchsorted(marks, np.arange(probe_pos.size), side="right")
            cursor = probe_pos.copy()
            for k in range(int(emit.max())):
                sel = np.flatnonzero(emit > k)
                windows = vals[cursor[sel]]
                out[base[sel] + k] = sym_table[windows]
                cursor[sel] += len_table[windows]
        if long_sym:
            marks = np.array(long_marks, dtype=np.int64)
            probe_cum = np.concatenate(([0], ends))
            long_at = probe_cum[marks] + np.arange(marks.size)
            out[long_at] = np.array(long_sym, dtype=np.int64)
        return out
