"""Static range (arithmetic) coder over integer symbol alphabets.

An alternative entropy backend to canonical Huffman: a range coder reaches
the Shannon entropy to within ~0.01 bits/symbol, whereas Huffman loses up
to 1 bit/symbol on highly skewed alphabets — precisely the regime of SZ3's
quantization codes (one dominant "exactly predicted" symbol). Real SZ uses
Huffman+zstd; SZ variants and SPERR-adjacent codecs use arithmetic/ANS
stages, so `SZ3Compressor(entropy="range")` lets the repo measure that
design choice (``benchmarks/test_ablation_entropy.py``).

Classic 32-bit Schindler-style carry-less range coder with a static
frequency model (the model is serialized alongside, like a Huffman
codebook). Encoding/decoding are per-symbol Python loops — fine for the
ablation and tests; Huffman remains the default backend.
"""

from __future__ import annotations

import numpy as np

_TOP = 1 << 24
_BOT = 1 << 16
_MASK = (1 << 32) - 1
_MAX_TOTAL = _BOT - 1


def _quantized_freqs(frequencies: np.ndarray) -> np.ndarray:
    """Scale counts to a total <= _MAX_TOTAL, keeping every symbol >= 1."""
    freq = np.asarray(frequencies, dtype=np.int64)
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    present = freq > 0
    if not present.any():
        raise ValueError("need at least one present symbol")
    total = int(freq.sum())
    if total > _MAX_TOTAL:
        scaled = np.maximum((freq * _MAX_TOTAL) // total, present.astype(np.int64))
        freq = scaled
    return freq


class RangeEncoder:
    """Static-model range encoder."""

    def __init__(self, frequencies: np.ndarray) -> None:
        self.freq = _quantized_freqs(frequencies)
        self.cum = np.concatenate(([0], np.cumsum(self.freq)))
        self.total = int(self.cum[-1])
        self._low = 0
        self._range = _MASK
        self._out = bytearray()

    def encode(self, symbols: np.ndarray) -> bytes:
        freq = self.freq
        cum = self.cum
        total = self.total
        low, rng = self._low, self._range
        out = self._out
        for s in np.asarray(symbols, dtype=np.int64).ravel():
            f = int(freq[s])
            if f == 0:
                raise ValueError(f"symbol {s} has zero frequency")
            rng //= total
            low = (low + int(cum[s]) * rng) & _MASK
            rng *= f
            # renormalize
            while (low ^ (low + rng)) < _TOP or (
                rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
            ):
                out.append((low >> 24) & 0xFF)
                low = (low << 8) & _MASK
                rng = (rng << 8) & _MASK
        # flush
        for _ in range(4):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK
        return bytes(out)


class RangeDecoder:
    """Mirror of :class:`RangeEncoder`."""

    def __init__(self, frequencies: np.ndarray, data: bytes) -> None:
        self.freq = _quantized_freqs(frequencies)
        self.cum = np.concatenate(([0], np.cumsum(self.freq)))
        self.total = int(self.cum[-1])
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = _MASK
        self._code = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK

    def _next_byte(self) -> int:
        if self._pos < len(self._data):
            b = self._data[self._pos]
            self._pos += 1
            return b
        return 0

    def decode(self, count: int) -> np.ndarray:
        cum = self.cum
        total = self.total
        low, rng, code = self._low, self._range, self._code
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            rng //= total
            value = ((code - low) & _MASK) // rng
            if value >= total:
                raise ValueError("corrupt range-coded stream")
            s = int(np.searchsorted(cum, value, side="right")) - 1
            out[i] = s
            low = (low + int(cum[s]) * rng) & _MASK
            rng *= int(self.freq[s])
            while (low ^ (low + rng)) < _TOP or (
                rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
            ):
                code = ((code << 8) | self._next_byte()) & _MASK
                low = (low << 8) & _MASK
                rng = (rng << 8) & _MASK
        self._low, self._range, self._code = low, rng, code
        return out


def range_encode(symbols: np.ndarray, alphabet_size: int | None = None) -> tuple[bytes, np.ndarray]:
    """One-shot helper: returns ``(payload, frequency_table)``."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    default = symbols.max() + 1 if symbols.size else 1
    size = int(alphabet_size if alphabet_size is not None else default)
    freq = np.bincount(symbols, minlength=size)
    if symbols.size == 0:
        return b"", freq
    payload = RangeEncoder(freq).encode(symbols)
    return payload, freq


def range_decode(payload: bytes, frequencies: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`range_encode`."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    return RangeDecoder(frequencies, payload).decode(count)
