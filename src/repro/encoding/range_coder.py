"""Static range (arithmetic) coder over integer symbol alphabets.

An alternative entropy backend to canonical Huffman: a range coder reaches
the Shannon entropy to within ~0.01 bits/symbol, whereas Huffman loses up
to 1 bit/symbol on highly skewed alphabets — precisely the regime of SZ3's
quantization codes (one dominant "exactly predicted" symbol). Real SZ uses
Huffman+zstd; SZ variants and SPERR-adjacent codecs use arithmetic/ANS
stages, so `SZ3Compressor(entropy="range")` lets the repo measure that
design choice (``benchmarks/test_ablation_entropy.py``).

Classic 32-bit Schindler-style carry-less range coder with a static
frequency model (the model is serialized alongside, like a Huffman
codebook). The renormalization recurrence is inherently sequential, so the
loops stay scalar — but they run over plain Python ints pre-gathered in
chunked numpy passes (per-symbol (freq, cum) lookups on encode, a
``np.repeat``-built value→symbol table replacing per-symbol searchsorted
on decode), which removes every numpy scalar-indexing call from the hot
loop while keeping the emitted bytes identical
(:func:`repro.encoding.reference.range_encode_reference`).
"""

from __future__ import annotations

import numpy as np

_TOP = 1 << 24
_BOT = 1 << 16
_MASK = (1 << 32) - 1
_MAX_TOTAL = _BOT - 1
_CHUNK = 1 << 16


def _quantized_freqs(frequencies: np.ndarray) -> np.ndarray:
    """Scale counts to a total <= _MAX_TOTAL, keeping every symbol >= 1."""
    freq = np.asarray(frequencies, dtype=np.int64)
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    present = freq > 0
    if not present.any():
        raise ValueError("need at least one present symbol")
    total = int(freq.sum())
    if total > _MAX_TOTAL:
        scaled = np.maximum((freq * _MAX_TOTAL) // total, present.astype(np.int64))
        freq = scaled
    return freq


class RangeEncoder:
    """Static-model range encoder."""

    def __init__(self, frequencies: np.ndarray) -> None:
        self.freq = _quantized_freqs(frequencies)
        self.cum = np.concatenate(([0], np.cumsum(self.freq)))
        self.total = int(self.cum[-1])
        self._low = 0
        self._range = _MASK
        self._out = bytearray()

    def update(self, symbols: np.ndarray) -> None:
        """Encode ``symbols`` into the pending stream without flushing.

        The incremental leg of the encoder: tiled pipelines call
        ``update`` once per tile and :meth:`finish` once at the end; the
        byte stream is identical to a single :meth:`encode` of the
        concatenated symbols because the coder state (``low``/``range``)
        carries across calls.
        """
        total = self.total
        low, rng = self._low, self._range
        out = self._out
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        try:
            for start in range(0, symbols.size, _CHUNK):
                chunk = symbols[start : start + _CHUNK]
                # Pre-gather per-symbol (freq, cum) as plain ints; the scalar
                # loop below then never touches a numpy object. A zero-frequency
                # symbol still gets the prefix before it encoded, matching the
                # scalar loop's observable output when it raises mid-stream.
                fs = self.freq[chunk]
                bad = int(np.argmax(fs == 0)) if (fs == 0).any() else chunk.size
                f_list = fs[:bad].tolist()
                c_list = self.cum[chunk[:bad]].tolist()
                for f, c in zip(f_list, c_list):
                    rng //= total
                    low = (low + c * rng) & _MASK
                    rng *= f
                    # renormalize
                    while (low ^ (low + rng)) < _TOP or (
                        rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
                    ):
                        out.append((low >> 24) & 0xFF)
                        low = (low << 8) & _MASK
                        rng = (rng << 8) & _MASK
                if bad < chunk.size:
                    raise ValueError(f"symbol {chunk[bad]} has zero frequency")
        finally:
            self._low, self._range = low, rng

    def finish(self) -> bytes:
        """Flush the coder and return the complete byte stream."""
        low = self._low
        out = self._out
        for _ in range(4):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK
        self._low = low
        return bytes(out)

    def encode(self, symbols: np.ndarray) -> bytes:
        self.update(symbols)
        return self.finish()


class RangeDecoder:
    """Mirror of :class:`RangeEncoder`."""

    def __init__(self, frequencies: np.ndarray, data: bytes) -> None:
        self.freq = _quantized_freqs(frequencies)
        self.cum = np.concatenate(([0], np.cumsum(self.freq)))
        self.total = int(self.cum[-1])
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = _MASK
        self._code = 0
        # lazily built decode lookups (see decode)
        self._sym_of_value: list[int] | None = None
        self._freq_l: list[int] = []
        self._cum_l: list[int] = []
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK

    def _next_byte(self) -> int:
        if self._pos < len(self._data):
            b = self._data[self._pos]
            self._pos += 1
            return b
        return 0

    def decode(self, count: int) -> np.ndarray:
        total = self.total
        low, rng, code = self._low, self._range, self._code
        # value→symbol lookup table (size == total <= 65535): one np.repeat
        # replaces a binary search per symbol, and per-symbol (freq, cum)
        # become plain-int list lookups.
        if self._sym_of_value is None:
            self._sym_of_value = np.repeat(
                np.arange(self.freq.size), self.freq
            ).tolist()
            self._freq_l = self.freq.tolist()
            self._cum_l = self.cum.tolist()
        sym_of_value = self._sym_of_value
        freq_l = self._freq_l
        cum_l = self._cum_l
        data = self._data
        ndata = len(data)
        pos = self._pos
        out = []
        try:
            for _ in range(count):
                rng //= total
                value = ((code - low) & _MASK) // rng
                if value >= total:
                    raise ValueError("corrupt range-coded stream")
                s = sym_of_value[value]
                out.append(s)
                low = (low + cum_l[s] * rng) & _MASK
                rng *= freq_l[s]
                while (low ^ (low + rng)) < _TOP or (
                    rng < _BOT and ((rng := -low & (_BOT - 1)) or True)
                ):
                    if pos < ndata:
                        byte = data[pos]
                        pos += 1
                    else:
                        byte = 0
                    code = ((code << 8) | byte) & _MASK
                    low = (low << 8) & _MASK
                    rng = (rng << 8) & _MASK
        finally:
            # The scalar reference advances the read cursor eagerly; keep
            # that observable even when raising on a corrupt stream.
            self._pos = pos
        self._low, self._range, self._code = low, rng, code
        return np.array(out, dtype=np.int64)


def range_encode(symbols: np.ndarray, alphabet_size: int | None = None) -> tuple[bytes, np.ndarray]:
    """One-shot helper: returns ``(payload, frequency_table)``."""
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    default = symbols.max() + 1 if symbols.size else 1
    size = int(alphabet_size if alphabet_size is not None else default)
    freq = np.bincount(symbols, minlength=size)
    if symbols.size == 0:
        return b"", freq
    payload = RangeEncoder(freq).encode(symbols)
    return payload, freq


def range_decode(payload: bytes, frequencies: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`range_encode`."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    return RangeDecoder(frequencies, payload).decode(count)
