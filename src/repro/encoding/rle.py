"""Zero run-length coding for integer symbol streams.

Quantization-code streams from smooth scientific data are dominated by the
"exactly predicted" symbol; collapsing its runs before entropy coding is the
same trick SZ3's encoder plays. Fully vectorized via run-boundary detection.

Also hosts the self-contained byte-stream form used by ``codec-bench``:
:func:`rle_bytes_encode` serializes the ``(values, runs)`` pair as zigzag +
LEB128 varints, with the varint arrays encoded and decoded in bulk numpy
passes (:func:`varint_encode_array` / :func:`varint_decode_array`) instead
of a Python loop per integer.
"""

from __future__ import annotations

import numpy as np

# LEB128 over uint64 never needs more than 10 bytes; longer groups mean a
# corrupt or adversarial stream.
_MAX_VARINT_BYTES = 10


def zero_rle_encode(symbols: np.ndarray, zero_symbol: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Split a stream into (non-zero symbols, preceding zero-run lengths).

    Returns ``(values, run_lengths)`` where ``run_lengths[i]`` is the number
    of ``zero_symbol`` entries immediately before ``values[i]``; a final
    sentinel pair ``(zero_symbol, trailing_run)`` is appended when the stream
    ends in zeros, so the encoding is always invertible given the pair.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    nz = np.flatnonzero(symbols != zero_symbol)
    values = symbols[nz]
    boundaries = np.concatenate(([-1], nz))
    runs = np.diff(boundaries) - 1
    trailing = symbols.size - (int(nz[-1]) + 1 if nz.size else 0)
    values = np.concatenate((values, [zero_symbol]))
    runs = np.concatenate((runs, [trailing]))
    return values, runs


def zero_rle_decode(
    values: np.ndarray, runs: np.ndarray, zero_symbol: int = 0
) -> np.ndarray:
    """Invert :func:`zero_rle_encode`."""
    values = np.asarray(values, dtype=np.int64).ravel()
    runs = np.asarray(runs, dtype=np.int64).ravel()
    if values.size != runs.size:
        raise ValueError("values and runs must have equal length")
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if (runs < 0).any():
        raise ValueError("run lengths must be non-negative")
    total = int(runs.sum()) + values.size - 1  # sentinel carries no symbol
    out = np.full(total, zero_symbol, dtype=np.int64)
    positions = np.cumsum(runs[:-1] + 1) - 1
    out[positions] = values[:-1]
    return out


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to uint64 with small magnitudes staying small."""
    v = np.asarray(values, dtype=np.int64).ravel()
    return (v.astype(np.uint64) << np.uint64(1)) ^ (v >> np.int64(63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag_encode`."""
    v = np.asarray(values, dtype=np.uint64).ravel()
    return (v >> np.uint64(1)).astype(np.int64) ^ -(v & np.uint64(1)).astype(np.int64)


def varint_encode_array(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a uint64 array in one numpy pass.

    Bit-identical to encoding each value with a scalar varint writer: byte
    counts come from threshold comparisons, ``np.repeat`` lays every
    output byte against its source value, and a shift+mask extracts the
    7-bit groups with the continuation bit set on all but each value's
    last byte. Returns a uint8 array.
    """
    values = np.asarray(values, dtype=np.uint64).ravel()
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    nbytes = np.ones(values.size, dtype=np.int64)
    for k in range(1, _MAX_VARINT_BYTES):
        nbytes += values >= np.uint64(1) << np.uint64(7 * k)
    total = int(nbytes.sum())
    ends = np.cumsum(nbytes)
    # Byte j of value i holds bits 7j .. 7j+6; j counts up from each start.
    offset = np.arange(total) + np.repeat(nbytes - ends, nbytes)
    out = (np.repeat(values, nbytes) >> (np.uint64(7) * offset.astype(np.uint64))).astype(
        np.uint8
    ) & np.uint8(0x7F)
    cont = offset < np.repeat(nbytes - 1, nbytes)
    out[cont] |= np.uint8(0x80)
    return out


def varint_decode_array(data: np.ndarray, count: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``count`` LEB128 varints from ``data`` starting at ``pos``.

    The whole batch parses vectorized: terminator bytes (continuation bit
    clear) delimit the groups, and each value is the reduceat-sum of its
    shifted 7-bit groups. Returns ``(values, next_pos)``; raises
    ``ValueError`` on truncation or over-long groups.
    """
    data = np.asarray(data, dtype=np.uint8).ravel()
    if count == 0:
        return np.zeros(0, dtype=np.uint64), pos
    tail = data[pos:]
    terminators = np.flatnonzero(tail < 0x80)
    if terminators.size < count:
        raise ValueError("corrupt varint stream: truncated")
    ends = terminators[:count]  # inclusive, relative to pos
    starts = np.concatenate(([0], ends[:-1] + 1))
    if ((ends - starts) >= _MAX_VARINT_BYTES).any():
        raise ValueError("corrupt varint stream: over-long varint")
    used = int(ends[-1]) + 1
    groups = np.repeat(np.arange(count), ends - starts + 1)
    offset = np.arange(used) - starts[groups]
    contrib = (tail[:used].astype(np.uint64) & np.uint64(0x7F)) << (
        np.uint64(7) * offset.astype(np.uint64)
    )
    values = np.add.reduceat(contrib, starts)
    return values, pos + used


def rle_bytes_encode(symbols: np.ndarray, zero_symbol: int = 0) -> bytes:
    """Self-contained byte serialization of a zero-RLE'd symbol stream.

    Layout: varint pair count, then the zigzagged values as varints, then
    the run lengths as varints — identical bytes to the scalar reference
    (:func:`repro.encoding.reference.rle_bytes_encode_reference`), built
    from three bulk varint passes.
    """
    values, runs = zero_rle_encode(symbols, zero_symbol=zero_symbol)
    head = varint_encode_array(np.array([values.size], dtype=np.uint64))
    body_v = varint_encode_array(zigzag_encode(values))
    body_r = varint_encode_array(runs.astype(np.uint64))
    return np.concatenate((head, body_v, body_r)).tobytes()


def rle_bytes_decode(blob: bytes, zero_symbol: int = 0) -> np.ndarray:
    """Invert :func:`rle_bytes_encode`."""
    data = np.frombuffer(bytes(blob), dtype=np.uint8)
    head, pos = varint_decode_array(data, 1)
    n = int(head[0])
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    values, pos = varint_decode_array(data, n, pos)
    runs, _ = varint_decode_array(data, n, pos)
    if (runs >> np.uint64(63)).any():
        raise ValueError("corrupt RLE stream: run length overflows")
    return zero_rle_decode(zigzag_decode(values), runs.astype(np.int64), zero_symbol=zero_symbol)
