"""Zero run-length coding for integer symbol streams.

Quantization-code streams from smooth scientific data are dominated by the
"exactly predicted" symbol; collapsing its runs before entropy coding is the
same trick SZ3's encoder plays. Fully vectorized via run-boundary detection.
"""

from __future__ import annotations

import numpy as np


def zero_rle_encode(symbols: np.ndarray, zero_symbol: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Split a stream into (non-zero symbols, preceding zero-run lengths).

    Returns ``(values, run_lengths)`` where ``run_lengths[i]`` is the number
    of ``zero_symbol`` entries immediately before ``values[i]``; a final
    sentinel pair ``(zero_symbol, trailing_run)`` is appended when the stream
    ends in zeros, so the encoding is always invertible given the pair.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    nz = np.flatnonzero(symbols != zero_symbol)
    values = symbols[nz]
    boundaries = np.concatenate(([-1], nz))
    runs = np.diff(boundaries) - 1
    trailing = symbols.size - (int(nz[-1]) + 1 if nz.size else 0)
    values = np.concatenate((values, [zero_symbol]))
    runs = np.concatenate((runs, [trailing]))
    return values, runs


def zero_rle_decode(
    values: np.ndarray, runs: np.ndarray, zero_symbol: int = 0
) -> np.ndarray:
    """Invert :func:`zero_rle_encode`."""
    values = np.asarray(values, dtype=np.int64).ravel()
    runs = np.asarray(runs, dtype=np.int64).ravel()
    if values.size != runs.size:
        raise ValueError("values and runs must have equal length")
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if (runs < 0).any():
        raise ValueError("run lengths must be non-negative")
    total = int(runs.sum()) + values.size - 1  # sentinel carries no symbol
    out = np.full(total, zero_symbol, dtype=np.int64)
    positions = np.cumsum(runs[:-1] + 1) - 1
    out[positions] = values[:-1]
    return out
