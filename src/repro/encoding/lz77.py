"""Greedy hash-chain LZ77 byte compressor.

Stand-in for the zstd lossless backend used by SZ3 and SPERR (see DESIGN.md).
The format is deliberately simple:

- a stream of tokens, each ``(literal_len, match_len, distance)``;
- ``literal_len`` raw bytes follow each token header;
- ``match_len == 0`` marks a literal-only token (end of stream flush);
- varint (LEB128) integers for all three header fields.

Matching uses a dict keyed on 4-byte prefixes, remembering the most recent
position — a single-entry hash chain, the same trade-off as fast zstd levels.
The match *extension* is vectorized with numpy so long matches (the common
case on quantization-code streams) cost O(match_len / simd) not O(match_len)
Python iterations.
"""

from __future__ import annotations

import numpy as np

_MIN_MATCH = 4
_WINDOW = 1 << 16


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _match_length(data: np.ndarray, a: int, b: int, limit: int) -> int:
    """Length of the common prefix of data[a:] and data[b:], capped at limit."""
    if limit <= 0:
        return 0
    diff = data[a : a + limit] != data[b : b + limit]
    idx = np.argmax(diff)
    if diff[idx]:
        return int(idx)
    return int(diff.size)


def lz77_compress(data: bytes) -> bytes:
    """Compress ``data``; always invertible via :func:`lz77_decompress`."""
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    n = raw.size
    out = bytearray()
    _write_varint(out, n)
    if n == 0:
        return bytes(out)

    # 4-byte rolling keys, computed once.
    if n >= _MIN_MATCH:
        keys = (
            raw[: n - 3].astype(np.uint32)
            | (raw[1 : n - 2].astype(np.uint32) << 8)
            | (raw[2 : n - 1].astype(np.uint32) << 16)
            | (raw[3:n].astype(np.uint32) << 24)
        )
    else:
        keys = np.zeros(0, dtype=np.uint32)

    table: dict[int, int] = {}
    pos = 0
    literal_start = 0
    data_bytes = bytes(data)
    while pos < n:
        match_len = 0
        match_dist = 0
        if pos + _MIN_MATCH <= n:
            key = int(keys[pos])
            cand = table.get(key)
            table[key] = pos
            if cand is not None and pos - cand <= _WINDOW:
                length = _match_length(raw, cand, pos, n - pos)
                if length >= _MIN_MATCH:
                    match_len = length
                    match_dist = pos - cand
        if match_len:
            _write_varint(out, pos - literal_start)
            _write_varint(out, match_len)
            _write_varint(out, match_dist)
            out.extend(data_bytes[literal_start:pos])
            # Seed the table sparsely inside the matched span so later
            # occurrences can still find it without per-byte updates.
            end = min(pos + match_len, n - _MIN_MATCH + 1)
            for p in range(pos + 1, end, 8):
                table[int(keys[p])] = p
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    if literal_start < n or n == 0:
        _write_varint(out, n - literal_start)
        _write_varint(out, 0)
        _write_varint(out, 0)
        out.extend(data_bytes[literal_start:])
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz77_compress`."""
    try:
        return _decompress(blob)
    except IndexError as exc:
        raise ValueError("corrupt LZ77 stream: truncated") from exc


def _decompress(blob: bytes) -> bytes:
    total, pos = _read_varint(blob, 0)
    out = bytearray()
    while len(out) < total:
        lit_len, pos = _read_varint(blob, pos)
        match_len, pos = _read_varint(blob, pos)
        dist, pos = _read_varint(blob, pos)
        if lit_len:
            out.extend(blob[pos : pos + lit_len])
            pos += lit_len
        if match_len:
            if dist <= 0 or dist > len(out):
                raise ValueError("corrupt LZ77 stream: bad distance")
            start = len(out) - dist
            # Overlapping copies must proceed byte-wise semantically; chunked
            # copy of at most ``dist`` bytes at a time preserves that.
            remaining = match_len
            while remaining > 0:
                chunk = min(dist, remaining)
                out.extend(out[start : start + chunk])
                start += chunk
                remaining -= chunk
    if len(out) != total:
        raise ValueError("corrupt LZ77 stream: length mismatch")
    return bytes(out)
