"""Greedy hash-chain LZ77 byte compressor.

Stand-in for the zstd lossless backend used by SZ3 and SPERR (see DESIGN.md).
The format is deliberately simple:

- a stream of tokens, each ``(literal_len, match_len, distance)``;
- ``literal_len`` raw bytes follow each token header;
- ``match_len == 0`` marks a literal-only token (end of stream flush);
- varint (LEB128) integers for all three header fields.

Matching uses a dict keyed on 4-byte prefixes, remembering the most recent
position — a single-entry hash chain, the same trade-off as fast zstd levels.
The *match finder* is vectorized: because the table is keyed on the exact
4-byte prefix (not a lossy hash), "candidate exists within the window"
already implies a match of at least ``_MIN_MATCH``, so match discovery
reduces to same-key neighbor arrays (one stable argsort over all keys) plus
per-block boolean masks — see :func:`lz77_compress` — while remaining
byte-identical to the scalar reference scan
(:func:`repro.encoding.reference.lz77_compress_reference`). Match
*extension* is a vectorized common-prefix scan, so long matches (the common
case on quantization-code streams) cost O(match_len / simd) not O(match_len)
Python iterations.
"""

from __future__ import annotations

import numpy as np

_MIN_MATCH = 4
_WINDOW = 1 << 16
# Literal runs are scanned in vectorized blocks; blocks grow while no match
# appears (long incompressible stretches) and reset after each token so
# match-dense streams don't overscan.
_BLOCK_MIN = 64
_BLOCK_MAX = 4096


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _match_length(data: np.ndarray, a: int, b: int, limit: int) -> int:
    """Length of the common prefix of data[a:] and data[b:], capped at limit."""
    if limit <= 0:
        return 0
    diff = data[a : a + limit] != data[b : b + limit]
    idx = np.argmax(diff)
    if diff[idx]:
        return int(idx)
    return int(diff.size)


def _match_len_fast(data_bytes: bytes, raw: np.ndarray, a: int, b: int, n: int) -> int:
    """Exact :func:`_match_length`, tuned for the short-match common case.

    A numpy slice comparison costs microseconds of fixed overhead, which
    dominates when matches are only a few bytes long (low-entropy streams
    produce mostly minimum-length matches). An 8-byte ``bytes`` slice
    compare triages: mismatch inside it is resolved with a scalar walk,
    and only matches of 8+ bytes pay for the vectorized scan.
    """
    limit = n - b
    if limit >= 8:
        if data_bytes[a : a + 8] == data_bytes[b : b + 8]:
            return _match_length(raw, a, b, limit)
        for k in range(8):
            if data_bytes[a + k] != data_bytes[b + k]:
                return k
    for k in range(limit):
        if data_bytes[a + k] != data_bytes[b + k]:
            return k
    return limit


def lz77_compress(data: bytes) -> bytes:
    """Compress ``data``; always invertible via :func:`lz77_decompress`.

    Byte-identical to the scalar reference scan, but the per-position loop
    is replaced by a vectorized match finder built on one observation: the
    table stores *exact* 4-byte prefixes, so at any scan position the
    reference finds a match iff the most recent table entry for that key
    lies within the window. Within the current literal run every position
    has been scanned (and thus inserted), so the nearest same-key
    predecessor — precomputed for all positions with one stable argsort —
    IS the table entry whenever it falls inside the run; only candidates
    that predate the run need a real dict lookup, and those are prefiltered
    to positions whose predecessor is in-window. Each literal run is then
    scanned as boolean block masks, and table inserts commit in one batched
    ``dict.update`` per token, skipping entries no future lookup can
    observe (next same-key occurrence absent or beyond the window — the
    lookup there fails the window check either way).
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    n = raw.size
    out = bytearray()
    _write_varint(out, n)
    if n == 0:
        return bytes(out)
    data_bytes = bytes(data)

    # 4-byte rolling keys, computed once; scan positions are 0 .. nk-1.
    nk = n - _MIN_MATCH + 1 if n >= _MIN_MATCH else 0
    if nk:
        keys = (
            raw[: n - 3].astype(np.uint32)
            | (raw[1 : n - 2].astype(np.uint32) << 8)
            | (raw[2 : n - 1].astype(np.uint32) << 16)
            | (raw[3:n].astype(np.uint32) << 24)
        )
        # Stable sort by key via one uint64 quicksort: the scan position in
        # the low bits breaks ties in position order, several times faster
        # than argsort(kind="stable") on the raw keys.
        shift = max(int(nk - 1).bit_length(), 1)
        combined = (keys.astype(np.uint64) << np.uint64(shift)) | np.arange(
            nk, dtype=np.uint64
        )
        combined.sort()
        order = (combined & np.uint64((1 << shift) - 1)).astype(np.int64)
        dup = (combined >> np.uint64(shift))[1:] == (combined >> np.uint64(shift))[:-1]
        # Same-key neighbor arrays: prev_same[p] is the nearest earlier
        # position with the same 4-byte prefix (-1 if none).
        prev_same = np.full(nk, -1, dtype=np.int64)
        prev_same[order[1:][dup]] = order[:-1][dup]
        idx = np.arange(nk, dtype=np.int64)
        # near[p]: the nearest same-key predecessor is a viable candidate.
        near = (prev_same >= 0) & (idx - prev_same <= _WINDOW)
        # insert_ok[p]: a table entry at p is observable by a future lookup
        # (the next same-key position exists and is within the window —
        # otherwise the lookup there fails the window check whether or not
        # p was inserted, so skipping the insert is outcome-equivalent).
        insert_ok = np.zeros(nk, dtype=bool)
        nxt_src = order[:-1][dup]
        insert_ok[nxt_src] = (order[1:][dup] - nxt_src) <= _WINDOW
    else:
        keys = np.zeros(0, dtype=np.uint32)

    table: dict[int, int] = {}
    # Match-dense streams (previous match found within a few positions)
    # switch to a scalar chase over plain Python lists — per-token numpy
    # overhead would otherwise dominate when tokens are only a few bytes
    # apart. The lists are materialized once, on first use.
    prev_l: list[int] | None = None
    keys_l: list[int] = []
    ins_l: list[bool] = []
    dense = False
    pos = 0
    literal_start = 0
    block = _BLOCK_MIN
    while pos < nk:
        m = -1
        if dense:
            if prev_l is None:
                prev_l = prev_same.tolist()
                keys_l = keys.tolist()
                ins_l = insert_ok.tolist()
            p = pos
            stop = min(pos + _BLOCK_MIN, nk)
            while p < stop:
                pv = prev_l[p]
                if pv >= 0 and p - pv <= _WINDOW:
                    if pv >= literal_start:
                        m, cand = p, pv
                        break
                    c = table.get(keys_l[p])
                    if c is not None and p - c <= _WINDOW:
                        m, cand = p, c
                        break
                p += 1
            if m < 0:
                pos = p
                dense = False
                continue
        else:
            block_end = min(pos + block, nk)
            pv_arr = prev_same[pos:block_end]
            nr = near[pos:block_end]
            in_run = nr & (pv_arr >= literal_start)
            # First position whose in-run predecessor guarantees a match.
            i = int(np.argmax(in_run))
            if in_run[i]:
                m, cand = pos + i, int(pv_arr[i])
            else:
                m = block_end
            # Candidates predating the run need the dict; in-run inserts
            # can never touch their keys (a same-key position in the run
            # would make the predecessor in-run), so order-checking them
            # against the frozen pre-run table state is exact.
            dict_cand = nr & (pv_arr < literal_start)
            if dict_cand.any():
                for j in np.flatnonzero(dict_cand).tolist():
                    p = pos + j
                    if p >= m:
                        break
                    c = table.get(int(keys[p]))
                    if c is not None and p - c <= _WINDOW:
                        m, cand = p, c
                        break
            if m == block_end:
                pos = block_end
                block = min(block * 2, _BLOCK_MAX)
                continue

        match_len = _match_len_fast(data_bytes, raw, cand, m, n)
        _write_varint(out, m - literal_start)
        _write_varint(out, match_len)
        _write_varint(out, m - cand)
        out.extend(data_bytes[literal_start:m])
        # Table commit: every scanned position of the run, then the sparse
        # seeds inside the matched span (so later occurrences can still
        # find it without per-byte updates). Ascending position order +
        # last-wins semantics reproduce the sequential inserts.
        span = m - literal_start
        seed_end = min(m + match_len, nk)
        if prev_l is not None and span + (seed_end - m) // 8 < _BLOCK_MIN:
            for p2 in range(literal_start, m + 1):
                if ins_l[p2]:
                    table[keys_l[p2]] = p2
            for p2 in range(m + 1, seed_end, 8):
                if ins_l[p2]:
                    table[keys_l[p2]] = p2
        else:
            run = idx[literal_start : m + 1]
            run = run[insert_ok[literal_start : m + 1]]
            seeds = np.arange(m + 1, seed_end, 8, dtype=np.int64)
            if seeds.size:
                seeds = seeds[insert_ok[seeds]]
                run = np.concatenate((run, seeds)) if run.size else seeds
            if run.size:
                table.update(zip(keys[run].tolist(), run.tolist()))
        pos = m + match_len
        literal_start = pos
        # Dense only when tokens are genuinely close together: short runs
        # AND short matches. Long matches leave the scalar chase nothing to
        # win and would pay the one-time list materialization for nothing.
        dense = span <= 16 and match_len <= 64
        block = _BLOCK_MIN
    if literal_start < n:
        _write_varint(out, n - literal_start)
        _write_varint(out, 0)
        _write_varint(out, 0)
        out.extend(data_bytes[literal_start:])
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz77_compress`."""
    try:
        return _decompress(blob)
    except IndexError as exc:
        raise ValueError("corrupt LZ77 stream: truncated") from exc


def _decompress(blob: bytes) -> bytes:
    total, pos = _read_varint(blob, 0)
    out = bytearray()
    while len(out) < total:
        lit_len, pos = _read_varint(blob, pos)
        match_len, pos = _read_varint(blob, pos)
        dist, pos = _read_varint(blob, pos)
        if lit_len:
            out.extend(blob[pos : pos + lit_len])
            pos += lit_len
        if match_len:
            if dist <= 0 or dist > len(out):
                raise ValueError("corrupt LZ77 stream: bad distance")
            start = len(out) - dist
            # Overlapping copies must proceed byte-wise semantically; chunked
            # copy of at most ``dist`` bytes at a time preserves that.
            remaining = match_len
            while remaining > 0:
                chunk = min(dist, remaining)
                out.extend(out[start : start + chunk])
                start += chunk
                remaining -= chunk
    if len(out) != total:
        raise ValueError("corrupt LZ77 stream: length mismatch")
    return bytes(out)
