"""SZx surrogate: block-wise sampling + the same delta encoding.

SZx compresses every 128-value block independently, so compressing a sample
of blocks and extrapolating the per-byte cost is nearly exact — the paper
reports 0.16% estimation error for this surrogate.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.szx import BLOCK, SZXCompressor
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sampling import sample_flat_blocks


class SZXSurrogate(SurrogateEstimator):
    """Samples one block every ``stride`` and runs real SZx on the sample."""

    compressor_name = "szx"

    def __init__(self, stride: int = 128, block_size: int = BLOCK) -> None:
        self.stride = int(stride)
        self.block_size = int(block_size)
        self._codec = SZXCompressor(block_size=block_size)

    def _estimate_curve(self, data: np.ndarray, ebs: np.ndarray, itemsize: int) -> np.ndarray:
        # min_blocks=32 keeps sampling noise low on the scaled-down datasets;
        # on paper-sized data the stride stays at the faithful 1-in-128.
        sample, _fraction = sample_flat_blocks(data, self.block_size, self.stride, min_blocks=32)
        sample32 = sample.astype(np.float32) if itemsize == 4 else sample
        out = np.empty(ebs.size)
        for i, eb in enumerate(ebs):
            res = self._codec.compress(sample32, float(eb))
            # Per-value compressed cost on the sample extrapolates to the
            # full array; exclude the fixed header from the per-value cost.
            per_value = (res.compressed_bytes - res._HEADER_BYTES) / sample.size
            est_bytes = per_value * data.size + res._HEADER_BYTES
            out[i] = (data.size * itemsize) / est_bytes
        return out
