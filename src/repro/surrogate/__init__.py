"""SECRE: surrogate-based compression-ratio estimation (Khan et al., HiPC'23).

Each estimator mimics one compressor with (a) data sampling matched to the
compressor's compression window and (b) a lightweight pipeline that skips the
expensive stages (Table 1 of the CAROL paper):

============  ===========  ==========================================
compressor    sampling     surrogate pipeline
============  ===========  ==========================================
SZx           block-wise   delta encoding on sampled blocks
ZFP           block-wise   full transform+embedded coding on samples
SZ3           point-wise   last-level spline interp, *no* Huffman/LZ
SPERR         large chunk  wavelet+SPECK on one chunk, *no* outliers/LZ
============  ===========  ==========================================

The skipped stages are exactly why SECRE is near-exact for SZx/ZFP but
systematically biased (up to tens of %) for SZ3/SPERR — the behaviour
CAROL's calibration corrects.
"""

from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.registry import available_surrogates, get_surrogate
from repro.surrogate.sperr_surrogate import SPERRSurrogate
from repro.surrogate.sz3_surrogate import SZ3Surrogate
from repro.surrogate.szx_surrogate import SZXSurrogate
from repro.surrogate.zfp_surrogate import ZFPSurrogate

__all__ = [
    "SurrogateEstimator",
    "SZXSurrogate",
    "ZFPSurrogate",
    "SZ3Surrogate",
    "SPERRSurrogate",
    "get_surrogate",
    "available_surrogates",
]
