"""SZ3 surrogate: point-wise sampling + last-level spline interpolation only.

Per Table 1 of the paper, SECRE's SZ3 surrogate samples one point every 5
along each dimension, performs the spline interpolation of the *last*
iteration only (the most compute-intensive one), and skips the Huffman
encoder. The compressed size is estimated from the Shannon entropy of the
resulting quantization codes.

The skipped stages are why this surrogate has the largest estimation error
of the four (paper: up to ~60%): real SZ3 pays Huffman/codebook overhead
above the entropy but then recovers bits in the LZ (zstd) pass, and the
earlier interpolation levels see different residual statistics than the last
one. The bias is systematic for a given dataset — exactly the structure
CAROL's calibration exploits.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.sz3 import _OFFSET, _RADIUS, _pass_subgrid, _predict
from repro.encoding.huffman import stream_entropy_bits
from repro.obs import span
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sampling import sample_points


class SZ3Surrogate(SurrogateEstimator):
    """Entropy-based size estimate from the last interpolation level."""

    compressor_name = "sz3"

    def __init__(self, stride: int = 5) -> None:
        if stride < 2:
            raise ValueError("stride must be >= 2")
        self.stride = int(stride)

    def _last_level_codes(self, sampled: np.ndarray, eb: float) -> np.ndarray:
        """Quantization codes of the final (stride-2) interpolation level.

        The sampled grid plays the role of the level's coarse grid; the
        surrogate predicts its odd points from even points, mirroring the
        real compressor's last and largest pass.
        """
        step = 2.0 * eb
        recon = sampled.astype(np.float64, copy=True)
        codes = []
        for axis in range(recon.ndim):
            sub = _pass_subgrid(recon, axis, 2, 1)
            if sub is None:
                continue
            mids, pred = _predict(sub, 1, 2)
            q = np.clip(np.rint((sub[mids] - pred) / step), -_RADIUS, _RADIUS)
            codes.append(q.astype(np.int64).ravel() + _OFFSET)
        if not codes:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(codes)

    def _estimate_curve(self, data: np.ndarray, ebs: np.ndarray, itemsize: int) -> np.ndarray:
        with span("surrogate.estimate", surrogate=self.compressor_name, n_ebs=int(ebs.size)):
            sampled, _fraction = sample_points(data, self.stride)
            out = np.empty(ebs.size)
            anchor_bits = 64.0 * data.size / (1 << (6 * data.ndim))  # anchor overhead
            for i, eb in enumerate(ebs):
                codes = self._last_level_codes(sampled, float(eb))
                bits_per_point = stream_entropy_bits(codes)
                total_bits = bits_per_point * data.size + anchor_bits + 8 * 64
                out[i] = (data.size * itemsize * 8.0) / max(total_bits, 1.0)
        return out
