"""Generic fallback surrogate: full compression on sampled data.

The paper's conclusion (Compressor Behavior 3): when no tailored surrogate
exists for a compressor, "full compression will be first performed on
sampled data, and then our proposed calibration method will be used to
reduce the estimation error. The key to an accurate estimation is that the
sampling method has to match the target compressor's compression window."

This estimator implements exactly that: it runs the *real* compressor on a
sample drawn with a window-matched strategy and extrapolates the per-value
cost. Any compressor registered via
:func:`repro.compressors.registry.register_compressor` gets ratio
estimation for free this way.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.registry import get_compressor
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sampling import sample_chunk, sample_flat_blocks, sample_points

#: window kind -> sampler producing ``(sample_array, fraction)``
_WINDOWS = ("block", "point", "chunk")


class SampledFullSurrogate(SurrogateEstimator):
    """Window-matched sampling + the real compressor, extrapolated.

    Parameters
    ----------
    compressor:
        Registry name of the target compressor.
    window:
        ``"block"`` (flat block sampling, delta/transform codecs),
        ``"point"`` (strided point sampling, prediction codecs), or
        ``"chunk"`` (one contiguous chunk, wavelet/large-window codecs).
    fraction:
        Approximate fraction of the data to compress (default 10%, the
        upper end of SECRE's 5-10% range).
    """

    def __init__(self, compressor: str, window: str = "chunk", fraction: float = 0.1) -> None:
        if window not in _WINDOWS:
            raise ValueError(f"window must be one of {_WINDOWS}")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.compressor_name = compressor
        self.window = window
        self.fraction = float(fraction)
        self._codec = get_compressor(compressor)

    def _sample(self, data: np.ndarray) -> np.ndarray:
        if self.window == "block":
            stride = max(int(round(1.0 / self.fraction)), 1)
            sample, _ = sample_flat_blocks(data, 128, stride)
            return sample
        if self.window == "point":
            stride = max(int(round((1.0 / self.fraction) ** (1.0 / data.ndim))), 1)
            sample, _ = sample_points(data, stride)
            return sample
        frac_axis = self.fraction ** (1.0 / data.ndim)
        sample, _ = sample_chunk(data, frac_axis)
        return sample

    def _estimate_curve(self, data: np.ndarray, ebs: np.ndarray, itemsize: int) -> np.ndarray:
        sample = self._sample(data)
        sample = sample.astype(np.float32) if itemsize == 4 else sample
        out = np.empty(ebs.size)
        for i, eb in enumerate(ebs):
            res = self._codec.compress(sample, float(eb))
            per_value = (res.compressed_bytes - res._HEADER_BYTES) / sample.size
            est_bytes = per_value * data.size + res._HEADER_BYTES
            out[i] = (data.size * itemsize) / est_bytes
        return out
