"""Registry of surrogate estimators by compressor name."""

from __future__ import annotations

from typing import Callable

from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sperr_surrogate import SPERRSurrogate
from repro.surrogate.sz3_surrogate import SZ3Surrogate
from repro.surrogate.szx_surrogate import SZXSurrogate
from repro.surrogate.zfp_surrogate import ZFPSurrogate


def _cuszp_surrogate() -> SurrogateEstimator:
    # No tailored SECRE design exists for cuSZp; use the paper's fallback
    # (Compressor Behavior 3): full compression on block-window samples.
    from repro.surrogate.sampled_full import SampledFullSurrogate

    return SampledFullSurrogate("cuszp", window="block", fraction=0.1)


_REGISTRY: dict[str, Callable[[], SurrogateEstimator]] = {
    "szx": SZXSurrogate,
    "zfp": ZFPSurrogate,
    "sz3": SZ3Surrogate,
    "sperr": SPERRSurrogate,
    "cuszp": _cuszp_surrogate,
}


def available_surrogates() -> list[str]:
    return list(_REGISTRY)


def get_surrogate(name: str, **kwargs) -> SurrogateEstimator:
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"no surrogate for {name!r}; available: {', '.join(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)


def register_surrogate(name: str, factory: Callable[[], SurrogateEstimator]) -> None:
    _REGISTRY[name.lower()] = factory
