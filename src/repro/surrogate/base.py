"""Common interface for surrogate compression-ratio estimators."""

from __future__ import annotations

import abc
import time

import numpy as np

from repro.utils.validation import as_float_array, check_error_bound, require_finite


class SurrogateEstimator(abc.ABC):
    """Fast estimator of a compressor's ratio-vs-error-bound function f(e).

    Estimators never materialize compressed output; they only predict the
    compressed size, which is what makes them orders of magnitude cheaper
    than the compressor they mimic. Ratios are reported against the *input*
    dtype's footprint, matching what the real compressor would report.
    """

    compressor_name: str = "abstract"

    def estimate_ratio(self, data: np.ndarray, error_bound: float) -> float:
        """Estimated compression ratio for one error bound."""
        ratios, _ = self.estimate_curve(data, [error_bound])
        return float(ratios[0])

    def estimate_curve(
        self, data: np.ndarray, error_bounds
    ) -> tuple[np.ndarray, float]:
        """Estimated f(e) over a grid of error bounds.

        Returns ``(ratios, elapsed_seconds)``. Subclasses share the sampling
        and transform work across the whole grid, so a 35-point curve costs
        little more than a single estimate.
        """
        arr = as_float_array(data)
        require_finite(arr)
        itemsize = arr.dtype.itemsize
        ebs = np.asarray(error_bounds, dtype=np.float64).ravel()
        if ebs.size == 0:
            raise ValueError("error_bounds must be non-empty")
        for eb in ebs:
            check_error_bound(eb)
        start = time.perf_counter()
        ratios = self._estimate_curve(arr.astype(np.float64, copy=False), ebs, itemsize)
        return np.asarray(ratios, dtype=np.float64), time.perf_counter() - start

    @abc.abstractmethod
    def _estimate_curve(
        self, data: np.ndarray, ebs: np.ndarray, itemsize: int
    ) -> np.ndarray:
        """Estimate ratios for validated float64 data at each error bound."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
