"""Data-sampling strategies matched to each compressor's window (Table 1)."""

from __future__ import annotations

import numpy as np


def sample_flat_blocks(
    data: np.ndarray, block_size: int, stride: int, min_blocks: int = 8
) -> tuple[np.ndarray, float]:
    """Block-wise sampling on the flattened array (SZx's window).

    Takes one ``block_size`` block every ``stride`` blocks; the stride is
    shrunk if the array is too small to yield ``min_blocks`` samples.
    Returns ``(sampled_values, fraction_sampled)``.
    """
    flat = data.ravel()
    nblocks = max(flat.size // block_size, 1)
    stride = max(min(stride, nblocks // min_blocks), 1)
    starts = np.arange(0, nblocks, stride) * block_size
    idx = starts[:, None] + np.arange(block_size)[None, :]
    idx = idx[idx[:, -1] < flat.size]
    if idx.size == 0:
        return flat.copy(), 1.0
    return flat[idx].ravel(), idx.size / flat.size


def sample_grid_blocks(
    data: np.ndarray, block_edge: int, stride: int, min_blocks: int = 8
) -> tuple[np.ndarray, float]:
    """Multidimensional block sampling (ZFP's window).

    Selects one ``block_edge^d`` block every ``stride`` blocks in flattened
    block order and returns them stacked along axis 0 as a 1-D-per-block
    layout reshaped to ``(nsampled, block_edge, ...)``.
    """
    d = data.ndim
    grid = tuple(max(s // block_edge, 1) for s in data.shape)
    nblocks = int(np.prod(grid))
    stride = max(min(stride, nblocks // min_blocks), 1)
    chosen = np.arange(0, nblocks, stride)
    coords = np.unravel_index(chosen, grid)
    blocks = np.empty((chosen.size,) + (block_edge,) * d, dtype=np.float64)
    for i in range(chosen.size):
        slicer = tuple(
            slice(int(c[i]) * block_edge, int(c[i]) * block_edge + block_edge)
            for c in coords
        )
        blk = data[slicer]
        if blk.shape != (block_edge,) * d:
            pad = [(0, block_edge - s) for s in blk.shape]
            blk = np.pad(blk, pad, mode="edge")
        blocks[i] = blk
    fraction = blocks.size / data.size
    return blocks, min(fraction, 1.0)


def sample_points(data: np.ndarray, stride: int) -> tuple[np.ndarray, float]:
    """Point-wise strided sampling (SZ3's window): one point every ``stride``
    along each axis, preserving dimensionality."""
    slicer = tuple(slice(0, None, stride) for _ in range(data.ndim))
    sampled = data[slicer]
    return np.ascontiguousarray(sampled), sampled.size / data.size


def sample_chunk(data: np.ndarray, fraction_per_axis: float = 0.5) -> tuple[np.ndarray, float]:
    """Contiguous center-chunk sampling (SPERR's large-chunk window).

    SPERR compresses independent large chunks, so its surrogate runs the real
    pipeline on one representative chunk. A centered chunk avoids boundary
    artefacts of simulation domains.
    """
    if not 0.0 < fraction_per_axis <= 1.0:
        raise ValueError("fraction_per_axis must be in (0, 1]")
    slicer = []
    for s in data.shape:
        ext = max(int(round(s * fraction_per_axis)), min(s, 8))
        start = (s - ext) // 2
        slicer.append(slice(start, start + ext))
    chunk = np.ascontiguousarray(data[tuple(slicer)])
    return chunk, chunk.size / data.size
