"""ZFP surrogate: multidimensional block sampling + full coding on samples.

ZFP compresses 4^d blocks independently; the surrogate stacks a strided
sample of blocks into one contiguous array whose 4-aligned partitioning
reproduces exactly the sampled blocks, runs the full transform + embedded
coder on it, and extrapolates. Near-exact (paper: 1.7% error).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.zfp import ZFPCompressor
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sampling import sample_grid_blocks


class ZFPSurrogate(SurrogateEstimator):
    """Samples one 4^d block every ``stride`` blocks."""

    compressor_name = "zfp"

    def __init__(self, stride: int = 32) -> None:
        self.stride = int(stride)
        self._codec = ZFPCompressor()

    def _estimate_curve(self, data: np.ndarray, ebs: np.ndarray, itemsize: int) -> np.ndarray:
        blocks, _fraction = sample_grid_blocks(data, 4, self.stride)
        # Stacking along axis 0 keeps every sampled block 4-aligned, so the
        # codec partitions the stack back into exactly the sampled blocks.
        stacked = blocks.reshape((-1,) + blocks.shape[2:])
        sample32 = stacked.astype(np.float32) if itemsize == 4 else stacked
        nsample = stacked.size
        out = np.empty(ebs.size)
        for i, eb in enumerate(ebs):
            res = self._codec.compress(sample32, float(eb))
            per_value = (res.compressed_bytes - res._HEADER_BYTES) / nsample
            est_bytes = per_value * data.size + res._HEADER_BYTES
            out[i] = (data.size * itemsize) / est_bytes
        return out
