"""SPERR surrogate: large-chunk sampling + wavelet/SPECK, no outliers/LZ.

Per Table 1, SECRE's SPERR surrogate selects one large chunk, runs the CDF
9/7 wavelet transform and SPECK encoding on it, but skips the outlier
(CSR) encoding and the zstd lossless pass. Skipping the lossless pass
overestimates the stream size while skipping outliers underestimates it;
the net bias depends on the dataset (paper: ~7-47% error) and is corrected
by CAROL's calibration.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.speck import SpeckCoder
from repro.encoding.bitstream import BitWriter
from repro.obs import span
from repro.surrogate.base import SurrogateEstimator
from repro.surrogate.sampling import sample_chunk
from repro.transforms.wavelet import cdf97_forward, max_levels


class SPERRSurrogate(SurrogateEstimator):
    """SPECK bit count on one wavelet-transformed chunk, extrapolated."""

    compressor_name = "sperr"

    def __init__(self, fraction_per_axis: float = 0.5, quant_factor: float = 0.5) -> None:
        self.fraction_per_axis = float(fraction_per_axis)
        self.quant_factor = float(quant_factor)

    def _estimate_curve(self, data: np.ndarray, ebs: np.ndarray, itemsize: int) -> np.ndarray:
        with span("surrogate.estimate", surrogate=self.compressor_name, n_ebs=int(ebs.size)):
            chunk, _fraction = sample_chunk(data, self.fraction_per_axis)
            levels = max_levels(chunk.shape)
            coefs = cdf97_forward(chunk, levels)
            absc = np.abs(coefs)
            negc = coefs < 0
            out = np.empty(ebs.size)
            coder = SpeckCoder()
            for i, eb in enumerate(ebs):
                qstep = self.quant_factor * float(eb)
                mag = np.floor(absc / qstep).astype(np.int64)
                writer = BitWriter()
                coder.encode(mag, negc, writer)
                bits_per_point = writer.bit_length / chunk.size
                total_bits = bits_per_point * data.size + 8 * 64
                out[i] = (data.size * itemsize * 8.0) / max(total_bits, 1.0)
        return out
