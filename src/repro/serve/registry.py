"""Model registry: names -> saved frameworks, lazily loaded, hot-reloadable.

A serving deployment references models by name, not by path: the
operator registers ``name -> model.npz`` once, the first request for a
name pays the load, and subsequent requests reuse the cached framework.
Overwriting the ``.npz`` (a retrain landing) is picked up automatically:
:meth:`ModelRegistry.get` re-checks the file's :func:`_file_signature`
and reloads when it changes, so a running service hot-swaps models
without restarting.

The signature is ``(mtime_ns, size, blake2b of head + tail bytes)``
rather than the mtime alone: on filesystems with coarse timestamp
granularity (or under same-second replace-then-replace sequences) a
new file can land with the old mtime, and an mtime-only check would
serve the stale model forever. Size and content hash close that hole;
hashing the head and tail (rather than the whole file) keeps the
per-request cost bounded for large models — for ``.npz`` archives the
tail covers the zip central directory and member CRCs, which change
whenever any member's bytes change.

Already-fitted in-memory frameworks can be registered too (:meth:`add`)
— convenient for tests and for embedding the service in the same process
that trained the model.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.obs import count
from repro.utils.serialization import load_framework

#: Bytes hashed from each end of the file for the change signature.
_SIG_BYTES = 65536


def _file_signature(path: Path) -> tuple[int, int, str]:
    """Cheap change-detection signature: ``(mtime_ns, size, digest)``.

    The digest is blake2b over the first and last ``_SIG_BYTES`` of the
    file (the whole file when it is small enough for the two windows to
    overlap).
    """
    st = path.stat()
    h = hashlib.blake2b(digest_size=8)
    with open(path, "rb") as fh:
        h.update(fh.read(_SIG_BYTES))
        if st.st_size > 2 * _SIG_BYTES:
            fh.seek(-_SIG_BYTES, os.SEEK_END)
            h.update(fh.read(_SIG_BYTES))
    return (st.st_mtime_ns, st.st_size, h.hexdigest())


@dataclass
class _Entry:
    path: Path | None
    signature: tuple[int, int, str] | None = None
    framework: object | None = None


class ModelRegistry:
    """Thread-safe name -> fitted-framework mapping with lazy (re)load."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}

    def register(self, name: str, path) -> None:
        """Map ``name`` to a saved framework file (loaded on first use)."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no saved framework at {path}")
        with self._lock:
            self._entries[name] = _Entry(path=path)

    def add(self, name: str, framework) -> None:
        """Register an already-fitted in-memory framework (never reloaded)."""
        with self._lock:
            self._entries[name] = _Entry(path=None, framework=framework)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str):
        """The fitted framework for ``name``; loads or hot-reloads as needed."""
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                raise KeyError(
                    f"unknown model {name!r}; registered: {sorted(self._entries)}"
                ) from None
            if entry.path is None:
                return entry.framework
            signature = _file_signature(entry.path)
            if entry.framework is None or signature != entry.signature:
                if entry.framework is not None:
                    count("serve.registry.reloads")
                count("serve.registry.loads")
                entry.framework = load_framework(entry.path)
                entry.signature = signature
            return entry.framework

    def reload(self, name: str):
        """Force a reload from disk (no-op for in-memory registrations)."""
        with self._lock:
            entry = self._entries[name]
            if entry.path is not None:
                count("serve.registry.loads")
                entry.framework = load_framework(entry.path)
                entry.signature = _file_signature(entry.path)
            return entry.framework
