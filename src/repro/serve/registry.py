"""Model registry: names -> saved frameworks, lazily loaded, hot-reloadable.

A serving deployment references models by name, not by path: the
operator registers ``name -> model.npz`` once, the first request for a
name pays the load, and subsequent requests reuse the cached framework.
Overwriting the ``.npz`` (a retrain landing) is picked up automatically:
:meth:`ModelRegistry.get` re-stats the file and reloads when its mtime
changes, so a running service hot-swaps models without restarting.

Already-fitted in-memory frameworks can be registered too (:meth:`add`)
— convenient for tests and for embedding the service in the same process
that trained the model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from repro.obs import count
from repro.utils.serialization import load_framework


@dataclass
class _Entry:
    path: Path | None
    mtime: float | None = None
    framework: object | None = None


class ModelRegistry:
    """Thread-safe name -> fitted-framework mapping with lazy (re)load."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}

    def register(self, name: str, path) -> None:
        """Map ``name`` to a saved framework file (loaded on first use)."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no saved framework at {path}")
        with self._lock:
            self._entries[name] = _Entry(path=path)

    def add(self, name: str, framework) -> None:
        """Register an already-fitted in-memory framework (never reloaded)."""
        with self._lock:
            self._entries[name] = _Entry(path=None, framework=framework)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str):
        """The fitted framework for ``name``; loads or hot-reloads as needed."""
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                raise KeyError(
                    f"unknown model {name!r}; registered: {sorted(self._entries)}"
                ) from None
            if entry.path is None:
                return entry.framework
            mtime = entry.path.stat().st_mtime
            if entry.framework is None or mtime != entry.mtime:
                if entry.framework is not None:
                    count("serve.registry.reloads")
                count("serve.registry.loads")
                entry.framework = load_framework(entry.path)
                entry.mtime = mtime
            return entry.framework

    def reload(self, name: str):
        """Force a reload from disk (no-op for in-memory registrations)."""
        with self._lock:
            entry = self._entries[name]
            if entry.path is not None:
                count("serve.registry.loads")
                entry.framework = load_framework(entry.path)
                entry.mtime = entry.path.stat().st_mtime
            return entry.framework
