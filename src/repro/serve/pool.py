"""Process-pool worker backend for the serving layer.

Fans CPU-bound serving work — multi-field feature extraction and
compression-verification — out over worker processes, with the failure
semantics a service needs and a bare ``ProcessPoolExecutor`` doesn't
give:

- **bounded queue** — at most ``max_pending`` tasks are in flight; a
  large batch is fed through in windows instead of being dumped on the
  executor, so memory stays bounded and the queue-depth gauge is honest;
- **per-task timeouts** — a stuck worker costs one timeout, not the
  whole batch;
- **graceful fallback** — when a worker dies (``BrokenProcessPool``) or
  a task times out, the task re-runs in-process, the broken executor is
  recycled, and the incident is counted (``<name>.fallbacks`` /
  ``<name>.timeouts``) instead of failing the request.

Tasks must be module-level callables with picklable arguments, same as
:mod:`repro.core.parallel_collection`. ``n_workers=0`` degrades to pure
in-process execution so callers keep a single code path.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.obs import count, set_gauge


@dataclass(frozen=True)
class PoolStats:
    """Immutable task-accounting snapshot for one :class:`WorkerPool`.

    :attr:`WorkerPool.stats` builds a fresh snapshot per access —
    the typed counterpart of the dict this layer used to hand out
    (:meth:`as_dict` keeps that shape for serialization)."""

    submitted: int = 0
    completed: int = 0
    fallbacks: int = 0
    timeouts: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
        }


class PoolTask:
    """Handle for one task submitted via :meth:`WorkerPool.submit`.

    :meth:`result` applies the pool's failure semantics at collection
    time — per-task timeout and in-process fallback on worker death —
    so a caller pipelining many submitted tasks (the store's streaming
    reader) gets exactly the degraded-not-failed behavior of
    :meth:`WorkerPool.map_ordered`, one task at a time. Exceptions
    raised *by the task itself* propagate unchanged, as everywhere else
    in the pool. The submitter is responsible for bounding how many
    tasks it holds in flight (``submit`` does not window like
    ``map_ordered`` — backpressure lives with the caller, who knows the
    real cost of each pending result).
    """

    __slots__ = ("_pool", "_fn", "_args", "_future", "_fallback")

    def __init__(self, pool: "WorkerPool", fn, args, future, *, fallback: bool = False) -> None:
        self._pool = pool
        self._fn = fn
        self._args = args
        self._future = future
        self._fallback = fallback

    def result(self, timeout: float | None = None):
        """The task's result, waiting if needed (``timeout`` overrides
        the pool's per-task default). Timeouts and worker death degrade
        to an in-process run, counted like :meth:`WorkerPool.map_ordered`
        fallbacks."""
        pool = self._pool
        if self._future is None:
            return pool._run_inline(self._fn, self._args, fallback=self._fallback)
        task_timeout = pool.timeout if timeout is None else timeout
        try:
            result = self._future.result(timeout=task_timeout)
            pool._completed += 1
            return result
        except FutureTimeout:
            pool._timeouts += 1
            count(f"{pool.name}.timeouts")
            self._future.cancel()
            return pool._run_inline(self._fn, self._args, fallback=True)
        except BrokenProcessPool:
            pool._recycle_executor()
            return pool._run_inline(self._fn, self._args, fallback=True)

    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking.
        Deferred in-process tasks (``n_workers=0`` or submit-time
        fallback) are always ready — they run at collection time."""
        return self._future is None or self._future.done()

    def cancel(self) -> None:
        """Best-effort cancellation of a task whose result is no longer
        wanted (a closed stream); a task already running just runs."""
        if self._future is not None:
            self._future.cancel()


class WorkerPool:
    """Bounded, timeout-aware process pool with in-process fallback."""

    def __init__(
        self,
        n_workers: int = 2,
        *,
        max_pending: int = 32,
        timeout: float | None = 30.0,
        name: str = "serve.pool",
    ) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.n_workers = int(n_workers)
        self.max_pending = int(max_pending)
        self.timeout = timeout
        self.name = name
        self._submitted = 0
        self._completed = 0
        self._fallbacks = 0
        self._timeouts = 0
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None

    @property
    def stats(self) -> PoolStats:
        """A point-in-time :class:`PoolStats` snapshot (always on)."""
        return PoolStats(
            submitted=self._submitted,
            completed=self._completed,
            fallbacks=self._fallbacks,
            timeouts=self._timeouts,
        )

    # -- executor lifecycle ----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            return self._executor

    def _recycle_executor(self) -> None:
        """Drop a broken executor; the next task lazily builds a fresh one."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- execution -------------------------------------------------------------

    def _run_inline(self, fn, args, *, fallback: bool) -> object:
        if fallback:
            self._fallbacks += 1
            count(f"{self.name}.fallbacks")
        result = fn(*args)
        self._completed += 1
        return result

    def run_many(self, fn, tasks: list[tuple]) -> list:
        """Deprecated alias of :meth:`map_ordered` (the historical name).

        Kept as a warn-and-forward shim so existing imports keep working;
        new code should call :meth:`map_ordered`.
        """
        warnings.warn(
            "WorkerPool.run_many is deprecated; use WorkerPool.map_ordered",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.map_ordered(fn, tasks)

    def map_ordered(self, fn, tasks, *, timeout: float | None = None) -> list:
        """Run ``fn(*task)`` for every task, preserving order.

        Worker death and timeouts degrade the affected tasks to in-process
        execution; exceptions raised *by the task itself* propagate
        unchanged (they would fail in-process too, and hiding them would
        turn bugs into silent fallbacks). ``timeout`` overrides the pool's
        per-task default for this call. Results are returned in task order
        regardless of completion order — the guarantee the store's wave
        scheduler (and the catalog's decode stage) rely on for
        deterministic output.
        """
        tasks = [tuple(args) for args in tasks]
        task_timeout = self.timeout if timeout is None else timeout
        self._submitted += len(tasks)
        if self.n_workers == 0 or len(tasks) <= 1:
            return [self._run_inline(fn, args, fallback=False) for args in tasks]

        results: list = [None] * len(tasks)
        for start in range(0, len(tasks), self.max_pending):
            window = list(enumerate(tasks))[start : start + self.max_pending]
            set_gauge(f"{self.name}.queue_depth", len(window))
            try:
                executor = self._ensure_executor()
                futures = [(i, executor.submit(fn, *args)) for i, args in window]
            except BrokenProcessPool:
                self._recycle_executor()
                for i, args in window:
                    results[i] = self._run_inline(fn, args, fallback=True)
                continue
            for i, future in futures:
                try:
                    results[i] = future.result(timeout=task_timeout)
                    self._completed += 1
                except FutureTimeout:
                    self._timeouts += 1
                    count(f"{self.name}.timeouts")
                    future.cancel()
                    results[i] = self._run_inline(fn, tasks[i], fallback=True)
                except BrokenProcessPool:
                    self._recycle_executor()
                    results[i] = self._run_inline(fn, tasks[i], fallback=True)
            set_gauge(f"{self.name}.queue_depth", 0)
        return results

    def run(self, fn, *args) -> object:
        """Run one task (same semantics as :meth:`map_ordered`)."""
        return self.map_ordered(fn, [tuple(args)])[0]

    def submit(self, fn, *args) -> PoolTask:
        """Start one task without waiting; returns a :class:`PoolTask`.

        The asynchronous leg of the pool API: ``map_ordered`` blocks
        until a whole batch is done, ``submit`` lets a producer overlap
        later tasks with consumption of earlier results (the streaming
        read pipeline). With ``n_workers=0`` the task is deferred and
        runs in-process at :meth:`PoolTask.result` time, so callers keep
        one code path. The caller bounds its own in-flight set.
        """
        self._submitted += 1
        if self.n_workers == 0:
            return PoolTask(self, fn, args, None)
        try:
            future = self._ensure_executor().submit(fn, *args)
        except BrokenProcessPool:
            self._recycle_executor()
            return PoolTask(self, fn, args, None, fallback=True)
        return PoolTask(self, fn, args, future)
