"""repro.serve — the serving layer: batched, cached, multi-worker inference.

Turns a fitted framework into a service shaped for the paper's
production use cases (repeated fixed-ratio requests over recurring
fields):

- :class:`PredictionService` / :class:`ServiceOptions` — the front-end:
  ``predict``, ``predict_batch`` (stacked inference, bitwise-identical
  to sequential calls), ``predict_targets``, and ``verify=True``
  compression-verification;
- :class:`LRUCache` (+ :func:`digest_array`) — content-addressed feature
  cache with always-on hit/miss/eviction stats, mirrored into
  :mod:`repro.obs` metrics;
- :class:`WorkerPool` — bounded process-pool backend with per-task
  timeouts and graceful in-process fallback;
- :class:`ModelRegistry` — names -> saved ``.npz`` frameworks, lazily
  loaded and hot-reloaded on file change.

The blessed import surface is :mod:`repro.api` (``Service``,
``ServiceOptions``); this package is the implementation.
"""

from repro.serve.cache import CacheStats, LRUCache, default_cost, digest_array
from repro.serve.pool import PoolStats, WorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    PredictionService,
    ServiceOptions,
    ServiceStats,
    VerifiedPrediction,
)

__all__ = [
    "PredictionService",
    "ServiceOptions",
    "ServiceStats",
    "VerifiedPrediction",
    "LRUCache",
    "CacheStats",
    "default_cost",
    "digest_array",
    "WorkerPool",
    "PoolStats",
    "ModelRegistry",
]
