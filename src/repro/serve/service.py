"""PredictionService: batched, cached, multi-worker serving front-end.

Wraps any fitted :class:`~repro.core.framework.RatioControlledFramework`
and turns the one-shot ``predict_error_bound`` call into a serving path
shaped for repeated traffic:

- **content-addressed feature cache** — features depend only on the
  input bytes, so they are cached under :func:`~repro.serve.cache.digest_array`
  and repeated requests against the same field skip extraction entirely;
- **request batching** — :meth:`PredictionService.predict_batch` extracts
  features once per *distinct* field in the batch and runs model
  inference on one stacked design matrix; error bounds are
  bitwise-identical to sequential :meth:`~PredictionService.predict`
  calls (see :meth:`ErrorBoundModel.predict_error_bound_batch`);
- **worker fan-out** — with ``workers > 0``, uncached multi-field
  extraction and compression-verification (``verify=True``) run on a
  :class:`~repro.serve.pool.WorkerPool` with bounded queues, per-task
  timeouts, and in-process fallback when workers die.

The service resolves its framework through a
:class:`~repro.serve.registry.ModelRegistry` when built with
:meth:`PredictionService.from_registry`, inheriting the registry's
hot-reload behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

import numpy as np

from repro.compressors.registry import get_compressor
from repro.control.controller import ControlledPrediction
from repro.control.policy import ControlOptions, ControlStats
from repro.core.carol import CarolFramework
from repro.core.framework import BatchPrediction, Prediction
from repro.core.fxrz import FxrzFramework
from repro.features.parallel import extract_features_parallel
from repro.features.serial import extract_features_serial
from repro.obs import count, observe, timed_span
from repro.serve.cache import CacheStats, LRUCache, digest_array
from repro.serve.pool import PoolStats, WorkerPool
from repro.serve.registry import ModelRegistry
from repro.utils.validation import as_float_array


@dataclass(frozen=True, kw_only=True)
class ServiceOptions:
    """Frozen, hashable serving configuration (counterpart of
    :class:`repro.api.FrameworkOptions` for the serving layer).

    ``workers=0`` keeps everything in-process; ``cache_entries=0``
    disables the feature cache. ``control`` attaches a
    :mod:`repro.control` tier policy and enables :meth:`PredictionService.govern`
    (plain ``predict``/``predict_batch`` are unaffected).
    """

    cache_entries: int = 256
    workers: int = 0
    max_pending: int = 32
    timeout_seconds: float = 30.0
    control: ControlOptions | None = None

    @classmethod
    def from_service(cls, service: "PredictionService") -> "ServiceOptions":
        """Recover the options a live service was built with."""
        return service.options

    def to_kwargs(self) -> dict:
        """The constructor kwargs that rebuild these options
        (``ServiceOptions(**opts.to_kwargs())`` round-trips)."""
        return {f.name: getattr(self, f.name) for f in dc_fields(self)}

    def build(self, framework) -> "PredictionService":
        """Construct a :class:`PredictionService` over a fitted framework."""
        return PredictionService(framework, options=self)


@dataclass(frozen=True)
class ServiceStats:
    """Typed, immutable serving counters (always on, unlike obs metrics).

    Replaces the string-keyed dict :meth:`PredictionService.stats` used
    to return: consumers read ``stats.cache.hit_rate`` instead of
    ``stats["cache"]["hit_rate"]``, and a snapshot taken before a run
    can be compared against one taken after. :meth:`as_dict` preserves
    the historical dict shape for serialization and logging.
    """

    requests: int
    batches: int
    cache: CacheStats
    pool: PoolStats
    control: ControlStats | None = None

    def as_dict(self) -> dict:
        d = {
            "requests": self.requests,
            "batches": self.batches,
            "cache": self.cache.as_dict(),
            "pool": self.pool.as_dict(),
        }
        if self.control is not None:
            d["control"] = self.control.as_dict()
        return d


@dataclass
class VerifiedPrediction:
    """A prediction plus the measured outcome of actually compressing."""

    prediction: Prediction
    achieved_ratio: float

    @property
    def ratio_error(self) -> float:
        """Relative deviation of achieved from requested ratio."""
        t = self.prediction.target_ratio
        return abs(self.achieved_ratio - t) / t if t else float("inf")


def _extract_task(kind: str, stride: int | None, data: np.ndarray) -> np.ndarray:
    """Worker-side feature extraction (module-level for pickling)."""
    if kind == "fxrz":
        return extract_features_serial(data, stride=stride)[0]
    return extract_features_parallel(data)[0]


def worker_extract_spec(framework) -> tuple[str, int | None] | None:
    """Picklable extractor description for ``_extract_task``, or None if
    only the framework instance itself can extract (unknown subclass —
    callers should stay in-process). Shared by the service's batched
    prediction path and the store's wave packer."""
    if type(framework) is FxrzFramework:
        return ("fxrz", framework.feature_stride)
    if type(framework) is CarolFramework:
        return ("carol", None)
    return None


def _verify_task(compressor: str, data: np.ndarray, error_bound: float) -> float:
    """Worker-side compression-verification: the achieved ratio."""
    return float(get_compressor(compressor).compression_ratio(data, error_bound))


class PredictionService:
    """Serve ``(field, target_ratio)`` queries over one fitted framework."""

    def __init__(self, framework=None, *, options: ServiceOptions | None = None) -> None:
        if framework is not None and framework.model.forest is None:
            raise ValueError("framework is not fitted")
        self.options = options or ServiceOptions()
        self._framework = framework
        self._registry: ModelRegistry | None = None
        self._model_name: str | None = None
        self.cache = LRUCache(self.options.cache_entries, name="serve.cache")
        self.pool = WorkerPool(
            self.options.workers,
            max_pending=self.options.max_pending,
            timeout=self.options.timeout_seconds,
            name="serve.pool",
        )
        self.n_requests = 0
        self.n_batches = 0
        self.controller = (
            self.options.control.build(self)
            if self.options.control is not None
            else None
        )

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry,
        name: str,
        *,
        options: ServiceOptions | None = None,
    ) -> "PredictionService":
        """A service that resolves ``name`` through ``registry`` per call,
        inheriting the registry's lazy-load + hot-reload behaviour."""
        resolved = registry.get(name)  # fail fast on unknown names
        if resolved.model.forest is None:
            raise ValueError(f"registered framework {name!r} is not fitted")
        service = cls(options=options)
        service._registry = registry
        service._model_name = name
        return service

    @property
    def framework(self):
        """The framework answering requests (re-resolved when registry-backed)."""
        if self._registry is not None:
            return self._registry.get(self._model_name)
        return self._framework

    # -- request normalization -------------------------------------------------

    @staticmethod
    def _as_array(data) -> np.ndarray:
        if hasattr(data, "data") and isinstance(data.data, np.ndarray):
            data = data.data  # a repro.data.fields.Field
        return as_float_array(data)

    def _worker_extract_spec(self, framework) -> tuple[str, int | None] | None:
        """See :func:`worker_extract_spec` (kept as a method for callers
        that resolve it through the service)."""
        return worker_extract_spec(framework)

    # -- features --------------------------------------------------------------

    def _features_for(self, framework, arr: np.ndarray) -> np.ndarray:
        digest = digest_array(arr)
        feats = self.cache.get(digest)
        if feats is None:
            feats = framework.extract_features(arr)
            self.cache.put(digest, feats)
        return feats

    def _batch_features(
        self, framework, arrays: list[np.ndarray], digests: list[str]
    ) -> dict[str, np.ndarray]:
        """Features per distinct digest, extracting each missing field once."""
        by_digest: dict[str, np.ndarray] = {}
        missing: list[tuple[str, np.ndarray]] = []
        for arr, digest in zip(arrays, digests):
            if digest in by_digest:
                continue
            feats = self.cache.get(digest)
            if feats is None:
                missing.append((digest, arr))
                by_digest[digest] = None  # placeholder, filled below
            else:
                by_digest[digest] = feats
        if not missing:
            return by_digest
        spec = self._worker_extract_spec(framework)
        if self.options.workers > 0 and len(missing) > 1 and spec is not None:
            kind, stride = spec
            rows = self.pool.map_ordered(
                _extract_task, [(kind, stride, arr) for _, arr in missing]
            )
        else:
            rows = list(framework.extract_features_many([arr for _, arr in missing]))
        for (digest, _), feats in zip(missing, rows):
            feats = np.asarray(feats, dtype=np.float64)
            by_digest[digest] = feats
            self.cache.put(digest, feats)
        return by_digest

    # -- serving ---------------------------------------------------------------

    def predict(self, data, target_ratio: float, *, safety: float = 0.0) -> Prediction:
        """One request: the framework's prediction, through the feature cache."""
        framework = self.framework
        arr = self._as_array(data)
        self.n_requests += 1
        count("serve.requests")
        feats = self._features_for(framework, arr)
        return framework.predict_error_bound(
            arr, target_ratio, safety=safety, features=feats
        )

    def predict_batch(
        self, requests, *, safety: float = 0.0, verify: bool = False
    ) -> list[Prediction] | list[VerifiedPrediction]:
        """Serve ``[(field, target_ratio), ...]`` as one batch.

        Feature extraction runs once per distinct field (cache-aware,
        worker fan-out when enabled) and model inference runs on one
        stacked feature matrix. With ``verify=True`` every prediction is
        checked by actually compressing (fanned across workers) and
        returned as :class:`VerifiedPrediction`.
        """
        framework = self.framework
        pairs = [(self._as_array(d), float(r)) for d, r in requests]
        self.n_requests += len(pairs)
        self.n_batches += 1
        count("serve.requests", len(pairs))
        count("serve.batches")
        observe("serve.batch.size", len(pairs))
        if not pairs:
            return []
        with timed_span("serve.predict_batch", n_requests=len(pairs)):
            digests = [digest_array(a) for a, _ in pairs]
            by_digest = self._batch_features(framework, [a for a, _ in pairs], digests)
            F = np.stack([by_digest[d] for d in digests])
            ratios = np.array([r for _, r in pairs], dtype=np.float64)
            ebs, stds = framework.model.predict_error_bound_batch_with_std(
                F, ratios, safety=safety
            )
            preds = [
                Prediction(float(eb), float(r), F[i], 0.0, 0.0, std=float(s))
                for i, (eb, r, s) in enumerate(zip(ebs, ratios, stds))
            ]
            if not verify:
                return preds
            tasks = [
                (framework.compressor_name, arr, pred.error_bound)
                for (arr, _), pred in zip(pairs, preds)
            ]
            achieved = self.pool.map_ordered(_verify_task, tasks)
        return [
            VerifiedPrediction(prediction=p, achieved_ratio=float(a))
            for p, a in zip(preds, achieved)
        ]

    def predict_targets(
        self, data, target_ratios, *, safety: float = 0.0
    ) -> BatchPrediction:
        """Many targets on one field — the framework batch call, cached."""
        framework = self.framework
        arr = self._as_array(data)
        ratios = np.asarray(target_ratios, dtype=np.float64).ravel()
        self.n_requests += int(ratios.size)
        count("serve.requests", int(ratios.size))
        feats = self._features_for(framework, arr)
        return framework.predict_error_bound_batch(
            arr, ratios, safety=safety, features=feats
        )

    def govern(
        self, data, target_ratio: float, *, safety: float = 0.0
    ) -> ControlledPrediction:
        """One *governed* request: predict, escalate to refinement if the
        model's spread crosses the policy's ``t2_std``.

        Requires ``ServiceOptions.control``. The decision is stateless
        across requests (no shared drift or risk state), so governed
        answers are bitwise-identical however traffic is ordered or
        batched; escalated requests spend real compressions, bounded by
        ``refine_compressions`` per request.
        """
        if self.controller is None:
            raise RuntimeError(
                "service has no control policy; build it with "
                "ServiceOptions(control=ControlOptions(...))"
            )
        return self.controller.govern(data, target_ratio, safety=safety)

    # -- lifecycle / introspection ---------------------------------------------

    def stats(self) -> ServiceStats:
        """A :class:`ServiceStats` snapshot of the cumulative serving
        counters (``stats().as_dict()`` recovers the pre-typed dict)."""
        return ServiceStats(
            requests=self.n_requests,
            batches=self.n_batches,
            cache=self.cache.stats,
            pool=self.pool.stats,
            control=self.controller.stats() if self.controller else None,
        )

    def close(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
