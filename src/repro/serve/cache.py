"""Content-addressed LRU cache for the serving layer.

The expensive part of a serving request is feature extraction, and the
features depend only on the *bytes* of the input field. So the cache key
is a content digest (:func:`digest_array`) — two requests carrying equal
arrays share one entry no matter where the arrays came from, which is
what makes repeated fixed-ratio requests over the same fields (the FRaZ
serving scenario) effectively free after the first hit.

:class:`LRUCache` bounds its contents two ways, independently usable:

- **entry count** (``max_entries``, the original mode) — right for the
  feature cache, whose entries are uniform 5-vectors;
- **total cost** (``max_cost`` plus a ``cost`` function, typically bytes)
  — right for the store catalog's decompressed-chunk cache, whose
  entries vary by orders of magnitude in size. Eviction is still
  least-recently-used; it just runs until the *cost* fits the budget,
  and an entry whose own cost exceeds the whole budget is never
  admitted (it would evict everything and still not fit).

All operations take an internal lock, so one cache can be shared by
concurrent readers. The cache keeps its own always-on
:class:`CacheStats` (the serving layer reports hit rates without
observability enabled) and mirrors every event into the
:mod:`repro.obs` metrics registry (``<name>.hits`` / ``<name>.misses`` /
``<name>.evictions`` counters plus ``<name>.size`` — and, in cost mode,
``<name>.cost`` — gauges) whenever tracing is on.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs import count, set_gauge

_MISSING = object()


def digest_array(data: np.ndarray) -> str:
    """Stable content digest of an array (bytes + dtype + shape).

    blake2b over the raw buffer: equal arrays hash equal, and a single
    changed element changes the digest. Non-contiguous inputs are
    compacted first so logically-equal views agree.
    """
    arr = np.ascontiguousarray(data)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def default_cost(value) -> float:
    """Cost of one cache entry in bytes: ``nbytes`` for arrays, ``len``
    for byte strings/sequences, 1 for anything unsized."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return float(nbytes)
    try:
        return float(len(value))
    except TypeError:
        return 1.0


@dataclass(frozen=True)
class CacheStats:
    """Immutable hit/miss/eviction snapshot for one cache.

    :attr:`LRUCache.stats` builds a fresh snapshot per access, so two
    reads bracket an interval and each is safe to hold, hash, or compare
    — the typed counterpart of the dict this layer used to hand out
    (:meth:`as_dict` keeps that shape for serialization)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Thread-safe least-recently-used mapping, bounded by entry count
    and/or total cost.

    ``max_entries=None`` lifts the entry-count bound (use with
    ``max_cost``); ``max_entries=0`` or ``max_cost=0`` disables caching
    entirely (every get misses, puts are dropped) so one code path
    serves cached and uncached configurations. ``cost`` maps a value to
    its charge against ``max_cost`` (default: :func:`default_cost`,
    i.e. bytes).
    """

    def __init__(
        self,
        max_entries: int | None = 256,
        name: str = "serve.cache",
        *,
        max_cost: float | None = None,
        cost=None,
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0 (or None for unbounded)")
        if max_cost is not None and max_cost < 0:
            raise ValueError("max_cost must be >= 0 (or None for unbounded)")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_cost = None if max_cost is None else float(max_cost)
        self.name = name
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.total_cost = 0.0
        self._cost = cost if cost is not None else default_cost
        self._lock = threading.Lock()
        # key -> (value, cost); cost is 0.0 when no cost bound is set
        self._entries: OrderedDict = OrderedDict()

    @property
    def stats(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` snapshot (always on)."""
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses, evictions=self._evictions
            )

    @property
    def disabled(self) -> bool:
        """True when either bound is zero — puts are dropped entirely."""
        return self.max_entries == 0 or self.max_cost == 0

    def admits(self, value) -> bool:
        """Whether :meth:`put` would store ``value``: ``False`` when the
        cache is disabled or the value alone exceeds the cost budget.
        Both bounds are fixed at construction, so the answer cannot go
        stale between this check and the put — callers can safely apply
        irreversible pre-insertion effects (e.g. freezing an array) only
        when admission is certain."""
        if self.disabled:
            return False
        if self.max_cost is not None and self._cost(value) > self.max_cost:
            return False
        return True

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                count(f"{self.name}.misses")
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            count(f"{self.name}.hits")
            return entry[0]

    def put(self, key, value) -> bool:
        """Insert/refresh an entry, evicting the least recent past either
        bound. In cost mode an entry costing more than the whole budget
        is not admitted. Returns whether the entry was stored — ``False``
        when the cache is disabled or the entry alone exceeds the budget
        — so callers can tie side effects (e.g. freezing an array) to
        actual admission."""
        if self.disabled:
            return False
        with self._lock:
            cost = self._cost(value) if self.max_cost is not None else 0.0
            if self.max_cost is not None and cost > self.max_cost:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_cost -= old[1]
            self._entries[key] = (value, cost)
            self.total_cost += cost
            while self._entries and (
                (self.max_entries is not None and len(self._entries) > self.max_entries)
                or (self.max_cost is not None and self.total_cost > self.max_cost)
            ):
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self.total_cost -= evicted_cost
                self._evictions += 1
                count(f"{self.name}.evictions")
            set_gauge(f"{self.name}.size", len(self._entries))
            if self.max_cost is not None:
                set_gauge(f"{self.name}.cost", self.total_cost)
            return True

    def evict_scope(self, scope) -> int:
        """Drop every entry whose key is a tuple starting with ``scope``
        (the ``(scope, ...)`` convention of the store chunk cache).

        This is *invalidation*, not capacity pressure: the removals are
        counted under ``<name>.invalidations`` rather than in
        :attr:`CacheStats.evictions`. Returns the number removed."""
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == scope
            ]
            for key in doomed:
                _, cost = self._entries.pop(key)
                self.total_cost -= cost
            if doomed:
                count(f"{self.name}.invalidations", len(doomed))
                set_gauge(f"{self.name}.size", len(self._entries))
                if self.max_cost is not None:
                    set_gauge(f"{self.name}.cost", self.total_cost)
            return len(doomed)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_cost = 0.0
            set_gauge(f"{self.name}.size", 0)
            if self.max_cost is not None:
                set_gauge(f"{self.name}.cost", 0)
