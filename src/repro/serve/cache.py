"""Content-addressed LRU cache for the serving layer.

The expensive part of a serving request is feature extraction, and the
features depend only on the *bytes* of the input field. So the cache key
is a content digest (:func:`digest_array`) — two requests carrying equal
arrays share one entry no matter where the arrays came from, which is
what makes repeated fixed-ratio requests over the same fields (the FRaZ
serving scenario) effectively free after the first hit.

The cache keeps its own always-on :class:`CacheStats` (the serving layer
reports hit rates without observability enabled) and mirrors every event
into the :mod:`repro.obs` metrics registry (``<name>.hits`` /
``<name>.misses`` / ``<name>.evictions`` counters plus a ``<name>.size``
gauge) whenever tracing is on.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs import count, set_gauge

_MISSING = object()


def digest_array(data: np.ndarray) -> str:
    """Stable content digest of an array (bytes + dtype + shape).

    blake2b over the raw buffer: equal arrays hash equal, and a single
    changed element changes the digest. Non-contiguous inputs are
    compacted first so logically-equal views agree.
    """
    arr = np.ascontiguousarray(data)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counts for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Thread-safe least-recently-used mapping with bounded entry count.

    ``max_entries=0`` disables caching (every get misses, puts are
    dropped) so one code path serves cached and uncached configurations.
    """

    def __init__(self, max_entries: int = 256, name: str = "serve.cache") -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = int(max_entries)
        self.name = name
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                count(f"{self.name}.misses")
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            count(f"{self.name}.hits")
            return value

    def put(self, key, value) -> None:
        """Insert/refresh an entry, evicting the least recent past capacity."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                count(f"{self.name}.evictions")
            set_gauge(f"{self.name}.size", len(self._entries))

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            set_gauge(f"{self.name}.size", 0)
