"""The five FXRZ compressibility features (paper Eqs. (5)-(8)).

*Mean value* and *value range* capture a dataset's amplitude and spread;
*MND*, *MLD* and *MSD* capture local/spatial smoothness — the quantities
prediction-based compressors exploit. All three smoothness features are
averaged absolute deviations of a point from a neighbour-based prediction.
"""

from __future__ import annotations

import numpy as np

from repro.transforms.lorenzo import lorenzo_predict
from repro.transforms.spline import spline_predict_axis

FEATURE_NAMES = ("mean", "range", "mnd", "mld", "msd")


def mean_neighbor_difference(data: np.ndarray) -> float:
    """Eq. (5): mean |d - average of the 2*ndim axis neighbours|.

    Boundary points use their available neighbours (the serial CPU
    convention; the parallel extractor excludes the surface instead).
    """
    data = np.asarray(data, dtype=np.float64)
    total = np.zeros_like(data)
    count = np.zeros_like(data)
    for axis in range(data.ndim):
        moved = np.moveaxis(data, axis, 0)
        t = np.moveaxis(total, axis, 0)
        c = np.moveaxis(count, axis, 0)
        t[1:] += moved[:-1]
        c[1:] += 1.0
        t[:-1] += moved[1:]
        c[:-1] += 1.0
    return float(np.abs(data - total / np.maximum(count, 1.0)).mean())


def mean_lorenzo_difference(data: np.ndarray) -> float:
    """Eq. (6): mean |d - Lorenzo prediction| over interior points.

    The first slice along each axis has no backward neighbours (the
    predictor would see zeros), so it is excluded — otherwise a constant
    field would report a spurious nonzero Lorenzo difference.
    """
    data = np.asarray(data, dtype=np.float64)
    res = np.abs(data - lorenzo_predict(data))
    interior = tuple(slice(1, None) if s > 1 else slice(None) for s in data.shape)
    sub = res[interior]
    return float(sub.mean()) if sub.size else float(res.mean())


def mean_spline_difference(data: np.ndarray) -> float:
    """Eqs. (7)-(8): mean over points of sum over axes |d - spline(d)|."""
    data = np.asarray(data, dtype=np.float64)
    acc = np.zeros_like(data)
    for axis in range(data.ndim):
        acc += np.abs(data - spline_predict_axis(data, axis))
    return float(acc.mean())


def feature_vector(data: np.ndarray) -> np.ndarray:
    """All five features as ``[mean, range, MND, MLD, MSD]``."""
    data = np.asarray(data, dtype=np.float64)
    return np.array(
        [
            float(data.mean()),
            float(data.max() - data.min()),
            mean_neighbor_difference(data),
            mean_lorenzo_difference(data),
            mean_spline_difference(data),
        ]
    )
