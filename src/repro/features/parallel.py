"""CAROL's parallel (GPU-kernel-style) feature extraction.

Implements the three algorithmic choices of Section 5.4, which are what the
paper contributes (the SIMT mapping is simulated — see DESIGN.md):

1. *surface exclusion* — no feature contributions from points on the block
   surface, removing boundary conditionals (GPU branch divergence);
2. *block-wise sampling* — D-dimensional blocks of 32 elements per
   dimension, one block kept every 4, so memory reads are contiguous
   (coalesced) instead of FXRZ's scattered point samples;
3. *fused single pass* — all five features accumulate over the stacked
   sampled blocks in a handful of batched array operations (the
   shared-memory accumulation of the kernel).

Vectorized NumPy over the block batch is this platform's analogue of the
CUDA kernel; the measured speedup over the serial extractor comes from the
same locality properties the paper exploits.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.obs import timed_span
from repro.transforms.spline import spline_predict_axis
from repro.utils.validation import as_float_array

BLOCK_EDGE = 32
BLOCK_STRIDE = 4  # keep 1 block every 4 per dimension


def _sample_blocks(arr: np.ndarray, edge: int, stride: int) -> np.ndarray:
    """Stack of blocks, one every ``stride`` per axis, shape (nb, edge, ...).

    Blocks are gathered with contiguous slices. Arrays smaller than one
    block yield a single clipped block.
    """
    d = arr.ndim
    counts = [max(s // edge, 1) for s in arr.shape]
    keep = [np.arange(0, c, stride) for c in counts]
    mesh = np.meshgrid(*keep, indexing="ij")
    coords = np.stack([m.ravel() for m in mesh], axis=1)
    eff = min(edge, *arr.shape)
    blocks = np.empty((coords.shape[0],) + (eff,) * d, dtype=np.float64)
    for i, c in enumerate(coords):
        slicer = tuple(
            slice(min(int(ci) * edge, arr.shape[a] - eff),
                  min(int(ci) * edge, arr.shape[a] - eff) + eff)
            for a, ci in enumerate(c)
        )
        blocks[i] = arr[slicer]
    return blocks


def _batched_lorenzo(blocks: np.ndarray) -> np.ndarray:
    """Lorenzo prediction within each block (batch along axis 0)."""
    d = blocks.ndim - 1
    padded = np.zeros((blocks.shape[0],) + tuple(s + 1 for s in blocks.shape[1:]))
    padded[(slice(None),) + tuple(slice(1, None) for _ in range(d))] = blocks
    pred = np.zeros_like(blocks)
    for offsets in itertools.product((0, 1), repeat=d):
        k = sum(offsets)
        if k == 0:
            continue
        view = padded[
            (slice(None),)
            + tuple(
                slice(1 - o, padded.shape[i + 1] - o) for i, o in enumerate(offsets)
            )
        ]
        if k % 2:
            pred += view
        else:
            pred -= view
    return pred


def _parallel_features(arr: np.ndarray, block_edge: int, block_stride: int) -> np.ndarray:
    blocks = _sample_blocks(arr, block_edge, block_stride)
    d = arr.ndim
    interior = (slice(None),) + (slice(1, -1),) * d
    if any(s <= 2 for s in blocks.shape[1:]):
        interior = (slice(None),) * (d + 1)

    mean = float(blocks.mean())
    vrange = float(blocks.max() - blocks.min())

    # MND: average of the 2d axis neighbours (interior points have all 2d).
    neigh = np.zeros_like(blocks)
    for axis in range(1, d + 1):
        moved = np.moveaxis(blocks, axis, 1)
        acc = np.moveaxis(neigh, axis, 1)
        acc[:, 1:] += moved[:, :-1]
        acc[:, :-1] += moved[:, 1:]
    mnd = float(np.abs(blocks - neigh / (2.0 * d))[interior].mean())

    # MLD: batched Lorenzo prediction.
    mld = float(np.abs(blocks - _batched_lorenzo(blocks))[interior].mean())

    # MSD: per-axis spline deviations, batched over the block axis.
    msd_arr = np.zeros_like(blocks)
    for axis in range(1, d + 1):
        msd_arr += np.abs(blocks - spline_predict_axis(blocks, axis))
    msd = float(msd_arr[interior].mean())

    return np.array([mean, vrange, mnd, mld, msd])


def extract_features_parallel(
    data: np.ndarray,
    block_edge: int = BLOCK_EDGE,
    block_stride: int = BLOCK_STRIDE,
) -> tuple[np.ndarray, float]:
    """Block-sampled fused feature extraction; returns ``(features, seconds)``.

    Feature definitions match :func:`repro.features.serial` but are computed
    on sampled blocks with block surfaces excluded, so values agree closely
    (not bit-exactly) with the serial extractor — the same approximation the
    paper's GPU kernel makes.
    """
    arr = as_float_array(data).astype(np.float64, copy=False)
    with timed_span("features.parallel", block_edge=block_edge,
                    block_stride=block_stride, n_elements=int(arr.size)) as sp:
        feats = _parallel_features(arr, block_edge, block_stride)
    return feats, sp.elapsed


def extract_features_parallel_many(
    arrays,
    block_edge: int = BLOCK_EDGE,
    block_stride: int = BLOCK_STRIDE,
) -> tuple[np.ndarray, float]:
    """Block-sampled features for several fields; returns ``((n, 5), seconds)``.

    The stacked multi-field entry point used by :mod:`repro.serve`. Rows are
    computed by the exact code path of :func:`extract_features_parallel`, so
    each is bitwise-identical to a standalone call on the same array; fields
    of different shapes batch together under one span.
    """
    arrs = [as_float_array(a).astype(np.float64, copy=False) for a in arrays]
    with timed_span("features.parallel_many", block_edge=block_edge,
                    block_stride=block_stride, n_fields=len(arrs),
                    n_elements=int(sum(a.size for a in arrs))) as sp:
        if arrs:
            feats = np.stack([_parallel_features(a, block_edge, block_stride) for a in arrs])
        else:
            feats = np.empty((0, 5))
    return feats, sp.elapsed
