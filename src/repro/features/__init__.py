"""Compressibility feature extraction (FXRZ's five features, Section 5.4).

- :mod:`repro.features.definitions` — mean value, value range, mean
  neighbor difference (MND), mean Lorenzo difference (MLD), mean spline
  difference (MSD), Eqs. (5)-(8);
- :mod:`repro.features.serial` — FXRZ's extraction: full-data and
  stride-4 point-sampled variants;
- :mod:`repro.features.parallel` — CAROL's extraction: block-wise sampling
  with surface exclusion, fused single pass (the GPU-kernel algorithm,
  vectorized here);
- :mod:`repro.features.gpu_model` — analytical cost model reporting the
  simulated GPU kernel time used by the figure harnesses (see DESIGN.md
  substitutions).
"""

from repro.features.definitions import (
    FEATURE_NAMES,
    feature_vector,
    mean_lorenzo_difference,
    mean_neighbor_difference,
    mean_spline_difference,
)
from repro.features.parallel import (
    extract_features_parallel,
    extract_features_parallel_many,
)
from repro.features.serial import extract_features_serial, extract_features_serial_many

__all__ = [
    "FEATURE_NAMES",
    "feature_vector",
    "mean_neighbor_difference",
    "mean_lorenzo_difference",
    "mean_spline_difference",
    "extract_features_serial",
    "extract_features_serial_many",
    "extract_features_parallel",
    "extract_features_parallel_many",
]
