"""FXRZ-style serial feature extraction.

Two variants, matching the paper's Figure 6 bars:

- ``Serial-Full`` — the five features on the entire array;
- ``Serial-Sampled`` — FXRZ's mitigation: point-wise sampling with a stride
  of 4 per axis (1.5% of a 3-D dataset), features computed on the sampled
  (non-contiguous, cache-hostile) subgrid.

The sampled variant gathers a strided copy first — the same scattered
memory traffic that makes FXRZ's extraction slow relative to CAROL's
block-contiguous scheme.
"""

from __future__ import annotations

import numpy as np

from repro.features.definitions import feature_vector
from repro.obs import timed_span
from repro.utils.validation import as_float_array


def extract_features_serial(
    data: np.ndarray, stride: int | None = 4
) -> tuple[np.ndarray, float]:
    """Extract the five features; returns ``(features, elapsed_seconds)``.

    ``stride=None`` computes on the full array (Serial-Full); an integer
    stride point-samples each axis first (Serial-Sampled, FXRZ's default 4).
    """
    arr = as_float_array(data)
    with timed_span("features.serial", stride=stride or 0,
                    n_elements=int(arr.size)) as sp:
        if stride is not None and stride > 1:
            slicer = tuple(slice(0, None, stride) for _ in range(arr.ndim))
            # The strided gather materializes a copy: scattered reads, the cache
            # behaviour the paper attributes to FXRZ's point-wise sampling.
            arr = np.array(arr[slicer], dtype=np.float64)
        feats = feature_vector(arr)
    return feats, sp.elapsed
