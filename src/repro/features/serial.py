"""FXRZ-style serial feature extraction.

Two variants, matching the paper's Figure 6 bars:

- ``Serial-Full`` — the five features on the entire array;
- ``Serial-Sampled`` — FXRZ's mitigation: point-wise sampling with a stride
  of 4 per axis (1.5% of a 3-D dataset), features computed on the sampled
  (non-contiguous, cache-hostile) subgrid.

The sampled variant gathers a strided copy first — the same scattered
memory traffic that makes FXRZ's extraction slow relative to CAROL's
block-contiguous scheme.

:func:`extract_features_serial_many` is the stacked multi-field entry
point used by the serving layer (:mod:`repro.serve`): one span covers the
whole batch and the per-field vectors come back as one ``(n, 5)`` matrix,
ready for stacked model inference.
"""

from __future__ import annotations

import numpy as np

from repro.features.definitions import FEATURE_NAMES, feature_vector
from repro.obs import timed_span
from repro.utils.validation import as_float_array


def _serial_features(arr: np.ndarray, stride: int | None) -> np.ndarray:
    if stride is not None and stride > 1:
        slicer = tuple(slice(0, None, stride) for _ in range(arr.ndim))
        # The strided gather materializes a copy: scattered reads, the cache
        # behaviour the paper attributes to FXRZ's point-wise sampling.
        arr = np.array(arr[slicer], dtype=np.float64)
    return feature_vector(arr)


def extract_features_serial(
    data: np.ndarray, stride: int | None = 4
) -> tuple[np.ndarray, float]:
    """Extract the five features; returns ``(features, elapsed_seconds)``.

    ``stride=None`` computes on the full array (Serial-Full); an integer
    stride point-samples each axis first (Serial-Sampled, FXRZ's default 4).
    """
    arr = as_float_array(data)
    with timed_span("features.serial", stride=stride or 0,
                    n_elements=int(arr.size)) as sp:
        feats = _serial_features(arr, stride)
    return feats, sp.elapsed


def extract_features_serial_many(
    arrays, stride: int | None = 4
) -> tuple[np.ndarray, float]:
    """Serial features for several fields; returns ``((n, 5), seconds)``.

    Feature values are computed by the exact same code path as
    :func:`extract_features_serial`, so row ``i`` is bitwise-identical to a
    standalone call on ``arrays[i]``; only the span accounting is shared.
    """
    arrs = [as_float_array(a) for a in arrays]
    with timed_span("features.serial_many", stride=stride or 0, n_fields=len(arrs),
                    n_elements=int(sum(a.size for a in arrs))) as sp:
        if arrs:
            feats = np.stack([_serial_features(a, stride) for a in arrs])
        else:
            feats = np.empty((0, len(FEATURE_NAMES)))
    return feats, sp.elapsed
