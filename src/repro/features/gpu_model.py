"""Analytical GPU cost model for the simulated "Parallel" timings.

The paper's core contribution 4 runs feature extraction as a CUDA kernel on
an NVIDIA A100 (Swing), reporting ~5 ms on a 512 MB NYX field. No GPU is
available in this reproduction, so figure harnesses that quote a GPU time
use this roofline-style model (clearly labelled "simulated" in output),
while the *algorithm* itself is exercised for real by
:func:`repro.features.parallel.extract_features_parallel`.

Model: ``time = fixed_overhead + bytes_touched / effective_bandwidth``.
Feature extraction is memory-bound (a handful of FLOPs per loaded value),
so a bandwidth roofline is the appropriate first-order model. Defaults are
calibrated to the paper's reported ~5 ms on the 512 MB NYX field: 1.3 TB/s
HBM2e at a conservative 4% achieved efficiency for the strided stencil
kernel, plus ~3 ms of fixed cost (launch + reduction + host transfer of the
five scalars).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.parallel import BLOCK_EDGE, BLOCK_STRIDE


@dataclass
class GpuCostModel:
    """Roofline timing model for the block-sampled extraction kernel."""

    bandwidth_gbs: float = 1300.0
    efficiency: float = 0.04
    launch_overhead_s: float = 3e-3
    # The kernel reads each sampled value once and each of its 2d+2 stencil
    # neighbours from cache; effective DRAM traffic ~ 2x the sampled bytes.
    traffic_factor: float = 2.0

    def sampled_bytes(self, shape: tuple[int, ...], itemsize: int = 4) -> int:
        """Bytes of the block-sampled subset the kernel touches."""
        frac = 1.0
        for s in shape:
            nblocks = max(s // BLOCK_EDGE, 1)
            kept = len(range(0, nblocks, BLOCK_STRIDE))
            covered = min(kept * BLOCK_EDGE, s)
            frac *= covered / s
        total = int(np.prod(shape)) * itemsize
        return int(total * frac)

    def kernel_time(self, shape: tuple[int, ...], itemsize: int = 4) -> float:
        """Simulated kernel seconds for one field of ``shape``."""
        nbytes = self.sampled_bytes(shape, itemsize) * self.traffic_factor
        bw = self.bandwidth_gbs * 1e9 * self.efficiency
        return self.launch_overhead_s + nbytes / bw
