"""repro — reproduction of CAROL (ICPP'24), a ratio-controlled
lossy-compression framework, with every substrate built from scratch.

Quickstart::

    import numpy as np
    from repro import CarolFramework, load_dataset

    train = load_dataset("miranda")
    carol = CarolFramework(compressor="sz3")
    carol.fit(train)
    test = load_dataset("nyx")[0]
    result, pred = carol.compress_to_ratio(test.data, target_ratio=30.0)
    print(result.ratio, pred.error_bound)

Main entry points:

- :class:`CarolFramework` / :class:`FxrzFramework` — the ratio-controlled
  frameworks (paper contribution / baseline);
- :func:`get_compressor` — the four error-bounded compressors
  (szx / zfp / sz3 / sperr);
- :func:`get_surrogate` — the SECRE ratio estimators;
- :func:`load_dataset` / :func:`load_field` — synthetic SDRBench-like data.
"""

from repro.compressors import (
    CompressionResult,
    LossyCompressor,
    available_compressors,
    get_compressor,
)
from repro.core import (
    CalibrationInfo,
    Calibrator,
    CarolFramework,
    ErrorBoundModel,
    FxrzFramework,
    TrainingCollector,
    TrainingData,
    estimation_error,
    invert_curve,
)
from repro.core.config import FrameworkConfig
from repro.core.feedback import FeedbackLoop
from repro.core.fraz import FrazSearch
from repro.core.selector import CompressorSelector
from repro.core.quality import max_abs_error, nrmse, psnr, rmse
from repro.utils.serialization import load_framework, save_framework
from repro.data import DATASET_NAMES, Field, load_dataset, load_field
from repro.surrogate import available_surrogates, get_surrogate

__version__ = "1.0.0"

__all__ = [
    "CarolFramework",
    "FxrzFramework",
    "Calibrator",
    "CalibrationInfo",
    "TrainingCollector",
    "TrainingData",
    "ErrorBoundModel",
    "estimation_error",
    "invert_curve",
    "LossyCompressor",
    "CompressionResult",
    "get_compressor",
    "available_compressors",
    "get_surrogate",
    "available_surrogates",
    "Field",
    "load_dataset",
    "load_field",
    "DATASET_NAMES",
    "FeedbackLoop",
    "FrazSearch",
    "FrameworkConfig",
    "CompressorSelector",
    "psnr",
    "rmse",
    "nrmse",
    "max_abs_error",
    "save_framework",
    "load_framework",
    "__version__",
]
