"""repro — reproduction of CAROL (ICPP'24), a ratio-controlled
lossy-compression framework, with every substrate built from scratch.

Quickstart::

    import numpy as np
    from repro import CarolFramework, load_dataset

    train = load_dataset("miranda")
    carol = CarolFramework(compressor="sz3")
    carol.fit(train)
    test = load_dataset("nyx")[0]
    result, pred = carol.compress_to_ratio(test.data, target_ratio=30.0)
    print(result.ratio, pred.error_bound)

Main entry points:

- :mod:`repro.api` — the recommended stable facade (:class:`Carol`,
  :class:`Fxrz`, :class:`FrameworkOptions`, :func:`load`, :func:`save`),
  re-exported here so ``from repro import Carol`` works;
- :mod:`repro.serve` — the serving layer (:class:`Service`,
  :class:`ServiceOptions`, :class:`ModelRegistry`): batched, cached,
  optionally multi-process prediction over a fitted framework;
- :mod:`repro.load` — the traffic layer (:class:`Gateway`,
  :class:`GatewayOptions`): asyncio admission control + request
  coalescing over a service, plus seeded workload topologies and the
  ``python -m repro load-bench`` saturation benchmark;
- :mod:`repro.control` — the tier-escalation control plane
  (:class:`Controller`, :class:`ControlOptions`): per chunk/request,
  choose heuristic → model → FRaZ refinement from model confidence,
  budget drift, and a risk budget (``StoreOptions(control=...)``,
  ``ServiceOptions(control=...)``, ``python -m repro control-bench``);
- :mod:`repro.store` — the chunked compressed array store
  (:class:`Store`, :class:`StoreOptions`): single-file ``.rps``
  containers with closed-loop byte budgeting and random-access reads
  (``python -m repro store-pack / store-info / store-unpack``), plus the
  sharded read service (:class:`Catalog`, :class:`CatalogOptions`): many
  stores by dataset key behind one shared byte-budgeted chunk cache
  (``python -m repro read-bench``);
- :class:`CarolFramework` / :class:`FxrzFramework` — the ratio-controlled
  frameworks (paper contribution / baseline);
- :func:`get_compressor` — the four error-bounded compressors
  (szx / zfp / sz3 / sperr);
- :func:`get_surrogate` — the SECRE ratio estimators;
- :func:`load_dataset` / :func:`load_field` — synthetic SDRBench-like data;
- :mod:`repro.obs` — tracing spans + metrics for the whole pipeline
  (``python -m repro train ... --trace out.json``).
"""

from repro import obs
from repro.api import (
    Carol,
    Catalog,
    CatalogOptions,
    Controller,
    ControlOptions,
    ControlStats,
    FrameworkOptions,
    Fxrz,
    Gateway,
    GatewayOptions,
    ModelRegistry,
    Overloaded,
    Service,
    ServiceOptions,
    Store,
    StoreOptions,
    load,
    save,
)
from repro.compressors import (
    CompressionResult,
    LossyCompressor,
    available_compressors,
    get_compressor,
)
from repro.core import (
    CalibrationInfo,
    Calibrator,
    CarolFramework,
    ErrorBoundModel,
    FxrzFramework,
    TrainingCollector,
    TrainingData,
    estimation_error,
    invert_curve,
)
from repro.core.config import FrameworkConfig
from repro.core.feedback import FeedbackLoop
from repro.core.fraz import FrazSearch
from repro.core.selector import CompressorSelector
from repro.core.quality import max_abs_error, nrmse, psnr, rmse
from repro.utils.serialization import load_framework, save_framework
from repro.data import DATASET_NAMES, Field, load_dataset, load_field
from repro.surrogate import available_surrogates, get_surrogate

__version__ = "1.0.0"

__all__ = [
    "Carol",
    "Fxrz",
    "FrameworkOptions",
    "Controller",
    "ControlOptions",
    "ControlStats",
    "Service",
    "ServiceOptions",
    "ModelRegistry",
    "Gateway",
    "GatewayOptions",
    "Overloaded",
    "Store",
    "StoreOptions",
    "Catalog",
    "CatalogOptions",
    "load",
    "save",
    "obs",
    "CarolFramework",
    "FxrzFramework",
    "Calibrator",
    "CalibrationInfo",
    "TrainingCollector",
    "TrainingData",
    "ErrorBoundModel",
    "estimation_error",
    "invert_curve",
    "LossyCompressor",
    "CompressionResult",
    "get_compressor",
    "available_compressors",
    "get_surrogate",
    "available_surrogates",
    "Field",
    "load_dataset",
    "load_field",
    "DATASET_NAMES",
    "FeedbackLoop",
    "FrazSearch",
    "FrameworkConfig",
    "CompressorSelector",
    "psnr",
    "rmse",
    "nrmse",
    "max_abs_error",
    "save_framework",
    "load_framework",
    "__version__",
]
