"""repro.api — the stable, minimal public surface.

The recommended entry point for applications::

    from repro.api import Carol, FrameworkOptions, Service, load, save

    carol = Carol(compressor="sz3")            # or Fxrz(...)
    carol.fit(fields)
    save("model.npz", carol)
    carol = load("model.npz")

    service = Service(carol)                   # batched + cached serving
    preds = service.predict_batch([(field.data, 16.0), (field.data, 32.0)])

    async with Gateway(service) as gw:         # admission + coalescing
        pred = await gw.submit(field.data, 16.0)   # == service.predict, bitwise

    Store.pack("field.rps", field, carol, target_ratio=16.0,
               options=StoreOptions(workers=4))  # wave-parallel, byte-identical
    with Store("field.rps") as st:             # chunked random-access reads
        sub = st[4:12, :, 20:40]

    with Catalog("stores/") as cat:            # a fleet of .rps stores
        sub = cat.read("climate/temp", (slice(0, 8), ...))
        for tsel, tile in cat.read_iter("climate/temp", max_inflight=4):
            consume(tsel, tile)                # streamed, bounded memory

Everything here is a thin, renamed view over the library internals —
:class:`Carol` *is* :class:`repro.core.carol.CarolFramework`,
:class:`Service` *is* :class:`repro.serve.PredictionService`, and
:class:`Catalog` *is* :class:`repro.store.StoreCatalog` — so code
written against either surface interoperates freely; the deep import
paths remain supported (but new code should import from here).

The ``*Options`` dataclasses (:class:`FrameworkOptions`,
:class:`ServiceOptions`, :class:`GatewayOptions`, :class:`StoreOptions`,
:class:`CatalogOptions`, :class:`ControlOptions`) are the hashable,
frozen, keyword-only
counterparts of each layer's constructor arguments: share one options
value across services, use it as a cache key, and
:meth:`~FrameworkOptions.build` the live object from it. Each
round-trips — ``from_*`` recovers the options from a built object (or
manifest) and ``to_kwargs()`` flattens back to constructor keywords.
Stats are typed the same way: :meth:`Service.stats`,
:meth:`Gateway.stats`, and :meth:`Catalog.stats` return frozen
:class:`ServiceStats` / :class:`GatewayStats` / :class:`CatalogStats`
snapshots (each with ``as_dict()`` for serialization).

Signature conventions, uniform across the surface: configuration is
keyword-only everywhere; a single requested ratio is ``target_ratio``
and several are ``target_ratios``; prediction bias is ``safety`` on
every inference entry point (``predict_error_bound``,
``predict_error_bound_batch``, ``evaluate_targets``,
``compress_to_ratio``, and the service's ``predict`` family).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

import numpy as np

from repro.control import ControlledPrediction, Controller, ControlOptions, ControlStats
from repro.core.carol import CarolFramework
from repro.core.framework import (
    BatchPrediction,
    EvaluationReport,
    Prediction,
    RatioControlledFramework,
    SetupReport,
)
from repro.core.fxrz import FxrzFramework
from repro.load.gateway import (
    Gateway,
    GatewayClosed,
    GatewayOptions,
    GatewayStats,
    Overloaded,
)
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    PredictionService,
    ServiceOptions,
    ServiceStats,
    VerifiedPrediction,
)
from repro.store import (
    CatalogOptions,
    CatalogStats,
    PackReport,
    PrefetchStats,
    Store,
    StoreCatalog,
    StoreOptions,
    StreamStats,
)
from repro.utils.serialization import load_framework, save_framework

#: Facade aliases — ``Carol`` is ``CarolFramework``, nothing in between.
Carol = CarolFramework
Fxrz = FxrzFramework
Service = PredictionService
Catalog = StoreCatalog

_KINDS = {"carol": CarolFramework, "fxrz": FxrzFramework}


@dataclass(frozen=True, kw_only=True)
class FrameworkOptions:
    """Frozen, hashable construction options for either framework.

    ``rel_error_bounds`` is a tuple (kept hashable); it is converted to
    the array the frameworks expect at :meth:`build` time. ``None``
    selects the library's default grid.
    """

    compressor: str = "sz3"
    rel_error_bounds: tuple[float, ...] | None = None
    n_iter: int = 8
    cv: int = 3
    seed: int = 0
    calibration_points: int = 4
    model_kind: str = "forest"

    def __post_init__(self) -> None:
        if self.rel_error_bounds is not None:
            object.__setattr__(
                self,
                "rel_error_bounds",
                tuple(float(e) for e in self.rel_error_bounds),
            )

    @classmethod
    def from_framework(cls, framework: RatioControlledFramework) -> "FrameworkOptions":
        """Recover the options a built framework was constructed with.

        Round-trips with :meth:`build`:
        ``FrameworkOptions.from_framework(opts.build("carol")) == opts``.
        """
        rel = framework.rel_error_bounds
        return cls(
            compressor=framework.compressor_name,
            rel_error_bounds=None if rel is None else tuple(float(e) for e in rel),
            n_iter=framework.n_iter,
            cv=framework.cv,
            seed=framework.seed,
            calibration_points=framework.calibration_points,
            model_kind=framework.model_kind,
        )

    def to_kwargs(self, *, include_compressor: bool = False) -> dict:
        """Keyword arguments accepted by the framework constructors.

        By default the ``compressor`` key is omitted (it is the one
        positional framework argument), so the result can be passed
        straight through: ``Carol(opts.compressor, **opts.to_kwargs())``.
        Pass ``include_compressor=True`` for a complete flat dict (e.g.
        to serialize or log the configuration).
        """
        kwargs = {f.name: getattr(self, f.name) for f in dc_fields(self)}
        if not include_compressor:
            kwargs.pop("compressor")
        if kwargs["rel_error_bounds"] is not None:
            kwargs["rel_error_bounds"] = np.asarray(
                kwargs["rel_error_bounds"], dtype=np.float64
            )
        return kwargs

    def build(self, framework: str = "carol") -> RatioControlledFramework:
        """Instantiate an (unfitted) ``"carol"`` or ``"fxrz"`` framework."""
        try:
            cls = _KINDS[framework]
        except KeyError:
            raise ValueError(
                f"framework must be one of {sorted(_KINDS)}, got {framework!r}"
            ) from None
        return cls(self.compressor, **self.to_kwargs())


def load(path) -> RatioControlledFramework:
    """Load a framework saved with :func:`save` (``.npz``, pickle-free)."""
    return load_framework(path)


def save(path, framework: RatioControlledFramework):
    """Persist a fitted framework's inference state; returns the path."""
    return save_framework(path, framework)


__all__ = [
    "Carol",
    "Fxrz",
    "FrameworkOptions",
    "Controller",
    "ControlOptions",
    "ControlStats",
    "ControlledPrediction",
    "Service",
    "ServiceOptions",
    "ServiceStats",
    "ModelRegistry",
    "VerifiedPrediction",
    "Gateway",
    "GatewayOptions",
    "GatewayStats",
    "GatewayClosed",
    "Overloaded",
    "Store",
    "StoreOptions",
    "Catalog",
    "CatalogOptions",
    "CatalogStats",
    "PrefetchStats",
    "StreamStats",
    "PackReport",
    "load",
    "save",
    "RatioControlledFramework",
    "SetupReport",
    "Prediction",
    "BatchPrediction",
    "EvaluationReport",
]
