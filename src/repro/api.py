"""repro.api — the stable, minimal public surface.

The recommended entry point for applications::

    from repro.api import Carol, FrameworkOptions, load, save

    carol = Carol(compressor="sz3")            # or Fxrz(...)
    carol.fit(fields)
    save("model.npz", carol)
    carol = load("model.npz")

Everything here is a thin, renamed view over the library internals —
:class:`Carol` *is* :class:`repro.core.carol.CarolFramework` — so code
written against either surface interoperates freely; the deep import
paths remain supported.

:class:`FrameworkOptions` is the hashable, frozen counterpart to the
frameworks' keyword arguments: share one options value across services,
use it as a cache key, and :meth:`~FrameworkOptions.build` frameworks
from it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

import numpy as np

from repro.core.carol import CarolFramework
from repro.core.framework import (
    EvaluationReport,
    Prediction,
    RatioControlledFramework,
    SetupReport,
)
from repro.core.fxrz import FxrzFramework
from repro.utils.serialization import load_framework, save_framework

#: Facade aliases — ``Carol`` is ``CarolFramework``, nothing in between.
Carol = CarolFramework
Fxrz = FxrzFramework

_KINDS = {"carol": CarolFramework, "fxrz": FxrzFramework}


@dataclass(frozen=True)
class FrameworkOptions:
    """Frozen, hashable construction options for either framework.

    ``rel_error_bounds`` is a tuple (kept hashable); it is converted to
    the array the frameworks expect at :meth:`build` time. ``None``
    selects the library's default grid.
    """

    compressor: str = "sz3"
    rel_error_bounds: tuple[float, ...] | None = None
    n_iter: int = 8
    cv: int = 3
    seed: int = 0
    calibration_points: int = 4
    model_kind: str = "forest"

    def __post_init__(self) -> None:
        if self.rel_error_bounds is not None:
            object.__setattr__(
                self,
                "rel_error_bounds",
                tuple(float(e) for e in self.rel_error_bounds),
            )

    def to_kwargs(self) -> dict:
        """Keyword arguments accepted by the framework constructors."""
        kwargs = {f.name: getattr(self, f.name) for f in dc_fields(self)}
        if kwargs["rel_error_bounds"] is not None:
            kwargs["rel_error_bounds"] = np.asarray(
                kwargs["rel_error_bounds"], dtype=np.float64
            )
        return kwargs

    def build(self, framework: str = "carol") -> RatioControlledFramework:
        """Instantiate an (unfitted) ``"carol"`` or ``"fxrz"`` framework."""
        try:
            cls = _KINDS[framework]
        except KeyError:
            raise ValueError(
                f"framework must be one of {sorted(_KINDS)}, got {framework!r}"
            ) from None
        kwargs = self.to_kwargs()
        compressor = kwargs.pop("compressor")
        return cls(compressor, **kwargs)


def load(path) -> RatioControlledFramework:
    """Load a framework saved with :func:`save` (``.npz``, pickle-free)."""
    return load_framework(path)


def save(path, framework: RatioControlledFramework):
    """Persist a fitted framework's inference state; returns the path."""
    return save_framework(path, framework)


__all__ = [
    "Carol",
    "Fxrz",
    "FrameworkOptions",
    "load",
    "save",
    "RatioControlledFramework",
    "SetupReport",
    "Prediction",
    "EvaluationReport",
]
