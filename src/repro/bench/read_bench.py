"""``read-bench``: concurrent sharded-read benchmark over a store catalog.

The catalog's contract is that injecting a shared chunk cache and a
decode pool into the staged reader changes *throughput only, never
bytes*. This module makes that contract a measured, committed artifact:

- a deterministic fixture packs several ``.rps`` stores into a temp
  directory and draws a seeded stream of random subvolume requests
  across them;
- the request stream is answered by a serial, cache-less catalog first
  (the reference), then replayed under each benchmarked configuration —
  cached, and parallel-with-cache under thread concurrency — and every
  response is digest-compared to the reference answer;
- a **streaming scenario** scans every store front to back through
  ``Catalog.read_iter`` on a cold cache with the prefetcher on,
  recording time-to-first-tile and the stream's peak resident bytes;
  the assembled tiles must digest-match a materialized ``read()`` of
  the same store, and the peak must stay within 2x the configured
  ``max_inflight`` tile budget — the bounded-memory contract as a gate;
- the report (bytes-served/s and cache hit rate per configuration, plus
  the streaming columns) is written to ``BENCH_read.json`` at the repo
  root, commit-stamped, so the read path's perf trajectory is tracked
  in version control alongside the code.

Any byte divergence between configurations is a benchmark *failure*
(nonzero exit from the CLI), not a footnote. ``--check`` mode (used in
CI) shrinks the fixture and keeps only the byte-identity gate.
"""

from __future__ import annotations

import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.bench.codec_bench import repo_commit
from repro.obs import span
from repro.serve.cache import digest_array
from repro.store.catalog import CatalogOptions, StoreCatalog

SCHEMA = "repro.read-bench/v1"
REPORT_NAME = "BENCH_read.json"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def build_fixture(
    framework,
    root,
    *,
    n_stores: int = 3,
    shape: tuple[int, ...] = (24, 32, 32),
    chunk: tuple[int, ...] = (8, 16, 16),
    ratio: float = 8.0,
    seed: int = 0,
) -> list[str]:
    """Pack ``n_stores`` synthetic fields into ``root``; returns their keys.

    Each store holds a different seeded field, so cross-store cache
    collisions would be caught by the digest gate, and the keyspace
    exercises nested directories (``ds<i>/field``).
    """
    from repro.data import load_field
    from repro.store import StoreOptions, pack

    root = Path(root)
    options = StoreOptions(chunk_shape=tuple(chunk))
    keys = []
    for i in range(n_stores):
        field = load_field("miranda/pressure", shape=tuple(shape), seed=seed + i)
        key = f"ds{i}/field"
        path = root / f"{key}.rps"
        pack(path, field, framework, ratio, options=options)
        keys.append(key)
    return keys


def request_stream(
    keys: list[str],
    shape: tuple[int, ...],
    read_shape: tuple[int, ...],
    n_reads: int,
    seed: int,
) -> list[tuple[str, tuple]]:
    """A seeded list of ``(key, region)`` subvolume requests.

    Deterministic in ``seed`` alone, so every configuration replays the
    identical stream; regions are axis-aligned ``read_shape`` boxes at
    random offsets, clipped to the field.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(n_reads):
        key = keys[int(rng.integers(len(keys)))]
        region = tuple(
            slice(start := int(rng.integers(max(s - r, 0) + 1)), start + min(r, s))
            for s, r in zip(shape, read_shape)
        )
        requests.append((key, region))
    return requests


def _serve(catalog: StoreCatalog, requests, concurrency: int):
    """Answer every request (in order) and time the whole stream.

    ``concurrency > 1`` issues requests from a thread pool — the
    concurrent-reader scenario the shared cache must stay correct under —
    but results are collected in request order regardless.
    """
    t0 = time.perf_counter()
    if concurrency <= 1:
        results = [catalog.read(key, region) for key, region in requests]
    else:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [pool.submit(catalog.read, key, region) for key, region in requests]
            results = [f.result() for f in futures]
    return results, time.perf_counter() - t0


def run_streaming_scan(
    root, keys: list[str], *, cache_bytes: int, workers: int, max_inflight: int
) -> dict:
    """Full-store streamed scan of every key on a cold shared cache.

    Each store is streamed front to back as a sequence of chunk-row
    slabs, each slab tile by tile (``tile=None``: one piece per chunk,
    flat chunk-id order) into a preallocated buffer, then read again
    materialized; the two must digest-match. The slab sequence is
    exactly the sequential run the prefetcher detects, so the committed
    report also exercises (and records) prefetch outcomes. Records
    time-to-first-tile per store and the worst stream's peak resident
    bytes against its ``max_inflight`` budget.
    """
    options = CatalogOptions(
        cache_bytes=cache_bytes, workers=workers, prefetch_depth=max(2, max_inflight)
    )
    peak = budget = 0
    first_tile = []
    identical = True
    bytes_served = 0
    t0 = time.perf_counter()
    with StoreCatalog(root, options=options) as catalog:
        for key in keys:
            reader = catalog.reader(key)
            out = np.empty(reader.shape, dtype=reader.dtype)
            row = reader.grid.chunk_shape[0]
            rest = tuple(slice(None) for _ in reader.shape[1:])
            t_start = time.perf_counter()
            first = None
            for lo in range(0, reader.shape[0], row):
                region = (slice(lo, min(lo + row, reader.shape[0])), *rest)
                stream = catalog.read_iter(key, region, max_inflight=max_inflight)
                for tile_sel, tile in stream:
                    if first is None:
                        first = time.perf_counter() - t_start
                    out[tile_sel] = tile
                stats = stream.stats
                peak = max(peak, stats.peak_inflight_bytes)
                budget = max(budget, stats.budget_bytes)
            first_tile.append(first if first is not None else 0.0)
            bytes_served += out.nbytes
            identical &= digest_array(out) == digest_array(catalog.read(key))
        seconds = time.perf_counter() - t0
        prefetch = catalog.prefetch_stats()
    return {
        "cache_bytes": int(cache_bytes),
        "workers": int(workers),
        "max_inflight": int(max_inflight),
        "seconds": seconds,
        "bytes_served": int(bytes_served),
        "bytes_per_s": bytes_served / seconds if seconds > 0 else 0.0,
        "time_to_first_tile_s": max(first_tile) if first_tile else 0.0,
        "peak_resident_bytes": int(peak),
        "budget_bytes": int(budget),
        "bounded": bool(peak <= 2 * budget),
        "prefetch": prefetch.as_dict(),
        "identical": bool(identical),
    }


def run_read_bench(
    framework,
    *,
    n_stores: int = 3,
    shape: tuple[int, ...] = (24, 32, 32),
    chunk: tuple[int, ...] = (8, 16, 16),
    ratio: float = 8.0,
    n_reads: int = 48,
    read_shape: tuple[int, ...] = (12, 16, 16),
    workers: int = 2,
    cache_bytes: int = 64 << 20,
    concurrency: int = 4,
    max_inflight: int = 4,
    seed: int = 0,
) -> dict:
    """Benchmark catalog reads: serial reference vs cached vs parallel+cache,
    plus a full-store streaming scan (:func:`run_streaming_scan`).

    Returns the ``BENCH_read.json`` report dict; ``report["identical"]``
    is the aggregate byte-identity verdict (every configuration's every
    response digest-equal to the serial, cache-less reference, and every
    streamed scan digest-equal to its materialized read) and
    ``report["streaming"]["bounded"]`` the peak-resident-bytes verdict.
    """
    shape, chunk, read_shape = tuple(shape), tuple(chunk), tuple(read_shape)
    configs = {
        "serial": dict(cache_bytes=0, workers=0, concurrency=1),
        "cached": dict(cache_bytes=cache_bytes, workers=0, concurrency=concurrency),
        "parallel+cache": dict(
            cache_bytes=cache_bytes, workers=workers, concurrency=concurrency
        ),
    }
    with tempfile.TemporaryDirectory(prefix="read-bench-") as tmp:
        with span("read_bench.fixture", n_stores=n_stores, shape=list(shape)):
            keys = build_fixture(
                framework, tmp, n_stores=n_stores, shape=shape, chunk=chunk,
                ratio=ratio, seed=seed,
            )
        requests = request_stream(keys, shape, read_shape, n_reads, seed)

        reference: list[str] | None = None
        results: dict[str, dict] = {}
        for name, cfg in configs.items():
            options = CatalogOptions(
                cache_bytes=cfg["cache_bytes"], workers=cfg["workers"]
            )
            with StoreCatalog(tmp, options=options) as catalog:
                with span("read_bench.config", config=name, **cfg):
                    answers, seconds = _serve(catalog, requests, cfg["concurrency"])
                digests = [digest_array(a) for a in answers]
                if reference is None:
                    reference = digests
                stats = catalog.stats()
            bytes_served = int(sum(a.nbytes for a in answers))
            results[name] = {
                "cache_bytes": int(cfg["cache_bytes"]),
                "workers": int(cfg["workers"]),
                "concurrency": int(cfg["concurrency"]),
                "seconds": seconds,
                "bytes_served": bytes_served,
                "bytes_per_s": bytes_served / seconds if seconds > 0 else 0.0,
                "cache_hit_rate": stats.cache.hit_rate,
                "cache_evictions": stats.cache.evictions,
                "identical": digests == reference,
            }

        with span("read_bench.streaming", max_inflight=max_inflight):
            streaming = run_streaming_scan(
                tmp, keys, cache_bytes=cache_bytes, workers=workers,
                max_inflight=max_inflight,
            )

    return {
        "schema": SCHEMA,
        "commit": repo_commit(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "compressor": framework.compressor_name,
        "n_stores": int(n_stores),
        "shape": list(shape),
        "chunk": list(chunk),
        "target_ratio": float(ratio),
        "n_reads": int(n_reads),
        "read_shape": list(read_shape),
        "seed": int(seed),
        "configs": results,
        "streaming": streaming,
        "identical": all(c["identical"] for c in results.values())
        and streaming["identical"],
    }


def format_report(report: dict) -> str:
    """Human-readable per-configuration table of the report."""
    lines = [
        f"read-bench: {report['n_stores']} stores shape={tuple(report['shape'])} "
        f"chunk={tuple(report['chunk'])} ratio={report['target_ratio']:g} "
        f"reads={report['n_reads']}x{tuple(report['read_shape'])} "
        f"commit={report['commit'] or '?'}",
        f"{'config':<16} {'workers':>7} {'conc':>5} {'cache MB':>9} "
        f"{'MB/s':>9} {'hit rate':>9} {'identical':>10}",
    ]
    for name, c in report["configs"].items():
        lines.append(
            f"{name:<16} {c['workers']:>7} {c['concurrency']:>5} "
            f"{c['cache_bytes'] / 1e6:>9.1f} {c['bytes_per_s'] / 1e6:>9.2f} "
            f"{c['cache_hit_rate']:>9.2%} "
            f"{'yes' if c['identical'] else 'DIVERGED':>10}"
        )
    s = report.get("streaming")
    if s:
        lines.append(
            f"{'streaming':<16} workers={s['workers']} "
            f"max_inflight={s['max_inflight']} "
            f"first-tile={s['time_to_first_tile_s'] * 1e3:.2f}ms "
            f"peak={s['peak_resident_bytes'] / 1e6:.2f}MB "
            f"budget={s['budget_bytes'] / 1e6:.2f}MB "
            f"({'bounded' if s['bounded'] else 'OVER BUDGET'}) "
            f"prefetch-hits={s['prefetch']['hits']} "
            f"{'yes' if s['identical'] else 'DIVERGED'}"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path | None = None) -> Path:
    """Write the report JSON (default: ``BENCH_read.json`` at repo root)."""
    out = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return out


def load_report(path: str | Path | None = None) -> dict | None:
    """Read a previously committed report; None when absent or unreadable."""
    p = Path(path) if path is not None else _REPO_ROOT / REPORT_NAME
    try:
        report = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    return report if report.get("schema") == SCHEMA else None
