"""Model-level experiments: training scaling, end-to-end accuracy, timing.

Covers Table 3 and Figures 5a, 5b, 6, 7, 8, 9. The multi-domain framework
fits (shared by Figs. 7 and 8) are cached per process.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.curves import true_curve
from repro.bench.harness import BenchScale, format_table
from repro.compressors.registry import PAPER_COMPRESSORS, get_compressor
from repro.core.carol import CarolFramework
from repro.core.collection import TrainingCollector
from repro.core.fxrz import FxrzFramework
from repro.data.datasets import load_dataset, load_field, nyx
from repro.features.gpu_model import GpuCostModel
from repro.features.parallel import extract_features_parallel
from repro.features.serial import extract_features_serial
from repro.ml.bayesopt import BayesianOptimizer
from repro.ml.grid_search import RandomizedGridSearch
from repro.ml.kfold import KFold, cross_val_score
from repro.ml.forest import RandomForestRegressor
from repro.ml.space import Choice, IntRange, SearchSpace

COMPRESSORS = PAPER_COMPRESSORS

# Sub-space for the training-scaling study: same six axes, bounded tree
# sizes so one configuration's fit stays around a second at the largest
# design-matrix size (the paper's absolute times are cluster-scale anyway —
# the *scaling shape* is what's reproduced).
_FIG5_SPACE = SearchSpace(
    {
        "n_estimators": IntRange(10, 40, 5),
        "max_features": Choice(("auto", "sqrt")),
        "max_depth": IntRange(4, 10, 2),
        "min_samples_split": Choice((2, 5, 10)),
        "min_samples_leaf": Choice((2, 4)),
        "bootstrap": Choice((True, False)),
    }
)

#: Modeled node of the paper's Bebop system for the grid-search memory wall.
_PAPER_NODE_CORES = 36
_MODELED_MEMORY_BYTES = 8 << 20  # scaled-down "96 GB" for scaled-down forests


# Larger fields for the setup-time experiments (Figs. 7/8): the paper's
# regime has data collection dominating setup, which needs non-trivial
# compression times.
_SETUP_SHAPES = {"small": (40, 56, 56), "medium": (48, 64, 64)}


def _multi_domain_train(scale: BenchScale):
    shape = _SETUP_SHAPES[scale.name]
    fields = load_dataset("miranda", shape=shape)[:3]
    fields += load_dataset("nyx", shape=shape)[:2]
    fields += load_dataset("hcci", shape=shape)
    fields += load_dataset("mrs", shape=shape)
    return fields


_FW_CACHE: dict[tuple, tuple] = {}


def fitted_frameworks(scale: BenchScale, compressor: str):
    """(carol, fxrz) fitted on the multi-domain training set, cached."""
    key = (scale.name, compressor)
    if key in _FW_CACHE:
        return _FW_CACHE[key]
    train = _multi_domain_train(scale)
    rel = scale.rel_ebs()
    carol = CarolFramework(
        compressor=compressor, rel_error_bounds=rel, n_iter=scale.bo_iters, cv=scale.cv
    )
    carol.fit(train)
    fxrz = FxrzFramework(
        compressor=compressor, rel_error_bounds=rel, n_iter=scale.grid_iters, cv=scale.cv
    )
    fxrz.fit(train)
    _FW_CACHE[key] = (carol, fxrz)
    return carol, fxrz


# ---------------------------------------------------------------------------
# Table 3 — single-domain estimation error on 4 NYX fields
# ---------------------------------------------------------------------------

def tab3_single_domain(scale: BenchScale) -> str:
    field_names = ["baryon_density", "dark_matter_density", "temperature", "velocity_x"]
    short = {"baryon_density": "BD", "dark_matter_density": "DMD",
             "temperature": "Temp", "velocity_x": "V-X"}
    rel = scale.rel_ebs()
    kwargs = scale.dataset_kwargs("nyx")

    rows = []
    sums = {(c, fw): [] for c in COMPRESSORS for fw in ("fxrz", "carol")}
    for fname in field_names:
        train = [
            next(f for f in nyx(timestep=t, **kwargs) if f.name == fname)
            for t in range(scale.n_timesteps)
        ]
        test = next(
            f for f in nyx(timestep=scale.n_timesteps + 2, **kwargs) if f.name == fname
        )
        row: list = [short[fname]]
        for comp in COMPRESSORS:
            ebs = rel * test.value_range
            true, _ = true_curve(test, comp, ebs)
            targets = true[np.linspace(1, ebs.size - 2, scale.n_targets).astype(int)]
            for cls, tag, iters in (
                (FxrzFramework, "fxrz", scale.grid_iters),
                (CarolFramework, "carol", scale.bo_iters),
            ):
                fw = cls(compressor=comp, rel_error_bounds=rel, n_iter=iters, cv=scale.cv)
                fw.fit(train)
                alpha = fw.evaluate_targets(test.data, targets).alpha
                row.append(float(alpha))
                sums[(comp, tag)].append(alpha)
        rows.append(row)
    avg: list = ["Average"]
    for comp in COMPRESSORS:
        for tag in ("fxrz", "carol"):
            avg.append(float(np.mean(sums[(comp, tag)])))
    rows.append(avg)

    headers = ["field"]
    for comp in COMPRESSORS:
        headers.extend([f"{comp} FXRZ a%", f"{comp} CAROL a%"])
    return format_table(
        f"Table 3 — single-domain estimation error (NYX, {scale.n_timesteps} "
        f"train timesteps) [scale={scale.name}]",
        headers,
        rows,
        note="Paper shape: FXRZ and CAROL within ~1% of each other on average; "
        "both do better on SZx/ZFP than on the high-ratio SZ3/SPERR.",
    )


# ---------------------------------------------------------------------------
# Figure 5a — training time vs training-set size
# ---------------------------------------------------------------------------

def _augmented_design(scale: BenchScale, n: int, seed: int = 0):
    """Design matrix grown to ``n`` rows by bootstrap + feature jitter."""
    fields = _multi_domain_train(scale)
    data = TrainingCollector(
        "szx", mode="secre", rel_error_bounds=scale.rel_ebs()
    ).collect(fields)
    X0, y0 = data.design_matrix()
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, X0.shape[0], n)
    X = X0[idx] * (1.0 + 0.01 * rng.standard_normal((n, X0.shape[1])))
    y = y0[idx] + 0.01 * rng.standard_normal(n)
    return X, y


def _modeled_parallel_walltime(records, memory_budget: int, cores: int) -> float:
    """Wall time of FXRZ's parallel grid search on the paper's node model.

    Configurations run concurrently until either cores or memory are
    exhausted; overflow serializes into further rounds (the paper's
    120k-row spike). Uses the *measured* per-config fit times.
    """
    remaining = sorted(records, key=lambda r: -r.memory_bytes)
    wall = 0.0
    while remaining:
        round_mem = 0
        round_jobs = []
        rest = []
        for rec in remaining:
            if len(round_jobs) < cores and round_mem + rec.memory_bytes <= memory_budget:
                round_jobs.append(rec)
                round_mem += rec.memory_bytes
            else:
                rest.append(rec)
        if not round_jobs:  # single job larger than budget: run it alone
            round_jobs, rest = rest[:1], rest[1:]
        wall += max(r.fit_seconds for r in round_jobs)
        remaining = rest
    return wall


def fig5a_training_scaling(scale: BenchScale) -> str:
    rows = []
    checkpoint = None
    for n in scale.train_sizes:
        X, y = _augmented_design(scale, n)
        cv = 2  # timing study; accuracy handled elsewhere

        gs = RandomizedGridSearch(_FIG5_SPACE, n_iter=scale.grid_iters, cv=cv).fit(X, y)
        modeled = _modeled_parallel_walltime(
            gs.records, _MODELED_MEMORY_BYTES, _PAPER_NODE_CORES
        )

        kfold = KFold(n_splits=cv, random_state=0)

        def objective(params):
            return float(
                cross_val_score(
                    lambda: RandomForestRegressor(random_state=0, **params), X, y, cv=kfold
                ).mean()
            )

        t0 = time.perf_counter()
        bo_cold = BayesianOptimizer(_FIG5_SPACE, n_initial=3, random_state=0)
        bo_cold.run(objective, n_iter=scale.bo_iters)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = BayesianOptimizer(_FIG5_SPACE, observations=checkpoint, random_state=1) \
            if checkpoint else bo_cold
        if checkpoint:
            warm.run(objective, n_iter=max(scale.bo_iters // 2, 2))
            t_warm = time.perf_counter() - t0
        else:
            t_warm = t_cold  # first size has nothing to warm-start from
        checkpoint = (warm if checkpoint else bo_cold).checkpoint()

        rows.append(
            [int(n), float(gs.elapsed), float(modeled), float(t_cold), float(t_warm)]
        )
    return format_table(
        f"Figure 5a — training time vs training-set size [scale={scale.name}]",
        ["rows", "grid serial(s)", "grid 36-core model(s)", "BO cold(s)", "BO warm(s)"],
        rows,
        note="Paper shape: grid search grows fastest (and its modeled parallel "
        "wall time spikes once configurations exceed node memory and "
        "serialize); BO grows gently and warm-started BO is cheapest. "
        f"Modeled node: {_PAPER_NODE_CORES} cores, "
        f"{_MODELED_MEMORY_BYTES >> 20} MB forest budget (scaled stand-in "
        "for Bebop's 96 GB).",
    )


# ---------------------------------------------------------------------------
# Figure 5b — convergence of n_estimators across BO iterations
# ---------------------------------------------------------------------------

def fig5b_bo_convergence(scale: BenchScale) -> str:
    datasets = ("miranda", "nyx", "cesm", "hurricane", "hcci", "mrs")
    iters = max(scale.bo_iters, 8)
    rows = []
    for ds in datasets:
        fields = load_dataset(ds, **scale.dataset_kwargs(ds))[:3]
        data = TrainingCollector(
            "szx", mode="secre", rel_error_bounds=scale.rel_ebs()
        ).collect(fields)
        X, y = data.design_matrix()
        kfold = KFold(n_splits=2, random_state=0)

        def objective(params):
            return float(
                cross_val_score(
                    lambda: RandomForestRegressor(random_state=0, **params), X, y, cv=kfold
                ).mean()
            )

        # Per-dataset seeds: each run starts from its own random design,
        # like the paper's six independent searches.
        bo = BayesianOptimizer(
            _FIG5_SPACE, n_initial=3, random_state=abs(hash(ds)) % 1000
        )
        res = bo.run(objective, n_iter=iters)
        traj = res.trajectory("n_estimators")
        rows.append([ds] + [int(v) for v in traj])
    headers = ["dataset"] + [f"it{i}" for i in range(iters)]
    return format_table(
        f"Figure 5b — n_estimators across {iters} BO iterations [scale={scale.name}]",
        headers,
        rows,
        note="Paper shape: wide exploration in early iterations, settling "
        "(exploitation) in the later ones.",
    )


# ---------------------------------------------------------------------------
# Figure 6 — feature extraction vs compressor runtimes on NYX
# ---------------------------------------------------------------------------

# Near-paper dataset dimensions for the *timing* experiments (Figs. 6, 9).
# Feature-extraction cost is content-independent, so these fields are cheap
# random data at realistic sizes; "small" halves each axis of the paper's
# dims (Table 2), "medium" uses them as published.
_TIMING_SHAPES = {
    "small": {
        "miranda": (128, 192, 192),
        "nyx": (256, 256, 256),
        "cesm": (900, 1800),
        "hurricane": (50, 250, 250),
        "hcci": (280, 280, 280),
        "mrs": (256, 256, 256),
    },
    "medium": {
        "miranda": (256, 384, 384),
        "nyx": (512, 512, 512),
        "cesm": (1800, 3600),
        "hurricane": (100, 500, 500),
        "hcci": (560, 560, 560),
        "mrs": (512, 512, 512),
    },
}


def _timing_field(dataset: str, scale: BenchScale) -> np.ndarray:
    shape = _TIMING_SHAPES[scale.name][dataset]
    rng = np.random.default_rng(abs(hash(dataset)) % 2**31)
    return rng.standard_normal(shape, dtype=np.float32)


def fig6_feature_extraction(scale: BenchScale) -> str:
    data = _timing_field("nyx", scale)
    _, t_full = extract_features_serial(data, stride=None)
    _, t_samp = extract_features_serial(data, stride=4)
    _, t_par = extract_features_parallel(data)
    t_gpu = GpuCostModel().kernel_time(data.shape, data.dtype.itemsize)
    rows = [
        ["Serial-Full", float(t_full * 1000), "measured"],
        ["Serial-Sampled (FXRZ)", float(t_samp * 1000), "measured"],
        ["Parallel (CAROL, vectorized)", float(t_par * 1000), "measured"],
        ["Parallel (CAROL, simulated A100)", float(t_gpu * 1000), "modeled"],
    ]
    # Compressor reference times on the (smaller) accuracy-scale NYX field,
    # rescaled to the timing volume: compression is ~linear in points.
    ref = load_field("nyx/baryon_density", **scale.dataset_kwargs("nyx"))
    volume_factor = data.size / ref.data.size
    eb = ref.relative_error_bound(1e-2)
    for name in ("szx", "sz3", "sperr"):
        res = get_compressor(name).compress(ref.data, eb)
        rows.append(
            [
                f"{name} compression (scaled est.)",
                float(res.elapsed * 1000 * volume_factor),
                "extrapolated",
            ]
        )
    return format_table(
        f"Figure 6 — feature extraction vs compression time on NYX "
        f"{data.shape} [scale={scale.name}]",
        ["stage", "time (ms)", "kind"],
        rows,
        note="Paper shape: Serial-Full >> compressors; sampling brings it "
        "well under SZ3/SPERR; the (simulated) parallel kernel is faster "
        "still (paper: ~5 ms on 512MB NYX — see DESIGN.md substitutions).",
    )


# ---------------------------------------------------------------------------
# Figure 7 — multi-domain requested vs achieved compression ratios
# ---------------------------------------------------------------------------

def fig7_multi_domain(scale: BenchScale) -> str:
    test = load_field("miranda/velocityx", seed=4242, **scale.dataset_kwargs("miranda"))
    rel = scale.rel_ebs()
    blocks = []
    rows = []
    for comp in COMPRESSORS:
        carol, fxrz = fitted_frameworks(scale, comp)
        ebs = rel * test.value_range
        true, _ = true_curve(test, comp, ebs)
        targets = true[np.linspace(1, ebs.size - 2, scale.n_targets).astype(int)]
        rep_c = carol.evaluate_targets(test.data, targets)
        rep_f = fxrz.evaluate_targets(test.data, targets)
        rows.append([comp, float(rep_f.alpha), float(rep_c.alpha)])
        blocks.append(
            f"{comp}: requested = " + " ".join(f"{v:8.2f}" for v in targets)
            + f"\n{comp}: f_FXRZ    = " + " ".join(f"{v:8.2f}" for v in rep_f.achieved)
            + f"\n{comp}: f_CAROL   = " + " ".join(f"{v:8.2f}" for v in rep_c.achieved)
        )
    return format_table(
        f"Figure 7 — multi-domain: requested vs achieved ratios on "
        f"miranda/velocityx [scale={scale.name}]",
        ["codec", "alpha% FXRZ", "alpha% CAROL"],
        rows,
        note="Paper shape: both frameworks' achieved curves track the request "
        "closely and each other very closely (paper CAROL: SZx 10%, ZFP 1.5%, "
        "SPERR 7.8%, SZ3 5.8%).\n\n" + "\n\n".join(blocks),
    )


# ---------------------------------------------------------------------------
# Figure 8 — setup (collection + training) time, FXRZ vs CAROL
# ---------------------------------------------------------------------------

def fig8_setup_time(scale: BenchScale) -> str:
    rows = []
    for comp in COMPRESSORS:
        carol, fxrz = fitted_frameworks(scale, comp)
        rc, rf = carol.setup_report, fxrz.setup_report
        rows.append(
            [
                comp,
                float(rf.collection_seconds),
                float(rf.training_seconds),
                float(rc.collection_seconds),
                float(rc.training_seconds),
                f"{rf.total_seconds / max(rc.total_seconds, 1e-9):.1f}x",
            ]
        )
    return format_table(
        f"Figure 8 — setup time: FXRZ vs CAROL (multi-domain training set) "
        f"[scale={scale.name}]",
        ["codec", "FXRZ collect(s)", "FXRZ train(s)", "CAROL collect(s)",
         "CAROL train(s)", "speedup"],
        rows,
        note="Paper shape: collection dominates FXRZ's setup (65-85%); CAROL "
        "cuts collection hardest on SZ3/SPERR and ~4x overall.",
    )


# ---------------------------------------------------------------------------
# Figure 9 — inference-side feature-extraction time per dataset
# ---------------------------------------------------------------------------

def fig9_inference_time(scale: BenchScale) -> str:
    datasets = ("miranda", "nyx", "cesm", "hurricane", "hcci", "mrs")
    model = GpuCostModel()
    rows = []
    for ds in datasets:
        data = _timing_field(ds, scale)
        _, t_fxrz = extract_features_serial(data, stride=4)
        _, t_carol = extract_features_parallel(data)
        t_gpu = model.kernel_time(data.shape, data.dtype.itemsize)
        rows.append(
            [
                ds,
                str(data.shape),
                float(t_fxrz * 1000),
                float(t_carol * 1000),
                float(t_gpu * 1000),
                f"{t_fxrz / max(t_gpu, 1e-9):.1f}x",
            ]
        )
        del data
    return format_table(
        f"Figure 9 — feature extraction per dataset: FXRZ vs CAROL "
        f"[scale={scale.name}, near-paper dataset sizes]",
        ["dataset", "shape", "FXRZ (ms)", "CAROL vectorized (ms)",
         "CAROL simulated GPU (ms)", "speedup (GPU model)"],
        rows,
        note="Paper shape: FXRZ's sampled extraction takes hundreds of ms on "
        "the large datasets while CAROL stays under ~10 ms (paper: ~36x). "
        "Our NumPy 'vectorized' CAROL column is already data-parallel so it "
        "tracks FXRZ's; the simulated-GPU column is the DESIGN.md "
        "substitution for the paper's CUDA kernel.",
    )


# ---------------------------------------------------------------------------
# Ablation — CAROL vs FRaZ-style trial-and-error (Section 3.2, ref [24])
# ---------------------------------------------------------------------------

def ablation_fraz(scale: BenchScale) -> str:
    from repro.core.fraz import FrazSearch

    test = load_field("miranda/velocityx", seed=4242, **scale.dataset_kwargs("miranda"))
    rel = scale.rel_ebs()
    rows = []
    for comp in ("szx", "sz3"):
        carol, _ = fitted_frameworks(scale, comp)
        ebs = rel * test.value_range
        true, _ = true_curve(test, comp, ebs)
        targets = true[np.linspace(1, ebs.size - 2, scale.n_targets).astype(int)]

        t0 = time.perf_counter()
        rep = carol.evaluate_targets(test.data, targets)
        # charge only prediction time; evaluate_targets also compresses once
        t_carol_pred = rep.inference_seconds

        fraz = FrazSearch(comp, tolerance=0.05, max_iterations=10)
        t0 = time.perf_counter()
        achieved, n_comp = [], 0
        for t in targets:
            out = fraz.compress_to_ratio(test.data, float(t))
            achieved.append(out.achieved_ratio)
            n_comp += out.n_compressions
        t_fraz = time.perf_counter() - t0

        from repro.core.metrics import estimation_error

        rows.append(
            [
                comp,
                float(rep.alpha),
                float(estimation_error(targets, achieved)),
                float(t_carol_pred),
                float(t_fraz),
                n_comp,
            ]
        )
    return format_table(
        f"Ablation — CAROL vs FRaZ trial-and-error [scale={scale.name}, "
        f"{scale.n_targets} targets]",
        ["codec", "alpha% CAROL", "alpha% FRaZ", "CAROL predict(s)",
         "FRaZ search(s)", "FRaZ compressions"],
        rows,
        note="Section 3.2's constraint: the framework must run no slower than "
        "its compressor. FRaZ is more accurate but pays several full "
        "compressions per request; CAROL's prediction is milliseconds.",
    )


# ---------------------------------------------------------------------------
# Ablation — fixed-rate ZFP vs CAROL-driven error-bounded ZFP (Section 2.2)
# ---------------------------------------------------------------------------

def ablation_fixed_rate(scale: BenchScale) -> str:
    from repro.compressors.zfp import ZFPCompressor
    from repro.core.quality import max_abs_error, psnr

    test = load_field("miranda/velocityx", seed=4242, **scale.dataset_kwargs("miranda"))
    carol, _ = fitted_frameworks(scale, "zfp")
    z = ZFPCompressor()
    rows = []
    # Rates whose achieved ratios overlap the error-bounded mode's band,
    # so PSNR is compared at (approximately) matched compressed sizes.
    for rate in (8.0, 12.0, 16.0):
        fr = z.compress_fixed_rate(test.data, rate)
        recon_fr = z.decompress(fr)
        # CAROL requests the ratio the fixed-rate stream actually achieved.
        res, pred = carol.compress_to_ratio(test.data, fr.ratio)
        recon_eb = z.decompress(res)
        rows.append(
            [
                f"{rate:.0f} bits/val",
                float(fr.ratio),
                float(res.ratio),
                float(psnr(test.data, recon_fr)),
                float(psnr(test.data, recon_eb)),
                float(max_abs_error(test.data, recon_fr)),
                float(max_abs_error(test.data, recon_eb)),
            ]
        )
    return format_table(
        f"Ablation — fixed-rate ZFP vs CAROL error-bounded ZFP "
        f"[scale={scale.name}]",
        ["rate", "ratio (fixed)", "ratio (CAROL)", "PSNR fixed (dB)",
         "PSNR CAROL (dB)", "maxerr fixed", "maxerr CAROL"],
        rows,
        note="Section 2.2's claim: fixed-rate controls size but not quality — "
        "at comparable ratios the error-bounded path keeps a pointwise "
        "guarantee while fixed-rate's max error is uncontrolled.",
    )


# ---------------------------------------------------------------------------
# Ablation — time-varying data drift and incremental refinement (Section 1)
# ---------------------------------------------------------------------------

def ablation_drift(scale: BenchScale) -> str:
    from repro.data.datasets import hurricane

    kwargs = scale.dataset_kwargs("hurricane")
    rel = scale.rel_ebs()

    def pressure(t):
        return next(f for f in hurricane(timestep=t, **kwargs) if f.name == "p")

    train = [pressure(t) for t in range(3)]
    static = CarolFramework(compressor="szx", rel_error_bounds=rel,
                            n_iter=scale.bo_iters, cv=scale.cv)
    static.fit(train)
    refined = CarolFramework(compressor="szx", rel_error_bounds=rel,
                             n_iter=scale.bo_iters, cv=scale.cv)
    refined.fit(train)

    rows = []
    refine_seconds = 0.0
    for t in (6, 14, 22, 30):
        field = pressure(t)
        ebs = rel * field.value_range
        true, _ = true_curve(field, "szx", ebs)
        targets = true[np.linspace(1, ebs.size - 2, scale.n_targets).astype(int)]
        a_static = static.evaluate_targets(field.data, targets).alpha
        rep = refined.refine([field])
        refine_seconds += rep.total_seconds
        a_refined = refined.evaluate_targets(field.data, targets).alpha
        rows.append([t, float(a_static), float(a_refined), float(rep.total_seconds)])
    return format_table(
        f"Ablation — hurricane drift: static vs incrementally refined CAROL "
        f"[scale={scale.name}]",
        ["timestep", "alpha% static", "alpha% refined", "refine cost(s)"],
        rows,
        note="Section 1's motivation: data characteristics drift over the "
        "simulation; warm-started refinement keeps the model current at a "
        f"total cost of {refine_seconds:.1f}s across the stream (FXRZ would "
        "retrain its grid search from scratch each time).",
    )
