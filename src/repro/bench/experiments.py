"""Experiment implementations — one function per paper table/figure.

Every function takes a :class:`repro.bench.harness.BenchScale`, runs the
scaled-down version of the paper's experiment, and returns a formatted text
table reporting the same rows/series the paper does. EXPERIMENTS.md records
the paper-vs-measured comparison for each.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.curves import true_curve
from repro.bench.harness import BenchScale, format_table
from repro.compressors.registry import PAPER_COMPRESSORS, get_compressor
from repro.core.calibration import Calibrator
from repro.core.carol import CarolFramework
from repro.core.metrics import estimation_error, signed_estimation_errors
from repro.data.datasets import load_dataset, load_field
from repro.surrogate.registry import get_surrogate

COMPRESSORS = PAPER_COMPRESSORS  # the paper's four

# Datasets used for the collection-time tables (Table 4's five rows).
_TAB4_DATASETS = ("miranda", "nyx", "hurricane", "cesm", "hcci")


# ---------------------------------------------------------------------------
# Figure 2 — FXRZ (full compressor) vs SECRE estimates of f(e) + runtimes
# ---------------------------------------------------------------------------

def fig2_surrogate_curves(scale: BenchScale) -> str:
    from repro.bench.plots import ascii_plot

    field = load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))
    ebs = scale.rel_ebs() * field.value_range
    rows = []
    plots = []
    for name in COMPRESSORS:
        true, t_full = true_curve(field, name, ebs)
        est, t_est = get_surrogate(name).estimate_curve(field.data, ebs)
        alpha = estimation_error(true, est)
        plots.append(
            ascii_plot(
                {"f_FXRZ (full)": (ebs, true), "f_SECRE": (ebs, est)},
                width=56, height=10, logx=True, logy=True,
                xlabel="error bound", ylabel="compression ratio",
                title=f"[{name}] f(e): full vs SECRE",
            )
        )
        rows.append(
            [
                name,
                f"{true[0]:.2f}..{true[-1]:.2f}",
                f"{est[0]:.2f}..{est[-1]:.2f}",
                float(alpha),
                float(t_full),
                float(t_est),
                float(t_full / max(t_est, 1e-9)),
            ]
        )
    return format_table(
        f"Figure 2 — f(e): full compressor (FXRZ) vs SECRE on miranda/viscosity "
        f"[scale={scale.name}, {ebs.size} error bounds]",
        ["codec", "f_FXRZ range", "f_SECRE range", "alpha%", "t_full(s)", "t_est(s)", "speedup"],
        rows,
        note="Paper shape: SECRE tracks SZx/ZFP closely, deviates on SZ3/SPERR, "
        "and costs a fraction of the full compressor's runtime.\n\n"
        + "\n\n".join(plots),
    )


# ---------------------------------------------------------------------------
# Figure 3 — estimation-error curves before/after calibration (SPERR)
# ---------------------------------------------------------------------------

def fig3_calibration_curves(scale: BenchScale) -> str:
    cases = [
        ("miranda/density", "miranda"),
        ("duct/velocity_magnitude", "duct"),
    ]
    lines = []
    rows = []
    for path, ds in cases:
        field = load_field(path, **scale.dataset_kwargs(ds))
        ebs = scale.rel_ebs() * field.value_range
        true, _ = true_curve(field, "sperr", ebs)
        est, _ = get_surrogate("sperr").estimate_curve(field.data, ebs)
        cal, info = Calibrator(n_points=4).calibrate_curve(
            field.data, ebs, est, get_compressor("sperr")
        )
        before = signed_estimation_errors(true, est)
        after = signed_estimation_errors(true, cal)
        rows.append(
            [
                path,
                float(np.abs(before).mean()),
                float(np.abs(after).mean()),
                "over" if info.overestimating else "under",
            ]
        )
        lines.append(
            f"{path}: alpha(e) before = "
            + " ".join(f"{v:+.1f}" for v in before)
            + f"\n{path}: alpha(e) after  = "
            + " ".join(f"{v:+.1f}" for v in after)
        )
    table = format_table(
        f"Figure 3 — SPERR estimation error before/after calibration "
        f"[scale={scale.name}, 4 calibration points]",
        ["field", "alpha% before", "alpha% after", "bias"],
        rows,
        note="Paper shape: calibration collapses the error curve "
        "(density 9.4%->0.5%, duct 34.2%->3.4% in the paper).\n\n" + "\n".join(lines),
    )
    return table


# ---------------------------------------------------------------------------
# Figure 10 — real vs SECRE vs calibrated compression-ratio curves
# ---------------------------------------------------------------------------

def fig10_calibrated_curves(scale: BenchScale) -> str:
    field = load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))
    ebs = scale.rel_ebs() * field.value_range
    sections = []
    rows = []
    for name in ("sz3", "sperr"):
        true, _ = true_curve(field, name, ebs)
        est, _ = get_surrogate(name).estimate_curve(field.data, ebs)
        cal, info = Calibrator(n_points=4).calibrate_curve(
            field.data, ebs, est, get_compressor(name)
        )
        rows.append(
            [
                name,
                float(estimation_error(true, est)),
                float(estimation_error(true, cal)),
                "over" if info.overestimating else "under",
            ]
        )
        from repro.bench.plots import ascii_plot

        sections.append(
            f"{name}: eb grid   = " + " ".join(f"{e:.3g}" for e in ebs)
            + f"\n{name}: real      = " + " ".join(f"{v:.2f}" for v in true)
            + f"\n{name}: SECRE     = " + " ".join(f"{v:.2f}" for v in est)
            + f"\n{name}: calibrated= " + " ".join(f"{v:.2f}" for v in cal)
            + "\n\n"
            + ascii_plot(
                {"real": (ebs, true), "SECRE": (ebs, est), "calibrated": (ebs, cal)},
                width=56, height=10, logx=True, logy=True,
                xlabel="error bound", ylabel="compression ratio",
                title=f"[{name}] Figure 10 curves",
            )
        )
    return format_table(
        f"Figure 10 — real vs SECRE vs calibrated f(e) on miranda/viscosity "
        f"[scale={scale.name}]",
        ["codec", "alpha% SECRE", "alpha% calibrated", "bias"],
        rows,
        note="Paper shape: calibration identifies the bias direction and pulls "
        "the estimated curve onto the real one.\n\n" + "\n\n".join(sections),
    )


# ---------------------------------------------------------------------------
# Table 4 — training-data collection time: full compressor vs SECRE
# ---------------------------------------------------------------------------

def tab4_collection_time(scale: BenchScale) -> str:
    rows = []
    speedups: dict[str, list[float]] = {c: [] for c in COMPRESSORS}
    for ds in _TAB4_DATASETS:
        fields = load_dataset(ds, **scale.dataset_kwargs(ds))[:3]
        row: list = [ds]
        for name in COMPRESSORS:
            t_full_total = 0.0
            t_est_total = 0.0
            for f in fields:
                ebs = scale.rel_ebs() * f.value_range
                _, t_full = true_curve(f, name, ebs)
                _, t_est = get_surrogate(name).estimate_curve(f.data, ebs)
                t_full_total += t_full
                t_est_total += t_est
            row.extend([float(t_full_total), float(t_est_total)])
            speedups[name].append(t_full_total / max(t_est_total, 1e-9))
        rows.append(row)
    avg = ["Speedup"]
    for name in COMPRESSORS:
        avg.extend([f"{np.mean(speedups[name]):.1f}x", ""])
    rows.append(avg)
    headers = ["dataset"]
    for name in COMPRESSORS:
        headers.extend([f"{name} full(s)", f"{name} est(s)"])
    return format_table(
        f"Table 4 — collection time: full compressor vs SECRE "
        f"[scale={scale.name}, 3 fields/dataset, {scale.n_ebs} ebs]",
        headers,
        rows,
        note="Paper shape: largest speedups on the high-ratio codecs "
        "(paper: SZx 14.8x, ZFP 15.8x, SZ3 50.7x, SPERR 22.2x).",
    )


# ---------------------------------------------------------------------------
# Table 5 — calibration effectiveness: speedup & alpha vs #points
# ---------------------------------------------------------------------------

def tab5_calibration(scale: BenchScale) -> str:
    datasets = ("miranda", "nyx", "hurricane", "hcci")
    point_counts = (3, 4, 5)
    blocks = []
    for name in ("sz3", "sperr"):
        rows = []
        keys = ("s0", "a0", *[f"s{k}" for k in point_counts], *[f"a{k}" for k in point_counts])
        agg = {k: [] for k in keys}
        for ds in datasets:
            field = load_dataset(ds, **scale.dataset_kwargs(ds))[0]
            ebs = scale.rel_ebs() * field.value_range
            true, t_full = true_curve(field, name, ebs)
            est, t_est = get_surrogate(name).estimate_curve(field.data, ebs)
            row: list = [ds]
            s0 = t_full / max(t_est, 1e-9)
            a0 = estimation_error(true, est)
            row.extend([f"{s0:.1f}x", float(a0)])
            agg["s0"].append(s0)
            agg["a0"].append(a0)
            for k in point_counts:
                cal, info = Calibrator(n_points=k).calibrate_curve(
                    field.data, ebs, est, get_compressor(name)
                )
                t_cal = t_est + info.compressor_seconds
                sk = t_full / max(t_cal, 1e-9)
                ak = estimation_error(true, cal)
                row.extend([f"{sk:.1f}x", float(ak)])
                agg[f"s{k}"].append(sk)
                agg[f"a{k}"].append(ak)
            rows.append(row)
        avg: list = ["Average"]
        avg.extend([f"{np.mean(agg['s0']):.1f}x", float(np.mean(agg["a0"]))])
        for k in point_counts:
            avg.extend([f"{np.mean(agg[f's{k}']):.1f}x", float(np.mean(agg[f"a{k}"]))])
        rows.append(avg)
        headers = ["dataset", "S(est)", "a%(est)"]
        for k in point_counts:
            headers.extend([f"S({k}pt)", f"a%({k}pt)"])
        blocks.append(
            format_table(
                f"Table 5 ({name.upper()}) — calibration effectiveness "
                f"[scale={scale.name}]",
                headers,
                rows,
            )
        )
    return (
        "\n\n".join(blocks)
        + "\nPaper shape: uncalibrated SECRE is fast but tens-of-% wrong; 3-4 "
        "points collapse alpha to a few % while keeping a multi-x speedup."
    )


# ---------------------------------------------------------------------------
# Ablation — surrogate sampling-rate sweep (design-choice bench)
# ---------------------------------------------------------------------------

def ablation_sampling(scale: BenchScale) -> str:
    field = load_field("miranda/viscosity", **scale.dataset_kwargs("miranda"))
    ebs = scale.rel_ebs() * field.value_range
    rows = []
    from repro.surrogate.szx_surrogate import SZXSurrogate
    from repro.surrogate.sz3_surrogate import SZ3Surrogate

    true_szx, _ = true_curve(field, "szx", ebs)
    for stride in (16, 64, 128, 256):
        est, t = SZXSurrogate(stride=stride).estimate_curve(field.data, ebs)
        rows.append(["szx", f"1/{stride} blocks", float(estimation_error(true_szx, est)), float(t)])
    true_sz3, _ = true_curve(field, "sz3", ebs)
    for stride in (3, 5, 8):
        est, t = SZ3Surrogate(stride=stride).estimate_curve(field.data, ebs)
        rows.append(
            ["sz3", f"1/{stride} per dim", float(estimation_error(true_sz3, est)), float(t)]
        )
    return format_table(
        f"Ablation — surrogate sampling rate vs accuracy [scale={scale.name}]",
        ["codec", "sampling", "alpha%", "t_est(s)"],
        rows,
        note="Design-choice check: Table 1's sampling rates sit on the "
        "accuracy/cost knee; denser sampling buys little accuracy for "
        "linear extra cost.",
    )


# ---------------------------------------------------------------------------
# Ablation — learned model vs monotone curve inversion
# ---------------------------------------------------------------------------

def ablation_inverse(scale: BenchScale) -> str:
    from repro.core.prediction import invert_curve

    train = load_dataset("miranda", **scale.dataset_kwargs("miranda"))[:4]
    test = load_field("miranda/pressure", seed=999, **scale.dataset_kwargs("miranda"))
    rel = scale.rel_ebs()
    rows = []
    for name in ("szx", "sz3"):
        fw = CarolFramework(
            compressor=name, rel_error_bounds=rel, n_iter=scale.bo_iters, cv=scale.cv
        )
        fw.fit(train)
        ebs = rel * test.value_range
        true, _ = true_curve(test, name, ebs)
        targets = true[1 : 1 + scale.n_targets]
        codec = get_compressor(name)

        # Learned model (generalizes from features, no test-curve access).
        rep = fw.evaluate_targets(test.data, targets)

        # Curve inversion needs a measured curve *for the test input* —
        # that measurement is exactly what the framework avoids.
        t0 = time.perf_counter()
        est, _ = get_surrogate(name).estimate_curve(test.data, ebs)
        cal, _ = Calibrator(4).calibrate_curve(test.data, ebs, est, codec)
        achieved = np.array(
            [codec.compression_ratio(test.data, invert_curve(ebs, cal, t)) for t in targets]
        )
        t_inv = time.perf_counter() - t0
        rows.append(
            [
                name,
                float(rep.alpha),
                float(estimation_error(targets, achieved)),
                float(rep.inference_seconds),
                float(t_inv),
            ]
        )
    return format_table(
        f"Ablation — learned forest vs per-input curve inversion [scale={scale.name}]",
        ["codec", "alpha% model", "alpha% inversion", "t model(s)", "t inversion(s)"],
        rows,
        note="The inversion baseline is more accurate but must estimate+calibrate "
        "a fresh curve per input (cost grows with the compressor); the model "
        "amortizes that into training, which is the frameworks' point.",
    )


# ---------------------------------------------------------------------------
# Ablation — alternative ML models (paper future work)
# ---------------------------------------------------------------------------

def ablation_models(scale: BenchScale) -> str:
    """Forest vs gradient boosting vs kNN as the error-bound model."""
    import time as _time

    from repro.core.collection import TrainingCollector
    from repro.core.prediction import ErrorBoundModel

    train = load_dataset("miranda", **scale.dataset_kwargs("miranda"))[:4]
    train += load_dataset("hcci", **scale.dataset_kwargs("hcci"))
    test = load_field("miranda/pressure", seed=1234, **scale.dataset_kwargs("miranda"))
    rel = scale.rel_ebs()
    codec_name = "sz3"
    codec = get_compressor(codec_name)
    data = TrainingCollector(
        codec_name, mode="calibrated", rel_error_bounds=rel
    ).collect(train)
    ebs = rel * test.value_range
    true, _ = true_curve(test, codec_name, ebs)
    targets = true[np.linspace(1, ebs.size - 2, scale.n_targets).astype(int)]

    from repro.features.parallel import extract_features_parallel

    feats, _ = extract_features_parallel(test.data)
    rows = []
    for kind in ("forest", "gbt", "knn"):
        t0 = _time.perf_counter()
        model = ErrorBoundModel().fit(
            data, method="bayesopt", n_iter=scale.bo_iters, cv=scale.cv, model_kind=kind
        )
        t_train = _time.perf_counter() - t0
        achieved = np.array(
            [
                codec.compression_ratio(
                    test.data, model.predict_error_bound(feats, float(t))
                )
                for t in targets
            ]
        )
        rows.append(
            [kind, float(estimation_error(targets, achieved)), float(t_train)]
        )
    return format_table(
        f"Ablation — error-bound model family on {codec_name} [scale={scale.name}]",
        ["model", "alpha%", "train(s)"],
        rows,
        note="Future-work check: the random forest is not uniquely good — "
        "local (kNN) and boosted models are competitive on this "
        "low-dimensional, densely tiled problem.",
    )


# ---------------------------------------------------------------------------
# Ablation — SZ3 entropy backend: Huffman+LZ vs range coder
# ---------------------------------------------------------------------------

def ablation_entropy(scale: BenchScale) -> str:
    """Order-0 arithmetic coding vs Huffman+LZ as SZ3's entropy stage."""
    from repro.compressors.sz3 import SZ3Compressor

    rows = []
    for path, ds in (("miranda/viscosity", "miranda"), ("hcci/oh", "hcci"),
                     ("nyx/baryon_density", "nyx")):
        field = load_field(path, **scale.dataset_kwargs(ds))
        eb = field.relative_error_bound(1e-2)
        res_h = SZ3Compressor(entropy="huffman").compress(field.data, eb)
        res_r = SZ3Compressor(entropy="range").compress(field.data, eb)
        rows.append(
            [
                path,
                float(res_h.ratio),
                float(res_r.ratio),
                float(res_h.elapsed),
                float(res_r.elapsed),
            ]
        )
    return format_table(
        f"Ablation — SZ3 entropy backend [scale={scale.name}, rel eb 1e-2]",
        ["field", "ratio huffman+lz", "ratio range", "t huff(s)", "t range(s)"],
        rows,
        note="The range coder wins sub-bit coding of the dominant symbol; "
        "Huffman+LZ wins when consecutive codes correlate (runs). Real SZ3 "
        "ships Huffman+zstd; SZ variants with arithmetic stages match this "
        "trade-off.",
    )
