"""Shared curve-measurement helpers for the experiment harnesses.

Measuring a ground-truth compression function f(e) (running the full
compressor over the whole error-bound grid) is the dominant cost of several
experiments, so it is cached per (field, compressor, grid) within a process.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compressors.registry import get_compressor
from repro.data.fields import Field
from repro.obs import count, span

_CACHE: dict[tuple, tuple[np.ndarray, float]] = {}


def true_curve(field: Field, compressor: str, ebs: np.ndarray) -> tuple[np.ndarray, float]:
    """Ground-truth f(e) and the wall seconds it took to measure.

    Cached: repeated calls with the same field/compressor/grid reuse the
    first measurement (and report its original cost).
    """
    key = (field.path, field.data.shape, compressor, ebs.tobytes())
    if key in _CACHE:
        count("bench.curve_cache.hits")
        return _CACHE[key]
    count("bench.curve_cache.misses")
    with span("bench.true_curve", field=field.path, compressor=compressor,
              n_points=int(ebs.size)):
        codec = get_compressor(compressor)
        start = time.perf_counter()
        ratios = np.array([codec.compression_ratio(field.data, float(eb)) for eb in ebs])
        elapsed = time.perf_counter() - start
    _CACHE[key] = (ratios, elapsed)
    return ratios, elapsed


def clear_cache() -> None:
    _CACHE.clear()
