"""Scale configuration and reporting helpers for the benchmark suite.

The paper's experiments ran on supercomputer nodes with multi-GB datasets;
this reproduction scales them down so the whole suite runs on one CPU in
minutes (DESIGN.md, substitutions). Two scales are provided:

- ``REPRO_SCALE=small`` (default) — minutes for the full suite;
- ``REPRO_SCALE=medium`` — closer to paper-like grids, tens of minutes.

All experiment functions take a :class:`BenchScale` so the scaling is in
one place and recorded in every saved result file.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class BenchScale:
    """All knobs that trade fidelity for wall-clock time."""

    name: str
    shape3d: tuple[int, int, int]  # generic 3-D dataset shape
    shape_nyx: tuple[int, int, int]
    shape_cesm: tuple[int, int]
    shape_hurricane: tuple[int, int, int]
    n_ebs: int  # error-bound grid size (paper: 35)
    n_targets: int  # requested-ratio sample size for accuracy evals
    bo_iters: int
    grid_iters: int  # randomized-grid-search configurations (paper: 10)
    cv: int  # k-fold (paper: 5)
    n_timesteps: int  # training timesteps for single-domain runs (paper: 6)
    train_sizes: tuple[int, ...]  # design-matrix sizes for Fig. 5a
    rel_eb_range: tuple[float, float] = (1e-3, 1e-1)

    def rel_ebs(self, n: int | None = None) -> np.ndarray:
        lo, hi = self.rel_eb_range
        return np.geomspace(lo, hi, n or self.n_ebs)

    def dataset_kwargs(self, dataset: str) -> dict:
        """Shape override for one of the named datasets."""
        if dataset == "cesm":
            return {"shape": self.shape_cesm}
        if dataset == "nyx":
            return {"shape": self.shape_nyx}
        if dataset == "hurricane":
            return {"shape": self.shape_hurricane}
        return {"shape": self.shape3d}


_SCALES = {
    # For unit tests of the experiment functions only: seconds, not fidelity.
    "tiny": BenchScale(
        name="tiny",
        shape3d=(10, 12, 12),
        shape_nyx=(12, 12, 12),
        shape_cesm=(24, 48),
        shape_hurricane=(8, 16, 16),
        n_ebs=5,
        n_targets=2,
        bo_iters=3,
        grid_iters=2,
        cv=2,
        n_timesteps=2,
        train_sizes=(60, 120),
    ),
    "small": BenchScale(
        name="small",
        shape3d=(24, 32, 32),
        shape_nyx=(32, 32, 32),
        shape_cesm=(90, 180),
        shape_hurricane=(12, 40, 40),
        n_ebs=16,
        n_targets=4,
        bo_iters=5,
        grid_iters=8,
        cv=3,
        n_timesteps=3,
        train_sizes=(200, 500, 1200, 2500),
    ),
    "medium": BenchScale(
        name="medium",
        shape3d=(48, 64, 64),
        shape_nyx=(64, 64, 64),
        shape_cesm=(180, 360),
        shape_hurricane=(24, 72, 72),
        n_ebs=35,  # the paper's sample size
        n_targets=8,
        bo_iters=6,
        grid_iters=10,
        cv=5,
        n_timesteps=6,
        train_sizes=(500, 1500, 4000, 10000),
    ),
}


def get_scale() -> BenchScale:
    """Scale selected via ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    if name not in _SCALES:
        raise KeyError(f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


def format_table(
    title: str, headers: list[str], rows: list[list], note: str = ""
) -> str:
    """Fixed-width text table matching the paper's row/column layout."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def print_and_save(name: str, content: str) -> Path:
    """Print an experiment's table and persist it under benchmarks/results."""
    print("\n" + content + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path
