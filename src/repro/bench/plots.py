"""ASCII line plots for the figure benchmarks.

The paper's figures are curves; the benchmark harnesses regenerate the
numbers, and this renderer turns them into terminal plots inside the saved
result files, so ``benchmarks/results/fig*.txt`` read as figures, not just
tables. No plotting dependency needed.
"""

from __future__ import annotations

import numpy as np

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
) -> str:
    """Render labelled (x, y) series on one character grid.

    Points are mapped onto a ``width x height`` canvas; each series gets a
    marker from ``oxX*#@%&`` and a legend line. Log axes reject
    non-positive values with a clear error rather than silently clipping.
    """
    if not series:
        raise ValueError("need at least one series")
    xs_all, ys_all = [], []
    for label, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size or x.size == 0:
            raise ValueError(f"series {label!r} must have matching non-empty x/y")
        if logx and (x <= 0).any():
            raise ValueError("logx requires positive x values")
        if logy and (y <= 0).any():
            raise ValueError("logy requires positive y values")
        xs_all.append(x)
        ys_all.append(y)

    def tx(v):
        return np.log10(v) if logx else v

    def ty(v):
        return np.log10(v) if logy else v

    x_lo = min(tx(x).min() for x in xs_all)
    x_hi = max(tx(x).max() for x in xs_all)
    y_lo = min(ty(y).min() for y in ys_all)
    y_hi = max(ty(y).max() for y in ys_all)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, (x, y)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        cx = np.clip(((tx(np.asarray(x, float)) - x_lo) / x_span * (width - 1)), 0, width - 1)
        cy = np.clip(((ty(np.asarray(y, float)) - y_lo) / y_span * (height - 1)), 0, height - 1)
        for px, py in zip(cx.round().astype(int), cy.round().astype(int)):
            row = height - 1 - py
            grid[row][px] = marker

    top = f"{10**y_hi if logy else y_hi:.3g}"
    bot = f"{10**y_lo if logy else y_lo:.3g}"
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        prefix = top.rjust(9) if r == 0 else (bot.rjust(9) if r == height - 1 else " " * 9)
        lines.append(f"{prefix} |{''.join(row)}|")
    left = f"{10**x_lo if logx else x_lo:.3g}"
    right = f"{10**x_hi if logx else x_hi:.3g}"
    lines.append(" " * 9 + " " + "-" * (width + 2))
    lines.append(" " * 10 + left + " " * max(width - len(left) - len(right), 1) + right)
    xs = f"x: {xlabel}{'  [log]' if logx else ''}"
    ys = f"y: {ylabel}{'  [log]' if logy else ''}"
    lines.append(" " * 10 + xs + "   " + ys)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
