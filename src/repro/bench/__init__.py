"""Benchmark harness: one experiment function per paper table/figure.

The :mod:`repro.bench.harness` module owns the scale configuration (set via
the ``REPRO_SCALE`` environment variable) and the result formatting/saving
helpers; :mod:`repro.bench.experiments` implements each experiment. The
``benchmarks/`` pytest files are thin wrappers that run one experiment each
and print/save its table, so every number in EXPERIMENTS.md can be
regenerated with a single ``pytest benchmarks/test_<exp>.py --benchmark-only``.
"""

from repro.bench.harness import BenchScale, get_scale, print_and_save

__all__ = ["BenchScale", "get_scale", "print_and_save"]
